//! `simlint` — the workspace determinism & fleet-safety static-analysis
//! pass.
//!
//! Every guarantee this reproduction ships — the golden `ServingReport`
//! digests, byte-identical Perfetto traces, "same seed ⇒ identical report"
//! — rests on source-level invariants that the compiler does not enforce:
//! no randomized-order iteration on digest paths, no wall-clock reads in
//! the simulation, no entropy-seeded RNGs, no panicking library code, no
//! `unsafe`, and no event kind or metric name that quietly falls out of
//! its registry. `simlint` walks every `.rs` file in the workspace with
//! its own dependency-free lexer (the environment is offline — no `syn`)
//! and enforces those invariants as named, individually-allowlistable
//! rules. See [`rules::RULES`] for the rule table and
//! `cargo run -p simlint -- --explain RULE` for the long-form rationale.
//!
//! ```text
//! $ cargo run -p simlint -- --workspace
//! crates/cluster/src/serving.rs:55:D1: `HashMap` in digest-affecting crate `cluster` — ...
//! simlint: 1 finding
//! ```
//!
//! A finding is suppressed — one line at a time, reason mandatory — with:
//!
//! ```text
//! // simlint::allow(D1, reason = "point lookups only; never iterated")
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod walker;

use std::fs;
use std::io;
use std::path::Path;

pub use report::Finding;
pub use rules::{rule_info, RuleInfo, RULES};
pub use walker::{FileContext, FileKind};

/// Lints one file's source text in the given workspace context, folding
/// cross-file facts into `facts`.
///
/// Most callers want [`lint_workspace`]; this entry point exists so tests
/// can lint fixture sources under any claimed path.
///
/// # Example
///
/// ```
/// use simlint::rules::WorkspaceFacts;
/// use simlint::{lint_source, FileContext};
///
/// let ctx = FileContext::classify("crates/cluster/src/example.rs");
/// let mut facts = WorkspaceFacts::default();
/// // HashMap iteration order is nondeterministic — banned on digest paths.
/// let findings = lint_source(&ctx, "use std::collections::HashMap;\n", &mut facts);
/// assert!(findings.iter().any(|finding| finding.rule == "D1"));
/// // The same line under a reasoned pragma is clean.
/// let allowed = "use std::collections::HashMap; \
///     // simlint::allow(D1, reason = \"point lookups only\")\n";
/// assert!(lint_source(&ctx, allowed, &mut facts).is_empty());
/// ```
pub fn lint_source(
    ctx: &FileContext,
    source: &str,
    facts: &mut rules::WorkspaceFacts,
) -> Vec<Finding> {
    let tokens = lexer::lex(source);
    let pragmas = pragma::Pragmas::parse(&ctx.rel_path, &tokens);
    rules::lint_tokens(ctx, &tokens, &pragmas, facts)
}

/// Lints every `.rs` file under `root`, returning all findings in the
/// canonical (file, line, rule) order. This is the `--workspace` pass.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut facts = rules::WorkspaceFacts::default();
    for (path, ctx) in walker::walk(root)? {
        let source = fs::read_to_string(&path)?;
        findings.extend(lint_source(&ctx, &source, &mut facts));
    }
    findings.extend(rules::resolve_workspace(&facts));
    report::sort_findings(&mut findings);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_composes_lexer_pragmas_and_rules() {
        let ctx = FileContext::classify("crates/cluster/src/x.rs");
        let mut facts = rules::WorkspaceFacts::default();
        let findings = lint_source(&ctx, "use std::collections::HashMap;\n", &mut facts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D1");
        assert_eq!(findings[0].line, 1);
    }
}
