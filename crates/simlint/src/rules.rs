//! The rule set: what each rule forbids, where it applies, and the token
//! scans that enforce it.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in digest-affecting crates |
//! | `D2` | no wall-clock (`Instant`/`SystemTime`) or `thread::sleep` outside `crates/bench` and `crates/shims` |
//! | `D3` | no RNG construction without an explicit seed (`thread_rng`, `from_entropy`, `OsRng`, ...) |
//! | `P1` | no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `S1` | every non-shim library crate root carries `#![forbid(unsafe_code)]` |
//! | `T1` | no host-concurrency primitives (`Mutex`/`RwLock`/`Condvar`/`mpsc`, `thread::scope`/`spawn`) in digest-affecting crates outside audited, pragma-documented sites |
//! | `X1` | every `EV_*` event-kind constant has a match arm; every emitted `serving.*`/`migration.*`/`control.*`/`slo.*`/`timeseries.*`/`fault.*`/`recovery.*` metric name is declared in the `METRIC_NAMES` taxonomy |
//!
//! Scoping decisions (also printed by `--explain`):
//!
//! * **Test code is exempt from `D1`/`P1`/`X1`**: `#[cfg(test)] mod` blocks,
//!   `tests/`, `benches/` and `examples/` may take shortcuts — they cannot
//!   reach a shipped digest and a failed `unwrap` there *is* the test
//!   failing. `D2`/`D3` apply even to tests: a test that reads the wall
//!   clock or an entropy-seeded RNG is flaky by construction.
//! * **`crates/shims/**` is exempt from everything**: those files emulate
//!   external crates (`rand`, `criterion`) whose real implementations we do
//!   not control; `criterion`'s timer is exactly the wall clock `D2` bans
//!   elsewhere.
//! * **Binaries (`src/bin/**`, `src/main.rs`) are exempt from `P1`** — a
//!   figure generator aborting with a message is acceptable CLI behavior —
//!   but not from `D1`/`D2`/`D3`: a nondeterministic figure harness would
//!   still corrupt reproducibility claims.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::pragma::Pragmas;
use crate::report::Finding;
use crate::walker::{FileContext, FileKind};

/// The pseudo-rule under which malformed `simlint::allow` pragmas are
/// reported. Not itself allowlistable.
pub const RULE_PRAGMA: &str = "PRAGMA";

/// Crates whose iteration order can reach a `ServingReport`, golden digest
/// or exported trace — the blast radius of rule `D1`.
pub const DIGEST_CRATES: &[&str] = &["cluster", "neu10", "autopilot", "workloads", "npu-sim"];

/// Metric-name prefixes rule `X1` cross-checks against the taxonomy.
pub const METRIC_PREFIXES: &[&str] = &[
    "serving.",
    "migration.",
    "control.",
    "slo.",
    "timeseries.",
    "fault.",
    "recovery.",
];

/// Static description of one rule, served by `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule identifier (`D1`, ...).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The full `--explain` text: motivation, scope, and how to fix or
    /// suppress a finding.
    pub explain: &'static str,
}

/// Every enforced rule, in display order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "no HashMap/HashSet in digest-affecting crates",
        explain: "D1 — no HashMap/HashSet in digest-affecting crates\n\
                  \n\
                  Iterating a std HashMap/HashSet visits entries in a randomized order\n\
                  (SipHash keys differ per process), so any iteration whose order can\n\
                  reach a ServingReport, golden digest, or exported Perfetto trace\n\
                  breaks the repo's `same seed => identical report` guarantee. The\n\
                  digest-affecting crates are: cluster, neu10, autopilot, workloads,\n\
                  npu-sim. Use BTreeMap/BTreeSet, or collect-and-sort before iterating.\n\
                  Scope: library code of those crates; #[cfg(test)] mods, tests/,\n\
                  benches/ and examples/ are exempt.\n\
                  A point-lookup-only map may keep hashing for speed behind\n\
                  `// simlint::allow(D1, reason = \"...\")` documenting why its\n\
                  iteration order can never leak.",
    },
    RuleInfo {
        id: "D2",
        summary: "no wall-clock or sleep outside crates/bench and crates/shims",
        explain: "D2 — no wall-clock reads or sleeps outside crates/bench and crates/shims\n\
                  \n\
                  std::time::Instant, std::time::SystemTime and std::thread::sleep\n\
                  couple simulation behavior to the host's clock and scheduler: two\n\
                  runs of the same seed would diverge. Simulated time is the u64\n\
                  cycle counter; only the benchmarking crate (which measures real\n\
                  wall time on purpose) and the vendored shims (criterion's timer)\n\
                  may touch the host clock.\n\
                  Scope: every file outside crates/bench and crates/shims, test code\n\
                  included — a test that reads the wall clock is flaky by\n\
                  construction.",
    },
    RuleInfo {
        id: "D3",
        summary: "no RNG construction without an explicit seed",
        explain: "D3 — no RNG construction without an explicit seed\n\
                  \n\
                  thread_rng(), SeedableRng::from_entropy(), OsRng and friends pull\n\
                  entropy from the OS, so no two runs see the same stream and every\n\
                  replay guarantee dies. All randomness must flow from an explicit\n\
                  seed argument (StdRng::seed_from_u64(seed), splitmix64 stream\n\
                  splitting) so the simulation is a pure function of its inputs.\n\
                  Scope: every non-shim file, test code included.",
    },
    RuleInfo {
        id: "P1",
        summary: "no unwrap()/expect()/panic!/todo! in library code",
        explain: "P1 — no unwrap()/expect()/panic!/todo!/unimplemented! in library code\n\
                  \n\
                  A panicking library turns a recoverable condition into a fleet-wide\n\
                  abort — unacceptable in a serving control plane. Return Result,\n\
                  use unwrap_or/unwrap_or_else, or restructure so the invariant is\n\
                  type-enforced.\n\
                  Scope: library code (crates/*/src) outside #[cfg(test)] mods.\n\
                  Binaries (src/bin, src/main.rs), tests/, benches/ and examples/\n\
                  are exempt.\n\
                  An invariant the types cannot express may keep a documented\n\
                  expect() behind `// simlint::allow(P1, reason = \"...\")` stating\n\
                  why it cannot fire.",
    },
    RuleInfo {
        id: "S1",
        summary: "crate roots must carry #![forbid(unsafe_code)]",
        explain: "S1 — every non-shim library crate root carries #![forbid(unsafe_code)]\n\
                  \n\
                  forbid (unlike deny) cannot be overridden by an inner allow, so a\n\
                  single attribute at the crate root is a machine-checked proof the\n\
                  whole crate is safe Rust. The simulator has no business doing\n\
                  unsafe anything; keeping the attribute everywhere means a future\n\
                  `unsafe` block is a compile error, not a review comment.\n\
                  Scope: src/lib.rs of every non-shim workspace member.",
    },
    RuleInfo {
        id: "T1",
        summary: "no host-concurrency primitives in digest-affecting crates outside audited sites",
        explain:
            "T1 — no host-concurrency primitives in digest-affecting crates outside audited sites\n\
                  \n\
                  Threads, channels and locks let the host scheduler into the\n\
                  simulation: any result that depends on lock acquisition or message\n\
                  arrival order differs run to run, which silently voids the\n\
                  `same seed => identical report` guarantee the golden digests pin.\n\
                  Flagged: Mutex, RwLock, Condvar, the mpsc module, thread::scope,\n\
                  thread::Builder and any .spawn(...) call, in the digest-affecting\n\
                  crates (cluster, neu10, autopilot, workloads, npu-sim).\n\
                  Scope: library code of those crates, #[cfg(test)] mods included —\n\
                  a test whose outcome rides on thread scheduling is flaky by\n\
                  construction.\n\
                  Concurrency that provably cannot reach a digest — the\n\
                  ownership-transfer worker pool in cluster::par (jobs move by\n\
                  value, results re-sort by partition tag), a lookup-only memo\n\
                  table — stays behind\n\
                  `// simlint::allow(T1, reason = \"...\")` stating why scheduling\n\
                  order is unobservable.",
    },
    RuleInfo {
        id: "X1",
        summary: "event-kind constants need match arms; metric names need taxonomy entries",
        explain: "X1 — cross-file exhaustiveness\n\
                  \n\
                  (a) Every `const EV_*` event-kind constant declared in a library\n\
                  file must appear as a `EV_* =>` match arm in that file: a declared\n\
                  kind the event loop never matches is either dead or — worse —\n\
                  silently swallowed by a `_ =>` arm.\n\
                  (b) Every serving.* / migration.* / control.* / slo.* /\n\
                  timeseries.* / fault.* / recovery.* metric-name string\n\
                  in library code must be declared in the MetricsRegistry\n\
                  METRIC_NAMES taxonomy (crates/cluster/src/obs/registry.rs): the\n\
                  taxonomy is what dashboards and exports are built against, so an\n\
                  undeclared name is an invisible metric.\n\
                  Scope: library code outside #[cfg(test)] mods.",
    },
];

/// The meta-rule behind [`RULE_PRAGMA`] findings. Not in [`RULES`] because
/// it is not allowlistable — a broken suppression cannot suppress itself —
/// but `--explain PRAGMA` still documents it.
pub const PRAGMA_INFO: RuleInfo = RuleInfo {
    id: RULE_PRAGMA,
    summary: "allow pragmas must be well-formed, name a real rule, and give a reason",
    explain: "PRAGMA — malformed suppression pragmas are findings themselves\n\
              \n\
              The only sanctioned suppression is\n\
              `// simlint::allow(RULE, reason = \"...\")`, one line at a time:\n\
              trailing on a code line it excuses that line, standalone it\n\
              excuses the next. The reason is mandatory — an exemption\n\
              without a written justification is indistinguishable from a\n\
              silenced bug — so a pragma that omits it, leaves it empty,\n\
              names an unknown rule, or fails to parse is reported as a\n\
              PRAGMA finding and suppresses nothing. There is deliberately\n\
              no file- or block-level form, and no allowlisting of PRAGMA\n\
              itself: a broken suppression cannot suppress itself.",
};

/// Whether `id` names an enforced (and therefore allowlistable) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Looks up a rule for `--explain` (enforced rules plus the PRAGMA
/// meta-rule).
///
/// # Example
///
/// ```
/// use simlint::{rule_info, RULES};
///
/// let t1 = rule_info("T1").expect("T1 is an enforced rule");
/// assert!(t1.summary.contains("concurrency"));
/// // Every enforced rule is explainable; unknown ids are not.
/// assert!(RULES.iter().all(|rule| rule_info(rule.id).is_some()));
/// assert!(rule_info("Z9").is_none());
/// ```
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    if id == RULE_PRAGMA {
        return Some(&PRAGMA_INFO);
    }
    RULES.iter().find(|r| r.id == id)
}

/// Cross-file facts accumulated while scanning, resolved by
/// [`resolve_workspace`] once every file has been seen.
#[derive(Debug, Default)]
pub struct WorkspaceFacts {
    /// `(file, line, metric-name)` for every prefixed metric literal in
    /// non-test library code (pragma-suppressed sites excluded).
    metric_literals: Vec<(String, u32, String)>,
    /// Every name declared in a `METRIC_NAMES` taxonomy constant.
    taxonomy: BTreeSet<String>,
    /// Whether any `METRIC_NAMES` declaration was seen at all.
    taxonomy_found: bool,
}

/// Lints one file's token stream; cross-file facts go into `facts`.
pub fn lint_tokens(
    ctx: &FileContext,
    tokens: &[Token],
    pragmas: &Pragmas,
    facts: &mut WorkspaceFacts,
) -> Vec<Finding> {
    let mut findings: Vec<Finding> = pragmas.findings.clone();
    if ctx.is_shim {
        return findings;
    }
    let in_test = test_regions(tokens);
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .collect();

    let digest_crate = DIGEST_CRATES.contains(&ctx.crate_name.as_str());
    let lib_kind = ctx.kind == FileKind::Lib;
    let report = |findings: &mut Vec<Finding>, line: u32, rule: &'static str, msg: String| {
        if !pragmas.allows(rule, line) {
            findings.push(Finding::new(&ctx.rel_path, line, rule, msg));
        }
    };

    // --- Single-token scans: D1, D2 (idents), D3. -------------------------
    for &(i, token) in &code {
        if token.kind != TokenKind::Ident {
            continue;
        }
        let name = token.text.as_str();
        if digest_crate && lib_kind && !in_test[i] && (name == "HashMap" || name == "HashSet") {
            report(
                &mut findings,
                token.line,
                "D1",
                format!(
                    "`{name}` in digest-affecting crate `{}` — iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or a sorted collect",
                    ctx.crate_name
                ),
            );
        }
        if ctx.crate_name != "bench" && (name == "Instant" || name == "SystemTime") {
            report(
                &mut findings,
                token.line,
                "D2",
                format!(
                    "`{name}` reads the host wall clock — simulated time is the \
                     cycle counter; only crates/bench and crates/shims may do this"
                ),
            );
        }
        if digest_crate && lib_kind && matches!(name, "Mutex" | "RwLock" | "Condvar" | "mpsc") {
            report(
                &mut findings,
                token.line,
                "T1",
                format!(
                    "`{name}` is a host-concurrency primitive in digest-affecting \
                     crate `{}` — scheduling order must not reach a report; keep \
                     concurrency in audited, pragma-documented sites",
                    ctx.crate_name
                ),
            );
        }
        if matches!(name, "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng") {
            report(
                &mut findings,
                token.line,
                "D3",
                format!(
                    "`{name}` constructs an entropy-seeded RNG — all randomness \
                     must flow from an explicit seed (e.g. StdRng::seed_from_u64)"
                ),
            );
        }
    }

    // --- Sequence scans over non-comment tokens. --------------------------
    for w in 0..code.len() {
        let t = code[w].1;
        // D2: `thread :: sleep`.
        if ctx.crate_name != "bench"
            && t.is_ident("sleep")
            && w >= 2
            && code[w - 1].1.is_punct(':')
            && code[w - 2].1.is_punct(':')
            && w >= 3
            && code[w - 3].1.is_ident("thread")
        {
            report(
                &mut findings,
                t.line,
                "D2",
                "`thread::sleep` blocks on the host scheduler — simulated delays \
                 are events on the cycle clock"
                    .to_string(),
            );
        }
        // T1: `thread :: scope|spawn|Builder` paths and `.spawn(` calls in
        // digest-affecting crates.
        if digest_crate && lib_kind {
            let thread_path = w >= 3
                && code[w - 1].1.is_punct(':')
                && code[w - 2].1.is_punct(':')
                && code[w - 3].1.is_ident("thread")
                && (t.is_ident("scope") || t.is_ident("spawn") || t.is_ident("Builder"));
            let dot_spawn = t.is_ident("spawn")
                && w >= 1
                && code[w - 1].1.is_punct('.')
                && w + 1 < code.len()
                && code[w + 1].1.is_punct('(');
            if thread_path || dot_spawn {
                report(
                    &mut findings,
                    t.line,
                    "T1",
                    format!(
                        "`{}` spawns host threads in digest-affecting crate `{}` — \
                         scheduling order must not reach a report; keep concurrency \
                         in audited, pragma-documented sites",
                        if thread_path {
                            format!("thread::{}", t.text)
                        } else {
                            ".spawn(...)".to_string()
                        },
                        ctx.crate_name
                    ),
                );
            }
        }
        // P1: `.unwrap(` / `.expect(` and `panic!` / `todo!` / `unimplemented!`.
        if lib_kind && ctx.kind != FileKind::Bin && !in_test[code[w].0] {
            let dot_call = w >= 1
                && code[w - 1].1.is_punct('.')
                && w + 1 < code.len()
                && code[w + 1].1.is_punct('(');
            if dot_call && (t.is_ident("unwrap") || t.is_ident("expect")) {
                report(
                    &mut findings,
                    t.line,
                    "P1",
                    format!(
                        "`.{}()` can panic in library code — return Result, use \
                         unwrap_or_else, or document the invariant with an allow \
                         pragma",
                        t.text
                    ),
                );
            }
            let bang = w + 1 < code.len() && code[w + 1].1.is_punct('!');
            if bang && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") {
                report(
                    &mut findings,
                    t.line,
                    "P1",
                    format!(
                        "`{}!` aborts in library code — return an error instead",
                        t.text
                    ),
                );
            }
        }
        // X1(a): `const EV_* :` declarations and `EV_* =>` match arms are
        // collected below; nothing to do in this pass.
    }

    // --- S1: crate roots must forbid unsafe code. -------------------------
    if ctx.is_crate_root && !has_forbid_unsafe(&code) {
        report(
            &mut findings,
            1,
            "S1",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    // --- X1(a): per-file event-kind exhaustiveness. -----------------------
    if lib_kind {
        let mut declared: Vec<(String, u32, usize)> = Vec::new();
        let mut matched: BTreeSet<String> = BTreeSet::new();
        for w in 0..code.len() {
            let t = code[w].1;
            if t.kind != TokenKind::Ident || !t.text.starts_with("EV_") {
                continue;
            }
            let is_decl = w >= 1
                && code[w - 1].1.is_ident("const")
                && w + 1 < code.len()
                && code[w + 1].1.is_punct(':');
            if is_decl {
                declared.push((t.text.clone(), t.line, code[w].0));
            } else if w + 1 < code.len() && code[w + 1].1.kind == TokenKind::FatArrow {
                matched.insert(t.text.clone());
            }
        }
        for (name, line, index) in declared {
            if !in_test[index] && !matched.contains(&name) {
                report(
                    &mut findings,
                    line,
                    "X1",
                    format!(
                        "event kind `{name}` is declared but never appears as a \
                         `{name} =>` match arm — the event loop would silently \
                         drop it"
                    ),
                );
            }
        }
    }

    // --- X1(b): collect metric literals and taxonomy declarations. --------
    if lib_kind {
        for &(i, token) in &code {
            if token.kind == TokenKind::Str
                && !in_test[i]
                && is_metric_name(&token.text)
                && !pragmas.allows("X1", token.line)
            {
                facts
                    .metric_literals
                    .push((ctx.rel_path.clone(), token.line, token.text.clone()));
            }
        }
        for w in 0..code.len() {
            if code[w].1.is_ident("METRIC_NAMES") && w >= 1 && code[w - 1].1.is_ident("const") {
                facts.taxonomy_found = true;
                for &(_, t) in code.iter().skip(w + 1) {
                    if t.is_punct(';') {
                        break;
                    }
                    if t.kind == TokenKind::Str {
                        facts.taxonomy.insert(t.text.clone());
                    }
                }
            }
        }
    }

    findings
}

/// Resolves the cross-file checks once every file has been scanned.
pub fn resolve_workspace(facts: &WorkspaceFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file, line, name) in &facts.metric_literals {
        if !facts.taxonomy_found {
            findings.push(Finding::new(
                file.clone(),
                *line,
                "X1",
                format!(
                    "metric `{name}` is emitted but no `METRIC_NAMES` taxonomy \
                     constant exists anywhere in the workspace"
                ),
            ));
        } else if !facts.taxonomy.contains(name) {
            findings.push(Finding::new(
                file.clone(),
                *line,
                "X1",
                format!(
                    "metric `{name}` is not declared in the METRIC_NAMES taxonomy \
                     — add it to MetricsRegistry's declared names or fix the typo"
                ),
            ));
        }
    }
    findings
}

/// Whether `text` looks like a taxonomy-governed metric name:
/// a governed prefix followed by `[a-z0-9_.]` only.
fn is_metric_name(text: &str) -> bool {
    METRIC_PREFIXES.iter().any(|p| {
        text.strip_prefix(p).is_some_and(|rest| {
            !rest.is_empty()
                && rest
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.')
        })
    })
}

/// Whether the token stream contains a crate-level `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(code: &[(usize, &Token)]) -> bool {
    code.windows(8).any(|w| {
        w[0].1.is_punct('#')
            && w[1].1.is_punct('!')
            && w[2].1.is_punct('[')
            && w[3].1.is_ident("forbid")
            && w[4].1.is_punct('(')
            && w[5].1.is_ident("unsafe_code")
            && w[6].1.is_punct(')')
            && w[7].1.is_punct(']')
    })
}

/// Marks which tokens sit inside a `#[cfg(test)] mod ... { ... }` region.
///
/// Returns a vector parallel to `tokens`. The detector is conservative: a
/// `#[cfg(test)]` attribute on anything other than a braced `mod` marks
/// nothing.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::Comment)
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let mut ci = 0usize;
    while ci + 3 < code.len() {
        // Match `# [ cfg ( ... test ... ) ]`.
        if !(tok(ci).is_punct('#') && tok(ci + 1).is_punct('[') && tok(ci + 2).is_ident("cfg")) {
            ci += 1;
            continue;
        }
        let mut j = ci + 3;
        if j >= code.len() || !tok(j).is_punct('(') {
            ci += 1;
            continue;
        }
        // Scan the balanced cfg(...) body for a `test` ident.
        let mut depth = 0usize;
        let mut saw_test = false;
        while j < code.len() {
            if tok(j).is_punct('(') {
                depth += 1;
            } else if tok(j).is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tok(j).is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        // Expect the closing `]`, then (skipping further attributes) `mod
        // name {`.
        j += 1;
        if !saw_test || j >= code.len() || !tok(j).is_punct(']') {
            ci += 1;
            continue;
        }
        j += 1;
        while j + 1 < code.len() && tok(j).is_punct('#') && tok(j + 1).is_punct('[') {
            // Skip a subsequent attribute: to its matching `]`.
            let mut depth = 0usize;
            j += 1;
            while j < code.len() {
                if tok(j).is_punct('[') {
                    depth += 1;
                } else if tok(j).is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        }
        if j + 2 < code.len() && tok(j).is_ident("mod") && tok(j + 2).is_punct('{') {
            // Mark from the opening brace to its match.
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < code.len() {
                if tok(k).is_punct('{') {
                    depth += 1;
                } else if tok(k).is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let start = code[ci];
            let end = code.get(k).copied().unwrap_or(tokens.len() - 1);
            for flag in in_test.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
            ci = k.min(code.len());
        }
        ci += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint(rel_path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext::classify(rel_path);
        let tokens = lex(src);
        let pragmas = Pragmas::parse(rel_path, &tokens);
        let mut facts = WorkspaceFacts::default();
        let mut findings = lint_tokens(&ctx, &tokens, &pragmas, &mut facts);
        findings.extend(resolve_workspace(&facts));
        findings
    }

    #[test]
    fn d1_fires_only_in_digest_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint("crates/cluster/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/hypervisor/src/x.rs", src).len(), 0);
        assert_eq!(lint("crates/cluster/tests/x.rs", src).len(), 0);
    }

    #[test]
    fn d1_exempts_cfg_test_mod() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let _ = HashMap::<u8, u8>::new(); }\n}\n";
        assert_eq!(lint("crates/neu10/src/x.rs", src).len(), 0);
    }

    #[test]
    fn d2_fires_everywhere_but_bench_and_shims() {
        let src = "use std::time::Instant;\nfn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", src).len(), 2);
        assert_eq!(lint("crates/bench/src/bin/perf.rs", src).len(), 0);
        assert_eq!(lint("crates/shims/criterion/src/lib.rs", src).len(), 0);
        assert_eq!(lint("tests/integration.rs", src).len(), 2);
    }

    #[test]
    fn d3_bans_entropy_rngs() {
        let src = "let mut rng = rand::thread_rng();\n";
        assert_eq!(lint("crates/workloads/src/x.rs", src).len(), 1);
        let seeded = "let mut rng = StdRng::seed_from_u64(7);\n";
        assert_eq!(lint("crates/workloads/src/x.rs", seeded).len(), 0);
    }

    #[test]
    fn p1_scope_and_patterns() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\"); }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", src).len(), 2);
        // Binaries, tests and examples may panic.
        assert_eq!(lint("crates/bench/src/bin/fig.rs", src).len(), 0);
        assert_eq!(lint("tests/t.rs", src).len(), 0);
        assert_eq!(lint("examples/e.rs", src).len(), 0);
        // unwrap_or_else is fine; so is a () -bang-free `panic` path ident.
        let ok = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", ok).len(), 0);
    }

    #[test]
    fn s1_requires_forbid_on_crate_roots() {
        assert_eq!(lint("crates/neu10/src/lib.rs", "pub fn f() {}\n").len(), 1);
        assert_eq!(
            lint(
                "crates/neu10/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}\n"
            )
            .len(),
            0
        );
        // Non-root files don't need the attribute.
        assert_eq!(lint("crates/neu10/src/x.rs", "pub fn f() {}\n").len(), 0);
    }

    #[test]
    fn t1_concurrency_primitives_in_digest_crates() {
        let src = "use std::sync::{mpsc, Mutex};\nfn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        // Line 1 carries two flagged idents; line 2 thread::scope plus .spawn(.
        assert_eq!(lint("crates/cluster/src/x.rs", src).len(), 4);
        // Outside the digest-affecting crates the same source is fine.
        assert_eq!(lint("crates/hypervisor/src/x.rs", src).len(), 0);
        // Unlike D1, #[cfg(test)] mods are NOT exempt: a scheduling-dependent
        // test is flaky by construction.
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert_eq!(lint("crates/cluster/src/x.rs", in_test).len(), 1);
        // An audited site suppresses with a reasoned pragma.
        let allowed = "use std::sync::mpsc; // simlint::allow(T1, reason = \"audited pool\")\n";
        assert_eq!(lint("crates/cluster/src/x.rs", allowed).len(), 0);
    }

    #[test]
    fn x1_event_kinds_need_match_arms() {
        let bad = "const EV_LOST: u8 = 9;\nfn f(k: u8) { match k { 0 => {}, _ => {} } }\n";
        let findings = lint("crates/cluster/src/x.rs", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("EV_LOST"));
        let good = "const EV_OK: u8 = 1;\nfn f(k: u8) { match k { EV_OK => {}, _ => {} } }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", good).len(), 0);
    }

    #[test]
    fn x1_metrics_need_taxonomy() {
        let with_taxonomy = "pub const METRIC_NAMES: &[&str] = &[\"serving.completed\"];\nfn f(r: &mut R) { r.inc(\"serving.completed\"); }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", with_taxonomy).len(), 0);
        let undeclared = "pub const METRIC_NAMES: &[&str] = &[\"serving.completed\"];\nfn f(r: &mut R) { r.inc(\"serving.compelted\"); }\n";
        let findings = lint("crates/cluster/src/x.rs", undeclared);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("serving.compelted"));
        let no_taxonomy = "fn f(r: &mut R) { r.inc(\"control.scale_ups\"); }\n";
        let findings = lint("crates/cluster/src/x.rs", no_taxonomy);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `METRIC_NAMES` taxonomy"));
    }

    #[test]
    fn x1_covers_fault_and_recovery_prefixes() {
        let undeclared = "pub const METRIC_NAMES: &[&str] = &[\"fault.injected\"];\nfn f(r: &mut R) { r.inc(\"fault.injected\"); r.inc(\"recovery.failovers\"); }\n";
        let findings = lint("crates/cluster/src/x.rs", undeclared);
        assert_eq!(
            findings.len(),
            1,
            "the undeclared recovery.* name is caught"
        );
        assert!(findings[0].message.contains("recovery.failovers"));
        let declared = "pub const METRIC_NAMES: &[&str] = &[\"fault.injected\", \"recovery.failovers\"];\nfn f(r: &mut R) { r.inc(\"fault.injected\"); r.inc(\"recovery.failovers\"); }\n";
        assert_eq!(lint("crates/cluster/src/x.rs", declared).len(), 0);
    }

    #[test]
    fn pragmas_suppress_exactly_one_line() {
        let src = "use std::collections::HashMap; // simlint::allow(D1, reason = \"lookup-only\")\nuse std::collections::HashSet;\n";
        let findings = lint("crates/cluster/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn shims_are_fully_exempt() {
        let src = "use std::time::Instant;\nfn f() { x.unwrap(); panic!(); }\n";
        assert_eq!(lint("crates/shims/criterion/src/lib.rs", src).len(), 0);
    }
}
