//! Findings and their rendering.

use std::fmt;

/// One diagnostic: a rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line of the offending token.
    pub line: u32,
    /// The rule identifier (`D1`, `P1`, `X1`, [`crate::rules::RULE_PRAGMA`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        file: impl Into<String>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    /// Renders as `file:line:rule: message` — one line, grep- and
    /// editor-clickable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts findings into the canonical deterministic order: by file path,
/// then line, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders all findings plus a one-line summary, suitable for stderr or a
/// CI step summary.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for finding in findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("simlint: no findings\n");
    } else {
        out.push_str(&format!(
            "simlint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_colon_separated() {
        let f = Finding::new("crates/x/src/lib.rs", 7, "D1", "HashMap in digest crate");
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7:D1: HashMap in digest crate"
        );
    }

    #[test]
    fn sort_is_by_file_line_rule() {
        let mut findings = vec![
            Finding::new("b.rs", 1, "P1", "x"),
            Finding::new("a.rs", 9, "D2", "x"),
            Finding::new("a.rs", 9, "D1", "x"),
        ];
        sort_findings(&mut findings);
        assert_eq!(findings[0].file, "a.rs");
        assert_eq!(findings[0].rule, "D1");
        assert_eq!(findings[2].file, "b.rs");
    }
}
