//! Workspace discovery: which `.rs` files exist and what role each plays.
//!
//! Classification is purely path-shaped — no `Cargo.toml` parsing — because
//! the workspace follows the standard cargo layout:
//!
//! * `crates/<name>/src/**` is library code of crate `<name>` (except
//!   `src/bin/**` and `src/main.rs`, which are binaries);
//! * `crates/<name>/{tests,benches,examples}/**` and the workspace-root
//!   `tests/**` / `examples/**` are test-shaped targets;
//! * `crates/shims/**` are the vendored offline stand-ins for external
//!   crates (`rand`, `proptest`, `criterion`) and are exempt from every
//!   rule — they emulate third-party code, they are not ours to harden;
//! * directories named `target`, `fixtures`, or starting with `.` are
//!   skipped (`fixtures` holds simlint's own deliberately-failing inputs).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of cargo target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under some `src/` (the linted surface).
    Lib,
    /// A binary: `src/bin/**` or `src/main.rs`.
    Bin,
    /// An integration test under `tests/`.
    Test,
    /// A benchmark under `benches/`.
    Bench,
    /// An example under `examples/`.
    Example,
}

/// Where a file sits in the workspace — the context rules dispatch on.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The owning crate (`cluster`, `neu10`, ... or the facade name for
    /// workspace-root `src`/`tests`/`examples`).
    pub crate_name: String,
    /// The target kind this file compiles into.
    pub kind: FileKind,
    /// Whether the file belongs to `crates/shims/**`.
    pub is_shim: bool,
    /// Whether the file is a library crate root (`src/lib.rs`).
    pub is_crate_root: bool,
}

impl FileContext {
    /// Classifies a workspace-relative path (must use `/` separators).
    pub fn classify(rel_path: &str) -> FileContext {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let is_shim = parts.first() == Some(&"crates") && parts.get(1) == Some(&"shims");
        let (crate_name, in_crate): (String, &[&str]) = if parts.first() == Some(&"crates") {
            if is_shim {
                (
                    format!("shim-{}", parts.get(2).copied().unwrap_or("?")),
                    parts.get(3..).unwrap_or(&[]),
                )
            } else {
                (
                    parts.get(1).copied().unwrap_or("?").to_string(),
                    parts.get(2..).unwrap_or(&[]),
                )
            }
        } else {
            // Workspace-root facade crate: src/, tests/, examples/.
            ("neu10-repro".to_string(), &parts[..])
        };
        let kind = match in_crate.first() {
            Some(&"tests") => FileKind::Test,
            Some(&"benches") => FileKind::Bench,
            Some(&"examples") => FileKind::Example,
            Some(&"src") => {
                if in_crate.get(1) == Some(&"bin") || in_crate.last() == Some(&"main.rs") {
                    FileKind::Bin
                } else {
                    FileKind::Lib
                }
            }
            _ => FileKind::Lib,
        };
        let is_crate_root = in_crate == ["src", "lib.rs"];
        FileContext {
            rel_path: rel_path.to_string(),
            crate_name,
            kind,
            is_shim,
            is_crate_root,
        }
    }
}

/// Recursively collects every `.rs` file under `root`, classified and in a
/// deterministic (sorted-path) order. Directories named `target`,
/// `fixtures`, or starting with `.` are skipped.
pub fn walk(root: &Path) -> io::Result<Vec<(PathBuf, FileContext)>> {
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, FileContext)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let context = FileContext::classify(&rel);
            out.push((path, context));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let lib = FileContext::classify("crates/cluster/src/serving.rs");
        assert_eq!(lib.crate_name, "cluster");
        assert_eq!(lib.kind, FileKind::Lib);
        assert!(!lib.is_shim);
        assert!(!lib.is_crate_root);

        let root = FileContext::classify("crates/neu10/src/lib.rs");
        assert!(root.is_crate_root);
        assert_eq!(root.kind, FileKind::Lib);

        let bin = FileContext::classify("crates/bench/src/bin/perf_fleet.rs");
        assert_eq!(bin.kind, FileKind::Bin);

        let main = FileContext::classify("crates/simlint/src/main.rs");
        assert_eq!(main.kind, FileKind::Bin);

        let shim = FileContext::classify("crates/shims/rand/src/lib.rs");
        assert!(shim.is_shim);
        assert_eq!(shim.crate_name, "shim-rand");

        let test = FileContext::classify("tests/serving_golden.rs");
        assert_eq!(test.kind, FileKind::Test);
        assert_eq!(test.crate_name, "neu10-repro");

        let example = FileContext::classify("examples/autopilot.rs");
        assert_eq!(example.kind, FileKind::Example);

        let facade = FileContext::classify("src/lib.rs");
        assert!(facade.is_crate_root);
        assert_eq!(facade.kind, FileKind::Lib);

        let crate_bench = FileContext::classify("crates/bench/benches/dispatch.rs");
        assert_eq!(crate_bench.kind, FileKind::Bench);
    }
}
