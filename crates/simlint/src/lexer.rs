//! A minimal Rust lexer — just enough token structure for line-oriented
//! static analysis.
//!
//! The environment is offline, so `simlint` cannot depend on `syn` or
//! `proc-macro2`; instead this hand-rolled lexer handles exactly the
//! constructs that would otherwise corrupt a naive text scan:
//!
//! * line comments (`//`, `///`, `//!`) — skipped, but surfaced as
//!   [`Comment`](Token) tokens so the pragma layer can read
//!   `// simlint::allow(...)` suppressions;
//! * **nested** block comments (`/* /* */ */`), which Rust permits and
//!   which defeat regex-based scanners;
//! * string literals with escapes (`"a \" b"`), byte strings (`b"..."`),
//!   and raw strings with arbitrary hash fences (`r#"..."#`, `br##"..."##`);
//! * char literals (`'a'`, `'\n'`, `b'\''`) **disambiguated from
//!   lifetimes** (`'a`, `'static`, `'_`) and loop labels (`'outer:`);
//! * numeric literals including floats, exponents and suffixes
//!   (`1.2e12`, `0xFF_u64`, `1..=n` does *not* eat the range dots).
//!
//! Everything else becomes [`TokenKind::Ident`] or [`TokenKind::Punct`]
//! tokens carrying a 1-indexed line number.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `const`, `match`, ...).
    Ident,
    /// A string literal of any flavor; [`Token::text`] holds the *inner*
    /// (unquoted, still-escaped) content.
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime or loop label (`'a`, `'static`); `text` excludes the tick.
    Lifetime,
    /// A numeric literal, suffix included.
    Number,
    /// A single punctuation character (`.`, `(`, `#`, ...). Multi-character
    /// operators are emitted one char at a time except [`TokenKind::FatArrow`].
    Punct,
    /// The two-character `=>` operator, pre-joined because match-arm
    /// detection (rule X1) keys on it.
    FatArrow,
    /// A `//...` line comment or `/*...*/` block comment, full text
    /// including the delimiters. Block comments carry the line they *start*
    /// on.
    Comment,
}

/// One lexed token: kind, 1-indexed source line, and text.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The 1-indexed line the token starts on.
    pub line: u32,
    /// The token text (for [`TokenKind::Str`], the inner content without
    /// quotes; for [`TokenKind::Lifetime`], without the leading `'`).
    pub text: String,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.chars().eq(std::iter::once(ch))
    }
}

/// Lexes `source` into tokens (comments included, whitespace dropped).
///
/// The lexer never fails: unterminated literals degrade to a token running
/// to end-of-file, which is the right behavior for a linter that must not
/// crash on the file it is diagnosing.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(source)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, source: &str) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment();
                    self.push(TokenKind::Comment, line, &source[start..self.pos]);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment();
                    self.push(TokenKind::Comment, line, &source[start..self.pos]);
                }
                b'r' | b'b' if self.raw_string_fence(start).is_some() => {
                    let (inner_start, inner_end) = self.take_raw_string(start);
                    self.push(TokenKind::Str, line, &source[inner_start..inner_end]);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 2;
                    let inner = self.take_quoted(b'"');
                    self.push(TokenKind::Str, line, &source[inner.0..inner.1]);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 2;
                    let inner = self.take_quoted(b'\'');
                    self.push(TokenKind::Char, line, &source[inner.0..inner.1]);
                }
                b'"' => {
                    self.pos += 1;
                    let inner = self.take_quoted(b'"');
                    self.push(TokenKind::Str, line, &source[inner.0..inner.1]);
                }
                b'\'' => self.take_tick(source),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    while self
                        .current()
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Ident, line, &source[start..self.pos]);
                }
                b'0'..=b'9' => {
                    self.take_number();
                    self.push(TokenKind::Number, line, &source[start..self.pos]);
                }
                b'=' if self.peek(1) == Some(b'>') => {
                    self.pos += 2;
                    self.push(TokenKind::FatArrow, line, "=>");
                }
                _ => {
                    // Advance a full UTF-8 character so a stray non-ASCII
                    // byte outside strings/comments cannot split a char
                    // boundary and panic the slice below.
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = (self.pos + width).min(self.src.len());
                    self.push(TokenKind::Punct, line, &source[start..self.pos]);
                }
            }
        }
        self.out
    }

    fn current(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, line: u32, text: &str) {
        self.out.push(Token {
            kind,
            line,
            text: text.to_string(),
        });
    }

    fn take_line_comment(&mut self) {
        while let Some(b) = self.current() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    /// Consumes a `/* ... */` comment, honoring nesting and counting lines.
    fn take_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(b) = self.current() {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
    }

    /// If `start` begins a raw-string prefix (`r`, `br`, `rb`), returns the
    /// number of `#` fence characters.
    fn raw_string_fence(&self, start: usize) -> Option<usize> {
        let mut i = start;
        if self.src.get(i) == Some(&b'b') {
            i += 1;
        }
        if self.src.get(i) != Some(&b'r') {
            return None;
        }
        i += 1;
        let mut hashes = 0usize;
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        (self.src.get(i) == Some(&b'"')).then_some(hashes)
    }

    /// Consumes a raw string starting at `start`; returns the inner content
    /// byte range (content between the quotes, fences excluded).
    fn take_raw_string(&mut self, start: usize) -> (usize, usize) {
        let hashes = self.raw_string_fence(start).unwrap_or(0);
        // Skip prefix: optional `b`, `r`, fences, opening quote.
        while self.current().is_some_and(|b| b != b'"') {
            self.pos += 1;
        }
        self.pos += 1;
        let inner_start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'"' && self.fence_follows(self.pos + 1, hashes) {
                let inner_end = self.pos;
                self.pos += 1 + hashes;
                return (inner_start, inner_end);
            } else {
                self.pos += 1;
            }
        }
        (inner_start, self.src.len())
    }

    fn fence_follows(&self, from: usize, hashes: usize) -> bool {
        (0..hashes).all(|i| self.src.get(from + i) == Some(&b'#'))
    }

    /// Consumes an escaped-quoted literal body (cursor already past the
    /// opening quote); returns the inner content byte range.
    fn take_quoted(&mut self, quote: u8) -> (usize, usize) {
        let inner_start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'\\' {
                // The escaped byte may itself be a newline (a string
                // line-continuation); it still advances the line counter.
                if self.peek(1) == Some(b'\n') {
                    self.line += 1;
                }
                self.pos += 2;
            } else if b == quote {
                let inner_end = self.pos;
                self.pos += 1;
                return (inner_start, inner_end);
            } else {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        (inner_start, self.src.len())
    }

    /// Disambiguates `'x'` (char literal) from `'a` / `'static` / `'_`
    /// (lifetime or loop label): a tick followed by an identifier char is a
    /// char literal only if a closing tick immediately follows one
    /// identifier character.
    fn take_tick(&mut self, source: &str) {
        let line = self.line;
        let start = self.pos;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: '\n', '\'', '\\', '\u{...}'. The
                // escape body is left to `take_quoted`, whose backslash
                // handling skips the escaped character.
                self.pos += 1;
                let inner = self.take_quoted(b'\'');
                self.push(TokenKind::Char, line, &source[inner.0..inner.1]);
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                if self.peek(2) == Some(b'\'') {
                    // 'x' — a one-character char literal.
                    self.pos += 3;
                    self.push(TokenKind::Char, line, &source[start + 1..start + 2]);
                } else {
                    // 'lifetime — consume the identifier, no closing tick.
                    self.pos += 1;
                    let ident_start = self.pos;
                    while self
                        .current()
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Lifetime, line, &source[ident_start..self.pos]);
                }
            }
            _ => {
                // Non-identifier char literal: '(', ' ', '0'...
                self.pos += 1;
                let inner = self.take_quoted(b'\'');
                self.push(TokenKind::Char, line, &source[inner.0..inner.1]);
            }
        }
    }

    /// Consumes a numeric literal: integers, floats (`1.5`, `1.2e12`,
    /// `1e-3`), radix prefixes and type suffixes. Careful with ranges —
    /// `1..=n` must leave the dots alone.
    fn take_number(&mut self) {
        while let Some(b) = self.current() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Exponent sign: `1e-3` / `2.5E+10`.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 2;
                }
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Decimal point only when a digit follows; `1..` is a range.
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = map.get(&k);");
        assert!(toks.contains(&(TokenKind::Ident, "get".into())));
        assert!(toks.contains(&(TokenKind::Punct, ".".into())));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::Comment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn strings_with_escapes_and_raw_fences() {
        let toks = kinds(r####"let a = "quote \" inside"; let b = r#"raw "fence" ok"#;"####);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, r#"quote \" inside"#);
        assert_eq!(strs[1].1, r#"raw "fence" ok"#);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; 'outer: loop {} }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Lifetime)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Char)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 1..=max { let f = 1.2e12; let h = 0xFF_u64; }");
        let numbers: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Number)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(numbers, vec!["1", "1.2e12", "0xFF_u64"]);
    }

    #[test]
    fn fat_arrow_is_joined_and_lines_tracked() {
        let toks = lex("match x {\n    A => 1,\n}");
        let arrow = toks.iter().find(|t| t.kind == TokenKind::FatArrow);
        assert_eq!(arrow.map(|t| t.line), Some(2));
    }

    #[test]
    fn string_line_continuations_still_count_lines() {
        // A `\<newline>` inside a string escapes the newline for rustc but
        // must still advance the lexer's line counter, or every diagnostic
        // after the string points one line too early.
        let toks = lex("let s = \"first \\\n    second\";\nafter();");
        let after = toks.iter().find(|t| t.text == "after");
        assert_eq!(after.map(|t| t.line), Some(3));
    }

    #[test]
    fn line_comment_token_carries_text() {
        let toks = lex("code(); // simlint::allow(D1, reason = \"x\")");
        let comment = toks.iter().find(|t| t.kind == TokenKind::Comment);
        assert!(comment.is_some_and(|t| t.text.contains("simlint::allow")));
    }
}
