//! The `// simlint::allow(RULE, reason = "...")` suppression pragma.
//!
//! A pragma suppresses findings of one named rule on **a single line**:
//!
//! * written at the end of a code line, it suppresses that line;
//! * written on a line of its own, it suppresses the **next** line.
//!
//! The `reason` is mandatory — an allow without a justification is itself
//! reported as a [`crate::rules::RULE_PRAGMA`] finding, as is a malformed
//! pragma or one naming an unknown rule. There is deliberately no
//! file-level or block-level suppression: every exemption is visible at the
//! line it excuses.

use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::rules::{known_rule, RULE_PRAGMA};

/// One parsed suppression: `rule` findings on `line` are allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed (e.g. `"D1"`).
    pub rule: String,
    /// The 1-indexed source line the suppression applies to.
    pub line: u32,
}

/// All suppressions in a file, plus any findings about the pragmas
/// themselves (missing reason, unknown rule, malformed syntax).
#[derive(Debug, Default)]
pub struct Pragmas {
    allows: Vec<Allow>,
    /// Diagnostics for malformed pragmas.
    pub findings: Vec<Finding>,
}

impl Pragmas {
    /// Whether findings of `rule` on `line` are suppressed.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.line == line && a.rule == rule)
    }

    /// Parses every pragma comment in `tokens` (the full token stream of
    /// one file, comments included).
    pub fn parse(file: &str, tokens: &[Token]) -> Pragmas {
        let mut pragmas = Pragmas::default();
        for (i, token) in tokens.iter().enumerate() {
            if token.kind != TokenKind::Comment || !is_pragma_comment(&token.text) {
                continue;
            }
            // A pragma on its own line targets the next line; a trailing
            // pragma targets its own line. "Own line" means no non-comment
            // token earlier on the same line.
            let standalone = !tokens[..i]
                .iter()
                .rev()
                .take_while(|t| t.line == token.line)
                .any(|t| t.kind != TokenKind::Comment);
            let target = if standalone {
                token.line + 1
            } else {
                token.line
            };
            match parse_allow(&token.text) {
                Ok(rule) => {
                    if known_rule(&rule) {
                        pragmas.allows.push(Allow { rule, line: target });
                    } else {
                        pragmas.findings.push(Finding::new(
                            file,
                            token.line,
                            RULE_PRAGMA,
                            format!("allow pragma names unknown rule `{rule}`"),
                        ));
                    }
                }
                Err(message) => {
                    pragmas
                        .findings
                        .push(Finding::new(file, token.line, RULE_PRAGMA, message));
                }
            }
        }
        pragmas
    }
}

/// Whether a comment *is* a pragma, as opposed to prose that merely
/// mentions one: a plain `//` line comment (not `///` or `//!` docs — those
/// describe code, they don't configure the linter) whose first word is
/// `simlint::allow`.
fn is_pragma_comment(comment: &str) -> bool {
    let Some(rest) = comment.strip_prefix("//") else {
        return false;
    };
    if rest.starts_with('/') || rest.starts_with('!') {
        return false;
    }
    rest.trim_start().starts_with("simlint::allow")
}

/// Parses one comment's `simlint::allow(RULE, reason = "...")` body,
/// returning the rule name or an error message.
fn parse_allow(comment: &str) -> Result<String, String> {
    let after = comment
        .split_once("simlint::allow")
        .map(|(_, rest)| rest)
        .unwrap_or("");
    let Some(open) = after.find('(') else {
        return Err("malformed allow pragma: expected `(RULE, reason = \"...\")`".to_string());
    };
    let Some(close) = after.rfind(')') else {
        return Err("malformed allow pragma: missing closing `)`".to_string());
    };
    if close < open {
        return Err("malformed allow pragma: missing closing `)`".to_string());
    }
    let body = &after[open + 1..close];
    let Some((rule, rest)) = body.split_once(',') else {
        return Err(format!(
            "allow pragma for `{}` is missing the mandatory `reason = \"...\"`",
            body.trim()
        ));
    };
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("malformed allow pragma: empty rule name".to_string());
    }
    let rest = rest.trim();
    let reason_value = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start);
    match reason_value {
        Some(value) if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') => {
            let inner = &value[1..value.len() - 1];
            if inner.trim().is_empty() {
                Err(format!(
                    "allow pragma for `{rule}` has an empty reason — say why the \
                     exemption is sound"
                ))
            } else {
                Ok(rule.to_string())
            }
        }
        _ => Err(format!(
            "allow pragma for `{rule}` is missing the mandatory `reason = \"...\"`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let toks =
            lex("let m = HashMap::new(); // simlint::allow(D1, reason = \"never iterated\")");
        let pragmas = Pragmas::parse("f.rs", &toks);
        assert!(pragmas.findings.is_empty());
        assert!(pragmas.allows("D1", 1));
        assert!(!pragmas.allows("D1", 2));
        assert!(!pragmas.allows("D2", 1));
    }

    #[test]
    fn standalone_pragma_targets_next_line() {
        let toks = lex(
            "// simlint::allow(P1, reason = \"invariant: checked above\")\nx.expect(\"checked\");",
        );
        let pragmas = Pragmas::parse("f.rs", &toks);
        assert!(pragmas.findings.is_empty());
        assert!(pragmas.allows("P1", 2));
        assert!(!pragmas.allows("P1", 1));
    }

    #[test]
    fn missing_reason_is_rejected() {
        for bad in [
            "// simlint::allow(D1)",
            "// simlint::allow(D1, reason)",
            "// simlint::allow(D1, reason = )",
            "// simlint::allow(D1, reason = \"\")",
            "// simlint::allow(D1, because = \"x\")",
        ] {
            let pragmas = Pragmas::parse("f.rs", &lex(bad));
            assert_eq!(pragmas.findings.len(), 1, "{bad}");
            assert_eq!(pragmas.findings[0].rule, RULE_PRAGMA, "{bad}");
            assert!(!pragmas.allows("D1", 1), "{bad}");
            assert!(!pragmas.allows("D1", 2), "{bad}");
        }
    }

    #[test]
    fn prose_mentions_are_not_pragmas() {
        for prose in [
            "/// Suppress with `// simlint::allow(D1, reason = \"...\")`.",
            "//! the `// simlint::allow(RULE, reason = \"...\")` comment pragma",
            "// A comment that merely mentions simlint::allow(D1) mid-sentence.",
        ] {
            let pragmas = Pragmas::parse("f.rs", &lex(prose));
            assert!(pragmas.findings.is_empty(), "{prose}");
            assert!(!pragmas.allows("D1", 1), "{prose}");
            assert!(!pragmas.allows("D1", 2), "{prose}");
        }
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let pragmas = Pragmas::parse("f.rs", &lex("// simlint::allow(Z9, reason = \"x\")"));
        assert_eq!(pragmas.findings.len(), 1);
        assert!(pragmas.findings[0].message.contains("unknown rule"));
    }
}
