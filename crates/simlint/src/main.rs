//! The `simlint` CLI.
//!
//! ```text
//! simlint --workspace [--root PATH]   lint the whole workspace (default root: cwd)
//! simlint --explain RULE              print a rule's full rationale
//! simlint --list                      print the rule table
//! simlint --file PATH --as RELPATH    lint one file as if at RELPATH (fixture/debug aid)
//! ```
//!
//! Exit status: 0 when clean, 1 on any finding, 2 on usage or I/O errors.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::{resolve_workspace, WorkspaceFacts};
use simlint::{lint_source, lint_workspace, report, rule_info, FileContext, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("simlint: {message}");
            ExitCode::from(2)
        }
    }
}

/// Executes one CLI invocation; `Ok(false)` means findings were printed.
fn run(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut explain: Option<String> = None;
    let mut list = false;
    let mut file: Option<PathBuf> = None;
    let mut rel_as: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--list" => list = true,
            "--root" => {
                root = Some(PathBuf::from(take_value(args, &mut i, "--root")?));
            }
            "--explain" => {
                explain = Some(take_value(args, &mut i, "--explain")?);
            }
            "--file" => {
                file = Some(PathBuf::from(take_value(args, &mut i, "--file")?));
            }
            "--as" => {
                rel_as = Some(take_value(args, &mut i, "--as")?);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
        i += 1;
    }

    if let Some(rule) = explain {
        let info = rule_info(&rule)
            .ok_or_else(|| format!("unknown rule `{rule}` — try --list for the rule table"))?;
        println!("{}", info.explain);
        return Ok(true);
    }
    if list {
        for rule in RULES {
            println!("{}  {}", rule.id, rule.summary);
        }
        return Ok(true);
    }
    if let Some(path) = file {
        let rel = rel_as.unwrap_or_else(|| path.to_string_lossy().into_owned());
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let ctx = FileContext::classify(&rel);
        let mut facts = WorkspaceFacts::default();
        let mut findings = lint_source(&ctx, &source, &mut facts);
        findings.extend(resolve_workspace(&facts));
        report::sort_findings(&mut findings);
        print!("{}", report::render(&findings));
        return Ok(findings.is_empty());
    }
    if workspace {
        let root = match root {
            Some(root) => root,
            None => env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?,
        };
        let findings =
            lint_workspace(&root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
        print!("{}", report::render(&findings));
        return Ok(findings.is_empty());
    }
    Err(format!("nothing to do\n{}", usage()))
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn usage() -> String {
    let mut out = String::from(
        "usage:\n  simlint --workspace [--root PATH]   lint every .rs file in the workspace\n  \
         simlint --explain RULE              print a rule's full rationale\n  \
         simlint --list                      print the rule table\n  \
         simlint --file PATH [--as RELPATH]  lint one file under a claimed workspace path\n\nrules:\n",
    );
    for rule in RULES {
        out.push_str(&format!("  {}  {}\n", rule.id, rule.summary));
    }
    out
}
