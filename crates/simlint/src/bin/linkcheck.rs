//! `linkcheck` — intra-repo Markdown link checker.
//!
//! Walks every `.md` file under the root (skipping `target/` and `.git/`),
//! extracts inline links and images (`[text](target)` / `![alt](target)`),
//! and verifies that every **intra-repo** target resolves: relative paths
//! must exist on disk, and `#fragment` anchors must match a heading in the
//! target document (GitHub slug rules). External schemes (`http:`, `https:`,
//! `mailto:`) are skipped — this environment is offline, and CI should not
//! depend on the internet to validate the repo's own docs.
//!
//! ```text
//! linkcheck [--root PATH]
//! ```
//!
//! Exit status: 0 when every link resolves, 1 when any is broken, 2 on
//! usage or I/O errors. Dependency-free by design, like the rest of
//! `simlint`: the link checker must never be the thing that breaks the
//! build.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("linkcheck: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("linkcheck [--root PATH]  check intra-repo Markdown links");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("linkcheck: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let mut files = Vec::new();
    if let Err(err) = collect_markdown(&root, &mut files) {
        eprintln!("linkcheck: walking {}: {err}", root.display());
        return ExitCode::from(2);
    }
    files.sort();

    // Anchor validation needs every document's heading set, including
    // documents only reachable as link targets, so read them all up front.
    let mut sources: BTreeMap<PathBuf, String> = BTreeMap::new();
    for file in &files {
        match fs::read_to_string(file) {
            Ok(text) => {
                sources.insert(file.clone(), text);
            }
            Err(err) => {
                eprintln!("linkcheck: reading {}: {err}", file.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut broken = 0usize;
    let mut checked = 0usize;
    for (file, text) in &sources {
        for link in extract_links(text) {
            let Some(target) = intra_repo_target(&link.target) else {
                continue;
            };
            checked += 1;
            let (path_part, fragment) = match target.split_once('#') {
                Some((path, fragment)) => (path, Some(fragment)),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone()
            } else if let Some(rooted) = path_part.strip_prefix('/') {
                root.join(rooted)
            } else {
                file.parent().unwrap_or(Path::new(".")).join(path_part)
            };
            if !resolved.exists() {
                broken += 1;
                println!(
                    "{}:{}: broken link `{}` — {} does not exist",
                    display_rel(file, &root),
                    link.line,
                    link.target,
                    resolved.display()
                );
                continue;
            }
            if let Some(fragment) = fragment {
                let canonical = resolved.canonicalize().unwrap_or(resolved.clone());
                let anchors = sources
                    .iter()
                    .find(|(path, _)| {
                        path.canonicalize().unwrap_or_else(|_| (*path).clone()) == canonical
                    })
                    .map(|(_, text)| heading_slugs(text));
                match anchors {
                    Some(slugs) if !slugs.contains(&fragment.to_ascii_lowercase()) => {
                        broken += 1;
                        println!(
                            "{}:{}: broken anchor `{}` — no heading in {} slugs to `#{}`",
                            display_rel(file, &root),
                            link.line,
                            link.target,
                            display_rel(&resolved, &root),
                            fragment,
                        );
                    }
                    // A fragment into a non-Markdown target (or a directory)
                    // is not checkable; the path existing is enough.
                    _ => {}
                }
            }
        }
    }

    println!(
        "linkcheck: {} files, {} intra-repo links, {} broken",
        sources.len(),
        checked,
        broken
    );
    if broken > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.md` files, skipping build output and VCS metadata.
fn collect_markdown(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_markdown(&path, out)?;
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
    Ok(())
}

struct Link {
    target: String,
    line: usize,
}

/// Extracts inline `[text](target)` / `![alt](target)` links, ignoring
/// fenced code blocks and inline code spans (link syntax inside code is
/// documentation of syntax, not a link).
fn extract_links(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (index, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut in_code = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        let target = &line[i + 2..i + 2 + close];
                        // Strip an optional Markdown title: `(path "title")`.
                        let target = target.split_whitespace().next().unwrap_or("");
                        if !target.is_empty() {
                            links.push(Link {
                                target: target.to_string(),
                                line: index + 1,
                            });
                        }
                        i += 2 + close;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    links
}

/// Returns the target if it points inside the repo (`None` for external
/// schemes), percent-decoding left to the author — repo paths are ASCII.
fn intra_repo_target(target: &str) -> Option<String> {
    let lowered = target.to_ascii_lowercase();
    if lowered.starts_with("http://")
        || lowered.starts_with("https://")
        || lowered.starts_with("mailto:")
        || lowered.starts_with("ftp://")
    {
        return None;
    }
    Some(target.to_string())
}

/// GitHub-style heading slugs of one Markdown document: lowercase, spaces
/// to hyphens, punctuation (other than hyphens/underscores) dropped.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let heading = trimmed.trim_start_matches('#').trim();
        // Inline code ticks and emphasis markers don't survive slugging.
        let mut slug = String::new();
        for ch in heading.chars() {
            match ch {
                ' ' => slug.push('-'),
                '-' | '_' => slug.push(ch),
                c if c.is_alphanumeric() => slug.extend(c.to_lowercase()),
                _ => {}
            }
        }
        slugs.push(slug);
    }
    slugs
}

/// Renders a path relative to the walk root for stable diagnostics.
fn display_rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}
