//! End-to-end CLI tests: exit codes, `--explain`, and the self-check that
//! the real workspace is clean.
//!
//! The self-check is the linchpin: every rule fixture proves the rule *can*
//! fire, and this test proves the shipped tree gives it nothing to fire on
//! — so a regression anywhere in the workspace fails `cargo test` before it
//! ever reaches the CI `analysis` job.

use std::path::{Path, PathBuf};
use std::process::Command;

fn simlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_self_check_is_clean() {
    let output = simlint()
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run simlint");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "simlint --workspace must be clean on the shipped tree:\n{stdout}"
    );
    assert!(
        stdout.contains("no findings"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn findings_exit_nonzero_with_file_line_rule_format() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/d1_fail.rs");
    let output = simlint()
        .args(["--file"])
        .arg(&fixture)
        .args(["--as", "crates/cluster/src/fixture.rs"])
        .output()
        .expect("run simlint");
    assert_eq!(
        output.status.code(),
        Some(1),
        "findings must exit 1 (distinct from usage errors at 2)"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crates/cluster/src/fixture.rs:2:D1:"),
        "diagnostics are file:line:rule: — got:\n{stdout}"
    );
}

#[test]
fn explain_documents_every_rule() {
    for rule in ["D1", "D2", "D3", "P1", "S1", "X1", "PRAGMA"] {
        let output = simlint()
            .args(["--explain", rule])
            .output()
            .expect("run simlint");
        assert!(output.status.success(), "--explain {rule} must succeed");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.trim().len() > 100,
            "--explain {rule} must carry a real rationale, got: {stdout}"
        );
    }
}

#[test]
fn unknown_rule_and_bad_usage_exit_2() {
    let unknown = simlint()
        .args(["--explain", "Z9"])
        .output()
        .expect("run simlint");
    assert_eq!(unknown.status.code(), Some(2));

    let nothing = simlint().output().expect("run simlint");
    assert_eq!(
        nothing.status.code(),
        Some(2),
        "no mode selected is a usage error"
    );
}
