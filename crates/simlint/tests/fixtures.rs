//! Fixture tests: one deliberately-failing and one passing input per rule.
//!
//! Each fixture under `tests/fixtures/` is linted *as if* it sat at a path
//! where the rule applies (`FileContext::classify` is purely path-shaped,
//! so the claimed path selects the rule's scope). The walker skips
//! `fixtures` directories, so these files never pollute a `--workspace`
//! run.

use simlint::rules::{resolve_workspace, WorkspaceFacts};
use simlint::{lint_source, FileContext, Finding};

/// Lints one fixture under a claimed workspace-relative path.
fn lint_as(rel_path: &str, fixture: &str) -> Vec<Finding> {
    let ctx = FileContext::classify(rel_path);
    let mut facts = WorkspaceFacts::default();
    let mut findings = lint_source(&ctx, fixture, &mut facts);
    findings.extend(resolve_workspace(&facts));
    findings
}

/// Asserts the failing fixture reports `rule` (and nothing else) while the
/// passing fixture is clean, both under the same claimed path.
fn assert_pair(rule: &str, rel_path: &str, fail: &str, pass: &str) {
    let failing = lint_as(rel_path, fail);
    assert!(
        !failing.is_empty(),
        "{rule}: the failing fixture must produce findings"
    );
    assert!(
        failing.iter().all(|f| f.rule == rule),
        "{rule}: the failing fixture must only trip {rule}, got {failing:?}"
    );
    let passing = lint_as(rel_path, pass);
    assert!(
        passing.is_empty(),
        "{rule}: the passing fixture must be clean, got {passing:?}"
    );
}

#[test]
fn d1_hash_collections_in_digest_crates() {
    assert_pair(
        "D1",
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/d1_fail.rs"),
        include_str!("fixtures/d1_pass.rs"),
    );
    // Outside the digest-affecting crates the same source is fine.
    assert!(lint_as(
        "crates/hypervisor/src/fixture.rs",
        include_str!("fixtures/d1_fail.rs")
    )
    .is_empty());
}

#[test]
fn d2_wall_clock_outside_bench() {
    assert_pair(
        "D2",
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/d2_fail.rs"),
        include_str!("fixtures/d2_pass.rs"),
    );
    // The bench harness is the one place wall-clock reads belong.
    assert!(lint_as(
        "crates/bench/src/bin/fixture.rs",
        include_str!("fixtures/d2_fail.rs")
    )
    .is_empty());
}

#[test]
fn d3_entropy_seeded_rngs() {
    assert_pair(
        "D3",
        "crates/workloads/src/fixture.rs",
        include_str!("fixtures/d3_fail.rs"),
        include_str!("fixtures/d3_pass.rs"),
    );
}

#[test]
fn p1_panics_in_library_code() {
    assert_pair(
        "P1",
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/p1_fail.rs"),
        include_str!("fixtures/p1_pass.rs"),
    );
    // Tests and binaries may panic freely.
    assert!(lint_as("tests/fixture.rs", include_str!("fixtures/p1_fail.rs")).is_empty());
    assert!(lint_as(
        "crates/bench/src/bin/fixture.rs",
        include_str!("fixtures/p1_fail.rs")
    )
    .is_empty());
}

#[test]
fn s1_forbid_unsafe_on_crate_roots() {
    assert_pair(
        "S1",
        "crates/neu10/src/lib.rs",
        include_str!("fixtures/s1_fail.rs"),
        include_str!("fixtures/s1_pass.rs"),
    );
    // Shim crate roots emulate third-party code and are exempt.
    assert!(lint_as(
        "crates/shims/rand/src/lib.rs",
        include_str!("fixtures/s1_fail.rs")
    )
    .is_empty());
}

#[test]
fn t1_concurrency_outside_audited_sites() {
    assert_pair(
        "T1",
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/t1_fail.rs"),
        include_str!("fixtures/t1_pass.rs"),
    );
    // Outside the digest-affecting crates host concurrency is not simlint's
    // concern.
    assert!(lint_as(
        "crates/hypervisor/src/fixture.rs",
        include_str!("fixtures/t1_fail.rs")
    )
    .is_empty());
}

#[test]
fn x1_event_kinds_need_match_arms() {
    assert_pair(
        "X1",
        "crates/cluster/src/serving.rs",
        include_str!("fixtures/x1_event_fail.rs"),
        include_str!("fixtures/x1_event_pass.rs"),
    );
    let findings = lint_as(
        "crates/cluster/src/serving.rs",
        include_str!("fixtures/x1_event_fail.rs"),
    );
    assert!(
        findings.iter().any(|f| f.message.contains("EV_LOST")),
        "the dead event kind must be named: {findings:?}"
    );
}

#[test]
fn x1_metric_names_need_taxonomy() {
    assert_pair(
        "X1",
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/x1_metric_fail.rs"),
        include_str!("fixtures/x1_metric_pass.rs"),
    );
    let findings = lint_as(
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/x1_metric_fail.rs"),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("serving.compelted")),
        "the undeclared metric must be named: {findings:?}"
    );
}

#[test]
fn pragma_with_reason_suppresses_its_line() {
    let findings = lint_as(
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/pragma_pass.rs"),
    );
    assert!(
        findings.is_empty(),
        "both pragma forms must suppress their target: {findings:?}"
    );
}

#[test]
fn pragma_without_reason_is_rejected_and_suppresses_nothing() {
    let findings = lint_as(
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/pragma_no_reason.rs"),
    );
    assert!(
        findings.iter().any(|f| f.rule == "PRAGMA"),
        "a reason-less pragma is itself a finding: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == "D1"),
        "a rejected pragma must not suppress the underlying finding: {findings:?}"
    );
}
