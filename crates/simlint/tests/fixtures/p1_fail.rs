// Fixture: P1 must fire — panicking calls in library code.
pub fn pick(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

pub fn boom() {
    panic!("library code must not panic");
}
