// Fixture: D3 must stay quiet — explicit seeds reproduce.
pub fn draw(seed: u64) -> u64 {
    let mut rng = rand::StdRng::seed_from_u64(seed);
    rng.next_u64()
}
