// Fixture: D1 must stay quiet — ordered maps iterate deterministically.
use std::collections::BTreeMap;

pub fn total(load: &BTreeMap<u64, u64>) -> u64 {
    load.values().sum()
}
