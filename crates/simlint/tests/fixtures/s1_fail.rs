// Fixture: S1 must fire — a crate root without `#![forbid(unsafe_code)]`.

pub fn f() -> u64 {
    1
}
