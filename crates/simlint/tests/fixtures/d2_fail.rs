// Fixture: D2 must fire — wall-clock reads outside bench/shims.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
