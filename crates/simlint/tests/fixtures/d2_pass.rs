// Fixture: D2 must stay quiet — simulation code uses the virtual clock.
pub fn stamp(now_cycles: u64, delta: u64) -> u64 {
    now_cycles + delta
}
