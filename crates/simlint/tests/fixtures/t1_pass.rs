// Fixture: T1 must stay quiet — an audited concurrency site documents with a
// reasoned pragma why thread scheduling cannot reach a report.
use std::sync::mpsc; // simlint::allow(T1, reason = "audited pool: jobs move by value, results re-sort by tag")

pub fn round_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) { // simlint::allow(T1, reason = "audited pool: jobs move by value, results re-sort by tag")
    // simlint::allow(T1, reason = "audited pool: jobs move by value, results re-sort by tag")
    mpsc::channel()
}
