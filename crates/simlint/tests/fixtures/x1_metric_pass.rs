// Fixture: X1 must stay quiet — the emitted metric is declared.
pub const METRIC_NAMES: &[&str] = &["serving.completed"];

pub fn record(registry: &mut Registry) {
    registry.inc("serving.completed");
}
