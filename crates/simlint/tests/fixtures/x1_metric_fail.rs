// Fixture: X1 must fire — a metric name missing from the taxonomy
// (a typo would silently split one counter into two).
pub const METRIC_NAMES: &[&str] = &["serving.completed"];

pub fn record(registry: &mut Registry) {
    registry.inc("serving.compelted");
}
