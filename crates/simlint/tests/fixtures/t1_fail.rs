// Fixture: T1 must fire — host-concurrency primitives in a digest crate.
use std::sync::mpsc;

pub fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(|| results.lock().unwrap_or_else(|p| p.into_inner()).push(job));
        }
    });
    results.into_inner().unwrap_or_else(|p| p.into_inner())
}
