// Fixture: a reason-less pragma is itself a finding AND suppresses nothing.
// simlint::allow(D1)
use std::collections::HashMap;

pub fn total(load: &HashMap<u64, u64>) -> u64 {
    load.len() as u64
}
