// Fixture: X1 must fire — an event kind with no match arm is dead.
pub const EV_LOST: u8 = 9;
pub const EV_SEEN: u8 = 1;

pub fn step(kind: u8) -> u8 {
    match kind {
        EV_SEEN => 1,
        _ => 0,
    }
}
