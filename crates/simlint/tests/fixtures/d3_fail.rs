// Fixture: D3 must fire — an entropy-seeded RNG is unreproducible.
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
