// Fixture: D1 must fire — a HashMap in a digest-affecting crate.
use std::collections::HashMap;

pub fn total(load: &HashMap<u64, u64>) -> u64 {
    load.values().sum()
}
