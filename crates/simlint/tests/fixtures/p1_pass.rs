// Fixture: P1 must stay quiet — fallible paths return options and defaults.
pub fn pick(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0)
}

pub fn try_pick(values: &[u64]) -> Option<u64> {
    values.first().copied()
}
