// Fixture: well-formed pragmas suppress their target line — the standalone
// form covers the next line, the trailing form its own.
// simlint::allow(D1, reason = "point lookups only; never iterated")
use std::collections::HashMap;

pub fn total(load: &HashMap<u64, u64>) -> u64 { // simlint::allow(D1, reason = "audited lookup-only map")
    load.len() as u64
}
