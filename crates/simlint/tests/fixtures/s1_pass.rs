// Fixture: S1 must stay quiet — the crate root forbids unsafe code.
#![forbid(unsafe_code)]

pub fn f() -> u64 {
    1
}
