// Fixture: X1 must stay quiet — every event kind has its arm.
pub const EV_SEEN: u8 = 1;

pub fn step(kind: u8) -> u8 {
    match kind {
        EV_SEEN => 1,
        _ => 0,
    }
}
