//! The telemetry bus and the control-plane hook of the serving simulator.
//!
//! A closed-loop cluster controller (autoscaler, defragmenter, …) cannot act
//! on the cumulative counters a finished [`crate::serving::ServingReport`]
//! exposes — it needs *periodic* samples of the live fleet. When a run is
//! configured with [`crate::ServingOptions::with_telemetry`], the serving
//! simulator emits a [`TelemetryFrame`] every sampling interval: one
//! [`ReplicaSample`] per live replica (queue depth, batch occupancy,
//! utilization over the window) and one [`ModelSample`] per served model
//! (window p99, window deadline-miss rate, arrivals, rejections).
//!
//! A [`ControlPlane`] implementation observes each frame and answers with
//! [`ControlAction`]s, which the simulator applies *inside* the same
//! event loop, keeping runs deterministic:
//!
//! * [`ControlAction::ScaleUp`] places a new replica through the cluster's
//!   placement engine and it starts serving immediately;
//! * [`ControlAction::ScaleDown`] drains a replica (no new dispatches, the
//!   queue is served to completion) and then releases its vNPU;
//! * [`ControlAction::Migrate`] migrates a replica — cold or live pre-copy,
//!   per its [`MigrationMode`] — priced by the run's
//!   [`crate::MigrationCostModel`] exactly like a scheduled migration.
//!
//! The `autopilot` crate builds its autoscaling policies and the fleet
//! defragmenter on top of this interface.

use std::collections::BTreeMap;

use neu10::{DeadlineStats, LatencySummary};
use npu_sim::Cycles;
use workloads::ModelId;

use crate::cluster::{DeploySpec, NpuCluster, VnpuHandle};
use crate::migration::MigrationMode;
use crate::obs::AlertTransition;
use crate::placement::PlacementPolicy;
use crate::NodeId;

/// One live replica's state at a telemetry tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSample {
    /// The replica's deployment handle.
    pub handle: VnpuHandle,
    /// The model the replica serves.
    pub model: ModelId,
    /// Requests waiting in the replica's queue.
    pub queue_len: usize,
    /// Requests in the batch currently being served (0 = idle).
    pub in_flight: usize,
    /// Whether the replica is draining towards release (scale-down).
    pub draining: bool,
    /// Fraction of the elapsed window the replica spent serving.
    pub utilization: f64,
}

impl ReplicaSample {
    /// Outstanding work on the replica: queued plus in-service requests.
    pub fn outstanding(&self) -> usize {
        self.queue_len + self.in_flight
    }
}

/// Per-model aggregates over one telemetry window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSample {
    /// The model described.
    pub model: ModelId,
    /// Live (non-draining) replicas of the model.
    pub replicas: usize,
    /// Requests queued across the model's replicas at the tick.
    pub queued: usize,
    /// Requests in service across the model's replicas at the tick.
    pub in_flight: usize,
    /// Requests admitted for the model during the window.
    pub arrivals: usize,
    /// Requests rejected (no replica or overload) during the window.
    pub rejected: usize,
    /// Latency summary over the window's completions.
    pub latency: LatencySummary,
    /// Deadline bookkeeping over the window's completions and drops.
    pub deadline: DeadlineStats,
}

impl ModelSample {
    /// An all-zero sample of `model` — the state a telemetry window starts
    /// from before replicas and window counters are folded in.
    pub fn empty(model: ModelId) -> Self {
        ModelSample {
            model,
            replicas: 0,
            queued: 0,
            in_flight: 0,
            arrivals: 0,
            rejected: 0,
            latency: LatencySummary::default(),
            deadline: DeadlineStats::default(),
        }
    }

    /// Outstanding work across the model's replicas.
    pub fn outstanding(&self) -> usize {
        self.queued + self.in_flight
    }

    /// Outstanding work per live replica (the classic autoscaling signal);
    /// a model with zero live replicas reports its raw backlog.
    pub fn outstanding_per_replica(&self) -> f64 {
        self.outstanding() as f64 / self.replicas.max(1) as f64
    }
}

/// Everything the control plane sees at one sampling tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// The tick's timestamp.
    pub at: Cycles,
    /// Cycles elapsed since the previous tick (the window length).
    pub window: Cycles,
    /// One sample per live (not yet released) replica, in table order.
    pub replicas: Vec<ReplicaSample>,
    /// Per-model aggregates, keyed by model.
    pub models: BTreeMap<ModelId, ModelSample>,
}

impl TelemetryFrame {
    /// The sample of one model, if it is served or saw traffic this window.
    pub fn model(&self, model: ModelId) -> Option<&ModelSample> {
        self.models.get(&model)
    }

    /// The live (non-draining) replicas of one model.
    pub fn replicas_of(&self, model: ModelId) -> impl Iterator<Item = &ReplicaSample> {
        self.replicas
            .iter()
            .filter(move |r| r.model == model && !r.draining)
    }
}

/// An action the control plane asks the serving simulator to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Place one new replica through the placement engine; it starts serving
    /// at the tick that issued the action.
    ScaleUp {
        /// What to deploy.
        spec: DeploySpec,
        /// How to pick the hosting node.
        placement: PlacementPolicy,
    },
    /// Drain the replica (no new dispatches) and release its vNPU once its
    /// queue and in-flight batch have been served.
    ScaleDown {
        /// The replica to retire.
        handle: VnpuHandle,
    },
    /// Migrate the replica to `to`, priced by the run's migration cost
    /// model. [`MigrationMode::Cold`] drains and goes dark for the full
    /// state transfer; [`MigrationMode::PreCopy`] streams state while the
    /// replica keeps serving and stops only for the residual dirty delta.
    Migrate {
        /// The replica to move.
        handle: VnpuHandle,
        /// The destination node.
        to: NodeId,
        /// How the state moves.
        mode: MigrationMode,
    },
}

/// A closed-loop cluster controller driven by the serving simulator.
///
/// Called once per telemetry tick with the frame and a read-only view of the
/// cluster; the returned actions are applied immediately, in order. The
/// controller must be deterministic for reproducible runs — same frames in,
/// same actions out.
pub trait ControlPlane {
    /// Observes one telemetry frame and returns the actions to apply.
    fn control(&mut self, frame: &TelemetryFrame, cluster: &NpuCluster) -> Vec<ControlAction>;

    /// Notifies the controller of an SLO alert edge (fire or resolve), as it
    /// is emitted inside the event loop. A notification, not a decision
    /// point: actions still flow through [`control`](ControlPlane::control)
    /// at the next telemetry tick, keeping the apply path single. The
    /// default ignores alerts.
    fn on_alert(&mut self, _now: Cycles, _alert: &AlertTransition) {}
}

/// The open-loop default: observes nothing, changes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopControl;

impl ControlPlane for NoopControl {
    fn control(&mut self, _frame: &TelemetryFrame, _cluster: &NpuCluster) -> Vec<ControlAction> {
        Vec::new()
    }
}

/// Counters of the control-plane activity during one serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Telemetry ticks emitted.
    pub samples: usize,
    /// Replicas added by [`ControlAction::ScaleUp`].
    pub scale_ups: usize,
    /// Scale-ups refused by the placement engine (no capacity).
    pub scale_up_rejected: usize,
    /// Drains requested by [`ControlAction::ScaleDown`].
    pub scale_downs: usize,
    /// Drained replicas whose vNPU was actually released.
    pub released: usize,
    /// Migrations requested by [`ControlAction::Migrate`].
    pub migrations_requested: usize,
    /// Requested migrations the destination refused (capacity raced away).
    pub migrations_rejected: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(model: ModelId, queue_len: usize, in_flight: usize) -> ReplicaSample {
        ReplicaSample {
            handle: VnpuHandle {
                node: NodeId(0),
                vnpu: neu10::VnpuId(0),
            },
            model,
            queue_len,
            in_flight,
            draining: false,
            utilization: 0.0,
        }
    }

    #[test]
    fn outstanding_counts_queue_and_batch() {
        assert_eq!(sample(ModelId::Mnist, 3, 4).outstanding(), 7);
        let model = ModelSample {
            model: ModelId::Mnist,
            replicas: 2,
            queued: 6,
            in_flight: 2,
            arrivals: 0,
            rejected: 0,
            latency: LatencySummary::default(),
            deadline: DeadlineStats::default(),
        };
        assert_eq!(model.outstanding(), 8);
        assert!((model.outstanding_per_replica() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn frame_filters_draining_replicas() {
        let mut draining = sample(ModelId::Mnist, 0, 0);
        draining.draining = true;
        let frame = TelemetryFrame {
            at: Cycles(100),
            window: Cycles(100),
            replicas: vec![
                sample(ModelId::Mnist, 1, 0),
                draining,
                sample(ModelId::Bert, 0, 1),
            ],
            models: BTreeMap::new(),
        };
        assert_eq!(frame.replicas_of(ModelId::Mnist).count(), 1);
        assert_eq!(frame.replicas_of(ModelId::Bert).count(), 1);
        assert!(frame.model(ModelId::Mnist).is_none());
    }
}
