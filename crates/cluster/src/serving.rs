//! The open-loop cluster serving simulator.
//!
//! Replays a [`workloads::ClusterTrace`] against the replicas deployed in an
//! [`NpuCluster`]: every arrival is routed by the [`Router`], waits in its
//! replica's queue, and is served as part of a **dynamic batch** — an idle
//! replica collects up to [`ServingOptions::max_batch`] queued requests of
//! its model and serves them in one pass, with the batch service time
//! calibrated from [`neu10::TenantWorkload`] at the *actual* batch size
//! (sublinear in the batch for weight-traffic-bound models, not
//! `batch × single`). Requests may carry **deadlines and priority classes**
//! ([`workloads::RequestArrival`]): the simulator counts deadline misses,
//! optionally drops expired requests unserved, and — under
//! [`DispatchPolicy::EarliestDeadline`] — orders each replica queue
//! earliest-deadline-first within priority classes instead of FIFO.
//!
//! Service times are deterministic by default. With
//! [`ServingOptions::with_stochastic`] they get a seeded lognormal dispersion
//! whose coefficient of variation is calibrated from
//! [`neu10::CollocationSim`] per-request latencies
//! ([`neu10::calibrate_service_time`]), so fleet tail latencies reflect
//! multi-tenant service-time noise rather than queueing alone. Runs are
//! reproducible: the same seed yields an identical [`ServingReport`].
//!
//! Cold migrations can be scheduled mid-run; a migrating replica drains its
//! in-flight batch, goes dark for the transfer + remap window, and resumes on
//! the destination node — with the whole downtime charged to the latency of
//! the requests queued behind it.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use neu10::{calibrate_service_time, DeadlineStats, IsaKind, LatencySummary, TenantWorkload};
use npu_sim::{Cycles, NpuConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::{ClusterTrace, ModelId, PriorityClass};

use crate::cluster::{NpuCluster, VnpuHandle};
use crate::migration::{MigrationCostModel, MigrationRecord};
use crate::router::{
    AdmissionControl, DispatchDecision, DispatchPolicy, ReplicaView, Router, RouterStats,
};
use crate::NodeId;

/// A migration the operator schedules before the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMigration {
    /// When the migration is triggered.
    pub at: Cycles,
    /// The deployment to move (its handle at schedule time).
    pub handle: VnpuHandle,
    /// The destination node.
    pub to: NodeId,
}

/// Seeded service-time dispersion settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticService {
    /// RNG seed; runs with the same seed produce identical reports.
    pub seed: u64,
    /// Requests per tenant in the [`neu10::CollocationSim`] calibration run
    /// that measures the dispersion.
    pub calibration_requests: usize,
    /// Overrides the calibrated coefficient of variation (useful for tests
    /// and sensitivity sweeps); `None` calibrates per (model, allocation,
    /// board).
    pub cv_override: Option<f64>,
}

impl StochasticService {
    /// Calibrated dispersion with the given seed.
    pub fn seeded(seed: u64) -> Self {
        StochasticService {
            seed,
            calibration_requests: 4,
            cv_override: None,
        }
    }

    /// Forces the coefficient of variation instead of calibrating it.
    pub fn with_cv(mut self, cv: f64) -> Self {
        self.cv_override = Some(cv.max(0.0));
        self
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServingOptions {
    /// The dispatch policy under test.
    pub dispatch: DispatchPolicy,
    /// Admission-control limits.
    pub admission: AdmissionControl,
    /// Migrations to trigger mid-run.
    pub migrations: Vec<ScheduledMigration>,
    /// The migration cost model.
    pub cost_model: MigrationCostModel,
    /// Largest number of queued requests a replica serves in one pass
    /// (1 = no batching).
    pub max_batch: usize,
    /// Drop queued requests whose deadline has already passed instead of
    /// serving them late.
    pub drop_expired: bool,
    /// Seeded service-time dispersion; `None` keeps service deterministic.
    pub stochastic: Option<StochasticService>,
}

impl ServingOptions {
    /// Default options for a dispatch policy.
    pub fn new(dispatch: DispatchPolicy) -> Self {
        ServingOptions {
            dispatch,
            admission: AdmissionControl::default(),
            migrations: Vec::new(),
            cost_model: MigrationCostModel::default(),
            max_batch: 1,
            drop_expired: false,
            stochastic: None,
        }
    }

    /// Overrides the admission limits.
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Schedules a migration.
    pub fn with_migration(mut self, at: Cycles, handle: VnpuHandle, to: NodeId) -> Self {
        self.migrations.push(ScheduledMigration { at, handle, to });
        self
    }

    /// Enables dynamic batching up to `max_batch` requests per pass.
    pub fn with_batching(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Drops expired requests unserved instead of serving them late.
    pub fn with_drop_expired(mut self) -> Self {
        self.drop_expired = true;
        self
    }

    /// Enables seeded stochastic service times.
    pub fn with_stochastic(mut self, stochastic: StochasticService) -> Self {
        self.stochastic = Some(stochastic);
        self
    }
}

/// The measurements of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// The dispatch policy that ran.
    pub dispatch: DispatchPolicy,
    /// Router counters (offered / admitted / rejected / completed). With
    /// drop-on-expiry enabled, `admitted = completed + deadline.dropped`.
    pub stats: RouterStats,
    /// Latency summary over every completed request (cycles from arrival to
    /// completion — queueing, batching, service and migration downtime
    /// included).
    pub latency: LatencySummary,
    /// Per-model latency summaries.
    pub per_model: BTreeMap<ModelId, LatencySummary>,
    /// Requests completed per node (attributed to the node that served them).
    pub per_node_completed: BTreeMap<NodeId, usize>,
    /// Deadline bookkeeping over the deadline-carrying requests.
    pub deadline: DeadlineStats,
    /// Service passes executed (a batch of k requests is one pass).
    pub batches: usize,
    /// The migrations that actually executed.
    pub migrations: Vec<MigrationRecord>,
    /// Time of the last completion (or executed-migration resume). Rejected
    /// arrivals never move the makespan.
    pub makespan: Cycles,
}

impl ServingReport {
    /// Aggregate throughput in requests per second.
    pub fn throughput_rps(&self, config: &NpuConfig) -> f64 {
        neu10::throughput_rps(self.stats.completed, self.makespan, config.frequency)
    }

    /// Mean number of requests per service pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.stats.completed as f64 / self.batches as f64
    }
}

/// One admitted request waiting in (or being served from) a replica queue.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    model: ModelId,
    arrived: u64,
    deadline: Option<u64>,
    priority: PriorityClass,
    sequence: u64,
}

impl QueuedRequest {
    /// Earliest-deadline-first ordering key: priority class, then deadline
    /// (best-effort last), then arrival order.
    fn edf_key(&self) -> (PriorityClass, u64, u64) {
        (
            self.priority,
            self.deadline.unwrap_or(u64::MAX),
            self.sequence,
        )
    }
}

#[derive(Debug)]
struct ReplicaSim {
    handle: VnpuHandle,
    model: ModelId,
    /// Calibrated service time of a k-request batch at `batch_cycles[k - 1]`.
    batch_cycles: Vec<u64>,
    /// Calibrated service-time coefficient of variation (0 = deterministic).
    cv: f64,
    queue: VecDeque<QueuedRequest>,
    in_service: Option<(Vec<QueuedRequest>, u64)>,
    available_at: u64,
    pending_migration: Option<(NodeId, u64)>,
}

impl ReplicaSim {
    fn unavailable(&self, now: u64) -> bool {
        now < self.available_at || self.pending_migration.is_some()
    }

    /// Inserts an admitted request, FIFO or EDF-ordered.
    fn enqueue(&mut self, request: QueuedRequest, edf: bool) {
        if edf {
            let at = self
                .queue
                .iter()
                .position(|queued| queued.edf_key() > request.edf_key())
                .unwrap_or(self.queue.len());
            self.queue.insert(at, request);
        } else {
            self.queue.push_back(request);
        }
    }
}

/// Mutable bookkeeping shared by the batch-formation path.
#[derive(Debug)]
struct ServeState {
    max_batch: usize,
    drop_expired: bool,
    edf: bool,
    rng: Option<StdRng>,
    deadline: DeadlineStats,
    batches: usize,
}

// Event kinds, ordered so that at equal timestamps completions free capacity
// before resumes re-open replicas and before migrations trigger.
const EV_COMPLETION: u8 = 0;
const EV_RESUME: u8 = 1;
const EV_MIGRATION: u8 = 2;

/// The fluid service-time estimate of one `batch_requests`-request batch on a
/// `mes`×`ves` replica: the model is compiled at
/// `batch_requests × evaluation_batch_size` and each operator runs at the
/// rate of the engines the replica owns and the node's HBM bandwidth. The
/// estimate is sublinear in the batch wherever per-pass work (weight
/// traffic, fixed operator overheads) amortizes.
pub fn estimated_batch_service_cycles(
    model: ModelId,
    batch_requests: usize,
    mes: usize,
    ves: usize,
    npu: &NpuConfig,
) -> u64 {
    let batch = model.evaluation_batch_size() * batch_requests.max(1) as u64;
    let workload = TenantWorkload::compile(model, batch, npu, IsaKind::NeuIsa);
    let bw_per_cycle = npu.hbm_bandwidth_bytes_per_sec / npu.frequency.hz();
    let mut total = 0.0f64;
    for op in &workload.operators {
        let mut t = 0.0f64;
        if op.me_cycles > 0 {
            let engines = op.me_parallelism.max(1).min(mes.max(1));
            t = t.max(op.me_cycles as f64 / engines as f64);
        }
        if op.ve_cycles > 0 {
            let engines = op.ve_parallelism.max(1).min(ves.max(1));
            t = t.max(op.ve_cycles as f64 / engines as f64);
        }
        if op.hbm_bytes > 0 && bw_per_cycle > 0.0 {
            t = t.max(op.hbm_bytes as f64 / bw_per_cycle);
        }
        total += t;
    }
    (total as u64).max(1)
}

/// The fluid service-time estimate of one single-request pass — the
/// batch-of-1 case of [`estimated_batch_service_cycles`]. Harnesses use this
/// to size offered load relative to fleet capacity.
pub fn estimated_service_cycles(model: ModelId, mes: usize, ves: usize, npu: &NpuConfig) -> u64 {
    estimated_batch_service_cycles(model, 1, mes, ves, npu)
}

/// A lognormal multiplier with mean 1 and the given coefficient of
/// variation, drawn via Box–Muller from the seeded generator.
fn lognormal_factor(rng: &mut StdRng, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    let sigma_sq = (1.0 + cv * cv).ln();
    let sigma = sigma_sq.sqrt();
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (-0.5 * sigma_sq + sigma * z).exp()
}

/// The per-(model, allocation, board) service calibration: batch service
/// times for every batch size up to `max_batch`, plus the stochastic
/// dispersion when enabled.
struct CalibrationEntry {
    model: ModelId,
    mes: usize,
    ves: usize,
    config: NpuConfig,
    batch_cycles: Vec<u64>,
    cv: f64,
}

/// The open-loop serving simulator.
#[derive(Debug, Clone)]
pub struct ClusterServingSim {
    options: ServingOptions,
}

impl ClusterServingSim {
    /// Builds a simulator with the given options.
    pub fn new(options: ServingOptions) -> Self {
        ClusterServingSim { options }
    }

    /// Replays `trace` against the replicas deployed in `cluster`.
    ///
    /// The cluster is mutated by scheduled migrations (their placements
    /// genuinely move); everything else is read-only.
    pub fn run(&self, cluster: &mut NpuCluster, trace: &ClusterTrace) -> ServingReport {
        let max_batch = self.options.max_batch.max(1);
        // Calibration cache: boards are compared by configuration, not node
        // identity, so a homogeneous fleet compiles each (model, allocation)
        // once per batch size.
        let mut calibrations: Vec<CalibrationEntry> = Vec::new();
        let mut replicas: Vec<ReplicaSim> = cluster
            .deployments()
            .map(|d| {
                let node = cluster.node(d.handle.node).expect("deployment node exists");
                let mes = d.config.num_mes_per_core;
                let ves = d.config.num_ves_per_core;
                let npu = node.npu_config();
                let entry = match calibrations.iter().position(|c| {
                    c.model == d.model && c.mes == mes && c.ves == ves && &c.config == npu
                }) {
                    Some(found) => &calibrations[found],
                    None => {
                        let batch_cycles = (1..=max_batch)
                            .map(|k| estimated_batch_service_cycles(d.model, k, mes, ves, npu))
                            .collect();
                        let cv = match self.options.stochastic {
                            Some(stochastic) => stochastic.cv_override.unwrap_or_else(|| {
                                calibrate_service_time(
                                    npu,
                                    d.model,
                                    mes,
                                    ves,
                                    d.model.evaluation_batch_size(),
                                    None,
                                    stochastic.calibration_requests,
                                )
                                .cv
                            }),
                            None => 0.0,
                        };
                        calibrations.push(CalibrationEntry {
                            model: d.model,
                            mes,
                            ves,
                            config: npu.clone(),
                            batch_cycles,
                            cv,
                        });
                        calibrations.last().expect("just pushed")
                    }
                };
                ReplicaSim {
                    handle: d.handle,
                    model: d.model,
                    batch_cycles: entry.batch_cycles.clone(),
                    cv: entry.cv,
                    queue: VecDeque::new(),
                    in_service: None,
                    available_at: 0,
                    pending_migration: None,
                }
            })
            .collect();

        let mut router = Router::new(self.options.dispatch, self.options.admission);
        let mut state = ServeState {
            max_batch,
            drop_expired: self.options.drop_expired,
            edf: self.options.dispatch.orders_queues_by_deadline(),
            rng: self
                .options
                .stochastic
                .map(|s| StdRng::seed_from_u64(s.seed)),
            deadline: DeadlineStats::default(),
            batches: 0,
        };
        let mut events: BinaryHeap<Reverse<(u64, u8, usize)>> = BinaryHeap::new();
        for (index, migration) in self.options.migrations.iter().enumerate() {
            events.push(Reverse((migration.at.get(), EV_MIGRATION, index)));
        }

        let arrivals = trace.arrivals();
        let mut next_arrival = 0usize;
        let mut makespan = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
        let mut per_model: BTreeMap<ModelId, Vec<u64>> = BTreeMap::new();
        let mut per_node_completed: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut migration_records: Vec<MigrationRecord> = Vec::new();

        loop {
            let event_time = events.peek().map(|Reverse((t, _, _))| *t);
            let arrival_time = arrivals.get(next_arrival).map(|a| a.at.get());
            let take_event = match (event_time, arrival_time) {
                (None, None) => break,
                (Some(t), Some(at)) => t <= at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };

            if take_event {
                let Reverse((now, kind, index)) = events.pop().expect("peeked above");
                match kind {
                    EV_COMPLETION => {
                        // Only real work moves the makespan: completions here,
                        // executed migrations via their resume event.
                        makespan = makespan.max(now);
                        let replica = &mut replicas[index];
                        let (batch, finish) = replica
                            .in_service
                            .take()
                            .expect("completion without service");
                        debug_assert_eq!(finish, now);
                        for request in &batch {
                            let latency = now.saturating_sub(request.arrived);
                            latencies.push(latency);
                            per_model.entry(request.model).or_default().push(latency);
                            if let Some(deadline) = request.deadline {
                                state.deadline.record_completion(now <= deadline);
                            }
                            router.record_completion();
                        }
                        *per_node_completed.entry(replica.handle.node).or_default() += batch.len();
                        if let Some((to, requested_at)) = replica.pending_migration.take() {
                            let drain = now.saturating_sub(requested_at);
                            Self::execute_migration(
                                cluster,
                                &mut replicas[index],
                                now,
                                to,
                                drain,
                                &self.options.cost_model,
                                &mut migration_records,
                                &mut events,
                                index,
                                &mut state,
                            );
                        } else {
                            Self::start_next(
                                &mut replicas[index],
                                now,
                                &mut events,
                                index,
                                &mut state,
                            );
                        }
                    }
                    EV_RESUME => {
                        makespan = makespan.max(now);
                        Self::start_next(&mut replicas[index], now, &mut events, index, &mut state);
                    }
                    EV_MIGRATION => {
                        let scheduled = self.options.migrations[index];
                        let Some(target) =
                            replicas.iter().position(|r| r.handle == scheduled.handle)
                        else {
                            continue; // stale handle (already moved or undeployed)
                        };
                        if replicas[target].handle.node == scheduled.to {
                            continue;
                        }
                        if replicas[target].in_service.is_some() {
                            // Drain first; the completion event finishes the job.
                            replicas[target].pending_migration = Some((scheduled.to, now));
                        } else {
                            Self::execute_migration(
                                cluster,
                                &mut replicas[target],
                                now,
                                scheduled.to,
                                0,
                                &self.options.cost_model,
                                &mut migration_records,
                                &mut events,
                                target,
                                &mut state,
                            );
                        }
                    }
                    _ => unreachable!("unknown event kind"),
                }
            } else {
                let arrival = arrivals[next_arrival];
                next_arrival += 1;
                let now = arrival.at.get();

                let views: Vec<ReplicaView> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.model == arrival.model)
                    .map(|(index, r)| ReplicaView {
                        index,
                        node: r.handle.node,
                        queue_len: r.queue.len(),
                        busy: r.in_service.is_some(),
                        unavailable: r.unavailable(now),
                        node_replicas: replicas
                            .iter()
                            .filter(|o| o.model == arrival.model && o.handle.node == r.handle.node)
                            .count(),
                    })
                    .collect();
                match router.dispatch(arrival.model, &views) {
                    DispatchDecision::Dispatch(index) => {
                        let request = QueuedRequest {
                            model: arrival.model,
                            arrived: now,
                            deadline: arrival.deadline.map(|d| d.get()),
                            priority: arrival.priority,
                            sequence: arrival.sequence,
                        };
                        replicas[index].enqueue(request, state.edf);
                        Self::start_next(&mut replicas[index], now, &mut events, index, &mut state);
                    }
                    DispatchDecision::RejectNoReplica | DispatchDecision::RejectOverload => {}
                }
            }
        }

        latencies.sort_unstable();
        ServingReport {
            dispatch: self.options.dispatch,
            stats: router.stats(),
            latency: LatencySummary::from_samples(&latencies),
            per_model: per_model
                .into_iter()
                .map(|(model, samples)| (model, LatencySummary::from_samples(&samples)))
                .collect(),
            per_node_completed,
            deadline: state.deadline,
            batches: state.batches,
            migrations: migration_records,
            makespan: Cycles(makespan),
        }
    }

    /// Starts the next service pass if the replica is idle and available:
    /// drops expired requests (when enabled), then collects up to
    /// `max_batch` queued requests into one batch.
    fn start_next(
        replica: &mut ReplicaSim,
        now: u64,
        events: &mut BinaryHeap<Reverse<(u64, u8, usize)>>,
        index: usize,
        state: &mut ServeState,
    ) {
        if replica.in_service.is_some() || now < replica.available_at {
            return;
        }
        if state.drop_expired {
            let deadline = &mut state.deadline;
            replica.queue.retain(|queued| match queued.deadline {
                Some(d) if d < now => {
                    deadline.record_dropped();
                    false
                }
                _ => true,
            });
        }
        if replica.queue.is_empty() {
            return;
        }
        let size = replica.queue.len().min(state.max_batch);
        let batch: Vec<QueuedRequest> = replica.queue.drain(..size).collect();
        let base = replica.batch_cycles[size - 1];
        let factor = match &mut state.rng {
            Some(rng) => lognormal_factor(rng, replica.cv),
            None => 1.0,
        };
        let service = ((base as f64 * factor) as u64).max(1);
        let finish = now + service;
        replica.in_service = Some((batch, finish));
        state.batches += 1;
        events.push(Reverse((finish, EV_COMPLETION, index)));
    }

    /// Runs the post-drain phases of a cold migration: snapshot + transfer +
    /// remap. The replica goes dark until `available_at` and then resumes on
    /// the destination node with its queue intact.
    #[allow(clippy::too_many_arguments)]
    fn execute_migration(
        cluster: &mut NpuCluster,
        replica: &mut ReplicaSim,
        now: u64,
        to: NodeId,
        drain_cycles: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut BinaryHeap<Reverse<(u64, u8, usize)>>,
        index: usize,
        state: &mut ServeState,
    ) {
        match cluster.migrate(replica.handle, to, cost_model, Some(drain_cycles)) {
            Ok(outcome) => {
                let post_drain = outcome.record.transfer_cycles + outcome.record.remap_cycles;
                replica.handle = outcome.new_handle();
                replica.available_at = now + post_drain;
                records.push(outcome.record);
                events.push(Reverse((replica.available_at, EV_RESUME, index)));
            }
            Err(_) => {
                // The destination refused (capacity raced away); the replica
                // keeps serving from its source node.
                Self::start_next(replica, now, events, index, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeploySpec;
    use crate::placement::PlacementPolicy;
    use workloads::RequestArrival;

    fn fleet_with_replicas(nodes: usize, replicas: usize) -> (NpuCluster, Vec<VnpuHandle>) {
        let mut fleet = NpuCluster::homogeneous(nodes, &NpuConfig::single_core());
        let handles = (0..replicas)
            .map(|_| {
                fleet
                    .deploy(
                        DeploySpec::replica(ModelId::Mnist, 2, 2),
                        PlacementPolicy::WorstFit,
                    )
                    .unwrap()
            })
            .collect();
        (fleet, handles)
    }

    fn burst_trace(count: usize, gap: u64) -> ClusterTrace {
        ClusterTrace::from_arrivals(
            (0..count)
                .map(|i| RequestArrival::new(Cycles(i as u64 * gap), ModelId::Mnist))
                .collect(),
        )
    }

    #[test]
    fn admitted_requests_all_complete() {
        let (mut fleet, _) = fleet_with_replicas(2, 2);
        let trace = burst_trace(40, 1_000);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.offered, 40);
        assert_eq!(report.stats.admitted, 40);
        assert_eq!(
            report.stats.completed, report.stats.admitted,
            "the router never drops admitted requests"
        );
        assert_eq!(report.latency.count, 40);
        assert!(report.makespan > Cycles::ZERO);
        assert!(report.throughput_rps(&NpuConfig::single_core()) > 0.0);
        assert_eq!(
            report.per_node_completed.values().sum::<usize>(),
            40,
            "every completion is attributed to a node"
        );
        // Unbatched run: one request per pass, no deadline-carrying traffic.
        assert_eq!(report.batches, 40);
        assert_eq!(report.mean_batch_size(), 1.0);
        assert_eq!(report.deadline, DeadlineStats::default());
    }

    #[test]
    fn unserved_models_are_rejected_not_lost() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let trace =
            ClusterTrace::from_arrivals(vec![RequestArrival::new(Cycles(0), ModelId::Bert)]);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::RoundRobin))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.rejected_no_replica, 1);
        assert_eq!(report.stats.completed, 0);
    }

    #[test]
    fn admission_control_bounds_queues() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        // A tight burst against a single replica with a 2-deep queue.
        let trace = burst_trace(50, 1);
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_admission(AdmissionControl { max_queue_depth: 2 });
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert!(report.stats.rejected_overload > 0, "overload must shed");
        assert_eq!(report.stats.completed, report.stats.admitted);
    }

    #[test]
    fn batching_serves_a_backlog_in_fewer_longer_passes() {
        let trace = burst_trace(32, 1);
        let (mut unbatched_fleet, _) = fleet_with_replicas(1, 1);
        let unbatched = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut unbatched_fleet, &trace);
        let (mut batched_fleet, _) = fleet_with_replicas(1, 1);
        let batched = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(8),
        )
        .run(&mut batched_fleet, &trace);

        assert_eq!(unbatched.stats.completed, 32);
        assert_eq!(batched.stats.completed, 32);
        assert!(
            batched.batches < unbatched.batches,
            "batching must coalesce the backlog ({} vs {} passes)",
            batched.batches,
            unbatched.batches
        );
        assert!(batched.mean_batch_size() > 1.0);
        // MNIST batch service is strongly sublinear, so coalescing the
        // backlog finishes it sooner and cuts the tail.
        assert!(
            batched.makespan < unbatched.makespan,
            "sublinear batches drain the backlog faster ({} vs {})",
            batched.makespan,
            unbatched.makespan
        );
        assert!(batched.latency.p99 <= unbatched.latency.p99);
    }

    #[test]
    fn deadline_misses_are_counted_and_drops_supported() {
        // One replica, a burst far exceeding what the deadline allows.
        let slack = 10_000u64;
        let trace = ClusterTrace::from_arrivals(
            (0..20)
                .map(|i| {
                    RequestArrival::new(Cycles(i), ModelId::Mnist).with_deadline(Cycles(i + slack))
                })
                .collect(),
        );
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let lenient = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &trace);
        assert_eq!(lenient.deadline.with_deadline, 20);
        assert!(
            lenient.deadline.missed > 0,
            "the backlog must blow deadlines"
        );
        assert_eq!(lenient.deadline.dropped, 0);
        assert_eq!(lenient.deadline.met + lenient.deadline.missed, 20);
        assert!(lenient.deadline.miss_rate() > 0.0);

        let (mut dropping_fleet, _) = fleet_with_replicas(1, 1);
        let dropping = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_drop_expired(),
        )
        .run(&mut dropping_fleet, &trace);
        assert!(
            dropping.deadline.dropped > 0,
            "expired requests are dropped"
        );
        assert_eq!(
            dropping.stats.completed + dropping.deadline.dropped,
            dropping.stats.admitted,
            "drops account for every admitted-but-unserved request"
        );
        assert_eq!(dropping.latency.count, dropping.stats.completed);
    }

    #[test]
    fn edf_serves_urgent_requests_first() {
        // A burst lands while the replica is busy; under EDF the
        // tight-deadline interactive request jumps the queue.
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let mut urgent = RequestArrival::new(Cycles(10), ModelId::Mnist)
            .with_deadline(Cycles(10 + service * 3))
            .with_priority(workloads::PriorityClass::Interactive);
        urgent.sequence = 3;
        let laggards: Vec<RequestArrival> = (0..3)
            .map(|i| {
                RequestArrival::new(Cycles(i), ModelId::Mnist)
                    .with_priority(workloads::PriorityClass::Batch)
            })
            .collect();
        let mut arrivals = laggards;
        arrivals.push(urgent);
        let trace = ClusterTrace::from_arrivals(arrivals);

        let run = |policy| {
            let (mut fleet, _) = fleet_with_replicas(1, 1);
            ClusterServingSim::new(ServingOptions::new(policy)).run(&mut fleet, &trace)
        };
        let fifo = run(DispatchPolicy::LeastLoaded);
        let edf = run(DispatchPolicy::EarliestDeadline);
        assert_eq!(
            fifo.deadline.missed, 1,
            "FIFO serves the urgent request last"
        );
        assert_eq!(
            edf.deadline.missed, 0,
            "EDF serves the urgent request first"
        );
    }

    #[test]
    fn stochastic_runs_are_seed_reproducible() {
        let trace = burst_trace(30, 2_000);
        let run = |seed: u64| {
            let (mut fleet, _) = fleet_with_replicas(2, 2);
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
                .with_stochastic(StochasticService::seeded(seed).with_cv(0.3));
            ClusterServingSim::new(options).run(&mut fleet, &trace)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the identical report");
        let c = run(8);
        assert_ne!(
            a.latency, c.latency,
            "a different seed must draw different service times"
        );
    }

    #[test]
    fn migration_downtime_is_charged_to_latency() {
        let trace = burst_trace(10, 2_000);
        let (mut undisturbed, _) = fleet_with_replicas(2, 1);
        let baseline = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut undisturbed, &trace);

        let (mut fleet, handles) = fleet_with_replicas(2, 1);
        let spare = NodeId(if handles[0].node.0 == 0 { 1 } else { 0 });
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_migration(
            Cycles(1),
            handles[0],
            spare,
        );
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 1, "the migration executed");
        assert!(report.migrations[0].downtime() > Cycles::ZERO);
        assert_eq!(report.stats.completed, 10, "no request was lost");
        assert!(
            report.latency.p99 > baseline.latency.p99,
            "downtime must surface in tenant latency ({} vs {})",
            report.latency.p99,
            baseline.latency.p99
        );
        // The replica genuinely moved.
        assert_eq!(fleet.node(spare).unwrap().manager().vnpu_count(), 1);
        assert_eq!(
            fleet.node(handles[0].node).unwrap().manager().vnpu_count(),
            0
        );
    }

    #[test]
    fn makespan_ignores_trailing_rejected_arrivals() {
        // Regression: a trailing rejected arrival used to inflate the
        // makespan (and deflate throughput) with zero work done.
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let baseline_trace = burst_trace(5, 1_000);
        let baseline = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &baseline_trace);

        let far_future = baseline.makespan.get() * 1_000;
        let mut arrivals: Vec<RequestArrival> = (0..5)
            .map(|i| RequestArrival::new(Cycles(i * 1_000), ModelId::Mnist))
            .collect();
        // No replica serves BERT: the trailing arrival is rejected.
        arrivals.push(RequestArrival::new(Cycles(far_future), ModelId::Bert));
        let (mut rejected_fleet, _) = fleet_with_replicas(1, 1);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut rejected_fleet, &ClusterTrace::from_arrivals(arrivals));
        assert_eq!(report.stats.rejected_no_replica, 1);
        assert_eq!(
            report.makespan, baseline.makespan,
            "a rejected arrival must not move the makespan"
        );
        assert_eq!(
            report.throughput_rps(&NpuConfig::single_core()),
            baseline.throughput_rps(&NpuConfig::single_core())
        );
    }

    #[test]
    fn round_robin_routes_around_a_migrating_replica() {
        // Regression: RR used to keep dispatching to the dark replica and
        // charge the whole migration downtime to the queued requests. Two
        // replicas on different nodes; replica 0 migrates at t = 0 to a third
        // node while the whole burst arrives during the dark window.
        let mut fleet = NpuCluster::homogeneous(3, &NpuConfig::single_core());
        let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
        let a = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        let spare = NodeId(
            (0..3)
                .find(|id| *id != a.node.0 && *id != b.node.0)
                .unwrap(),
        );
        let trace = burst_trace(20, 500);
        let options =
            ServingOptions::new(DispatchPolicy::RoundRobin).with_migration(Cycles(0), a, spare);
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 1);
        assert_eq!(report.stats.completed, 20);
        assert_eq!(
            report.per_node_completed.get(&b.node),
            Some(&20),
            "every request of the dark window is served by the live replica"
        );
    }
}
