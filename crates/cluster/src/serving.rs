//! The open-loop cluster serving simulator.
//!
//! Replays a [`workloads::ClusterTrace`] against the replicas deployed in an
//! [`NpuCluster`]: every arrival is routed by the [`Router`], waits in its
//! replica's FIFO queue, and occupies the replica for the model's calibrated
//! service time. Cold migrations can be scheduled mid-run; a migrating
//! replica drains its in-flight request, goes dark for the transfer + remap
//! window, and resumes on the destination node — with the whole downtime
//! charged to the latency of the requests queued behind it.
//!
//! Service times are calibrated from the same compiled operator streams the
//! single-board runtime replays ([`neu10::TenantWorkload`]), so fleet-level
//! numbers stay consistent with the per-board simulation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use neu10::{IsaKind, LatencySummary, TenantWorkload};
use npu_sim::{Cycles, NpuConfig};
use workloads::{ClusterTrace, ModelId};

use crate::cluster::{NpuCluster, VnpuHandle};
use crate::migration::{MigrationCostModel, MigrationRecord};
use crate::router::{
    AdmissionControl, DispatchDecision, DispatchPolicy, ReplicaView, Router, RouterStats,
};
use crate::NodeId;

/// A migration the operator schedules before the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMigration {
    /// When the migration is triggered.
    pub at: Cycles,
    /// The deployment to move (its handle at schedule time).
    pub handle: VnpuHandle,
    /// The destination node.
    pub to: NodeId,
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServingOptions {
    /// The dispatch policy under test.
    pub dispatch: DispatchPolicy,
    /// Admission-control limits.
    pub admission: AdmissionControl,
    /// Migrations to trigger mid-run.
    pub migrations: Vec<ScheduledMigration>,
    /// The migration cost model.
    pub cost_model: MigrationCostModel,
}

impl ServingOptions {
    /// Default options for a dispatch policy.
    pub fn new(dispatch: DispatchPolicy) -> Self {
        ServingOptions {
            dispatch,
            admission: AdmissionControl::default(),
            migrations: Vec::new(),
            cost_model: MigrationCostModel::default(),
        }
    }

    /// Overrides the admission limits.
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Schedules a migration.
    pub fn with_migration(mut self, at: Cycles, handle: VnpuHandle, to: NodeId) -> Self {
        self.migrations.push(ScheduledMigration { at, handle, to });
        self
    }
}

/// The measurements of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// The dispatch policy that ran.
    pub dispatch: DispatchPolicy,
    /// Router counters (offered / admitted / rejected / completed).
    pub stats: RouterStats,
    /// Latency summary over every completed request (cycles from arrival to
    /// completion — queueing, service and migration downtime included).
    pub latency: LatencySummary,
    /// Per-model latency summaries.
    pub per_model: BTreeMap<ModelId, LatencySummary>,
    /// Requests completed per node (attributed to the node that served them).
    pub per_node_completed: BTreeMap<NodeId, usize>,
    /// The migrations that actually executed.
    pub migrations: Vec<MigrationRecord>,
    /// Time of the last completion.
    pub makespan: Cycles,
}

impl ServingReport {
    /// Aggregate throughput in requests per second.
    pub fn throughput_rps(&self, config: &NpuConfig) -> f64 {
        neu10::throughput_rps(self.stats.completed, self.makespan, config.frequency)
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    model: ModelId,
    arrived: u64,
}

#[derive(Debug)]
struct ReplicaSim {
    handle: VnpuHandle,
    model: ModelId,
    service_cycles: u64,
    queue: VecDeque<Request>,
    in_service: Option<(Request, u64)>,
    available_at: u64,
    pending_migration: Option<(NodeId, u64)>,
}

impl ReplicaSim {
    fn unavailable(&self, now: u64) -> bool {
        now < self.available_at || self.pending_migration.is_some()
    }
}

// Event kinds, ordered so that at equal timestamps completions free capacity
// before resumes re-open replicas and before migrations trigger.
const EV_COMPLETION: u8 = 0;
const EV_RESUME: u8 = 1;
const EV_MIGRATION: u8 = 2;

/// The fluid service-time estimate of one request on a `mes`×`ves` replica:
/// each operator runs at the rate of the engines the replica owns and the
/// node's HBM bandwidth. Harnesses use this to size offered load relative to
/// fleet capacity.
pub fn estimated_service_cycles(model: ModelId, mes: usize, ves: usize, npu: &NpuConfig) -> u64 {
    let workload =
        TenantWorkload::compile(model, model.evaluation_batch_size(), npu, IsaKind::NeuIsa);
    let bw_per_cycle = npu.hbm_bandwidth_bytes_per_sec / npu.frequency.hz();
    let mut total = 0.0f64;
    for op in &workload.operators {
        let mut t = 0.0f64;
        if op.me_cycles > 0 {
            let engines = op.me_parallelism.max(1).min(mes.max(1));
            t = t.max(op.me_cycles as f64 / engines as f64);
        }
        if op.ve_cycles > 0 {
            let engines = op.ve_parallelism.max(1).min(ves.max(1));
            t = t.max(op.ve_cycles as f64 / engines as f64);
        }
        if op.hbm_bytes > 0 && bw_per_cycle > 0.0 {
            t = t.max(op.hbm_bytes as f64 / bw_per_cycle);
        }
        total += t;
    }
    (total as u64).max(1)
}

/// The open-loop serving simulator.
#[derive(Debug, Clone)]
pub struct ClusterServingSim {
    options: ServingOptions,
}

impl ClusterServingSim {
    /// Builds a simulator with the given options.
    pub fn new(options: ServingOptions) -> Self {
        ClusterServingSim { options }
    }

    /// Replays `trace` against the replicas deployed in `cluster`.
    ///
    /// The cluster is mutated by scheduled migrations (their placements
    /// genuinely move); everything else is read-only.
    pub fn run(&self, cluster: &mut NpuCluster, trace: &ClusterTrace) -> ServingReport {
        // Calibration cache: boards are compared by configuration, not node
        // identity, so a homogeneous fleet compiles each (model, allocation)
        // exactly once.
        let mut service_cache: Vec<(ModelId, usize, usize, NpuConfig, u64)> = Vec::new();
        let mut replicas: Vec<ReplicaSim> = cluster
            .deployments()
            .map(|d| {
                let node = cluster.node(d.handle.node).expect("deployment node exists");
                let mes = d.config.num_mes_per_core;
                let ves = d.config.num_ves_per_core;
                let npu = node.npu_config();
                let service_cycles = match service_cache
                    .iter()
                    .find(|(m, me, ve, config, _)| {
                        *m == d.model && *me == mes && *ve == ves && config == npu
                    })
                    .map(|(_, _, _, _, cycles)| *cycles)
                {
                    Some(cycles) => cycles,
                    None => {
                        let cycles = estimated_service_cycles(d.model, mes, ves, npu);
                        service_cache.push((d.model, mes, ves, npu.clone(), cycles));
                        cycles
                    }
                };
                ReplicaSim {
                    handle: d.handle,
                    model: d.model,
                    service_cycles,
                    queue: VecDeque::new(),
                    in_service: None,
                    available_at: 0,
                    pending_migration: None,
                }
            })
            .collect();

        let mut router = Router::new(self.options.dispatch, self.options.admission);
        let mut events: BinaryHeap<Reverse<(u64, u8, usize)>> = BinaryHeap::new();
        for (index, migration) in self.options.migrations.iter().enumerate() {
            events.push(Reverse((migration.at.get(), EV_MIGRATION, index)));
        }

        let arrivals = trace.arrivals();
        let mut next_arrival = 0usize;
        let mut makespan = 0u64;
        let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
        let mut per_model: BTreeMap<ModelId, Vec<u64>> = BTreeMap::new();
        let mut per_node_completed: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut migration_records: Vec<MigrationRecord> = Vec::new();

        loop {
            let event_time = events.peek().map(|Reverse((t, _, _))| *t);
            let arrival_time = arrivals.get(next_arrival).map(|a| a.at.get());
            let take_event = match (event_time, arrival_time) {
                (None, None) => break,
                (Some(t), Some(at)) => t <= at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };

            if take_event {
                let Reverse((now, kind, index)) = events.pop().expect("peeked above");
                makespan = makespan.max(now);
                match kind {
                    EV_COMPLETION => {
                        let replica = &mut replicas[index];
                        let (request, finish) = replica
                            .in_service
                            .take()
                            .expect("completion without service");
                        debug_assert_eq!(finish, now);
                        let latency = now.saturating_sub(request.arrived);
                        latencies.push(latency);
                        per_model.entry(request.model).or_default().push(latency);
                        *per_node_completed.entry(replica.handle.node).or_default() += 1;
                        router.record_completion();
                        if let Some((to, requested_at)) = replica.pending_migration.take() {
                            let drain = now.saturating_sub(requested_at);
                            Self::execute_migration(
                                cluster,
                                &mut replicas[index],
                                now,
                                to,
                                drain,
                                &self.options.cost_model,
                                &mut migration_records,
                                &mut events,
                                index,
                            );
                        } else {
                            Self::start_next(&mut replicas[index], now, &mut events, index);
                        }
                    }
                    EV_RESUME => {
                        Self::start_next(&mut replicas[index], now, &mut events, index);
                    }
                    EV_MIGRATION => {
                        let scheduled = self.options.migrations[index];
                        let Some(target) =
                            replicas.iter().position(|r| r.handle == scheduled.handle)
                        else {
                            continue; // stale handle (already moved or undeployed)
                        };
                        if replicas[target].handle.node == scheduled.to {
                            continue;
                        }
                        if replicas[target].in_service.is_some() {
                            // Drain first; the completion event finishes the job.
                            replicas[target].pending_migration = Some((scheduled.to, now));
                        } else {
                            Self::execute_migration(
                                cluster,
                                &mut replicas[target],
                                now,
                                scheduled.to,
                                0,
                                &self.options.cost_model,
                                &mut migration_records,
                                &mut events,
                                target,
                            );
                        }
                    }
                    _ => unreachable!("unknown event kind"),
                }
            } else {
                let arrival = arrivals[next_arrival];
                next_arrival += 1;
                let now = arrival.at.get();
                makespan = makespan.max(now);

                let views: Vec<ReplicaView> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.model == arrival.model)
                    .map(|(index, r)| ReplicaView {
                        index,
                        node: r.handle.node,
                        queue_len: r.queue.len(),
                        busy: r.in_service.is_some(),
                        unavailable: r.unavailable(now),
                        node_replicas: replicas
                            .iter()
                            .filter(|o| o.model == arrival.model && o.handle.node == r.handle.node)
                            .count(),
                    })
                    .collect();
                match router.dispatch(arrival.model, &views) {
                    DispatchDecision::Dispatch(index) => {
                        replicas[index].queue.push_back(Request {
                            model: arrival.model,
                            arrived: now,
                        });
                        Self::start_next(&mut replicas[index], now, &mut events, index);
                    }
                    DispatchDecision::RejectNoReplica | DispatchDecision::RejectOverload => {}
                }
            }
        }

        latencies.sort_unstable();
        ServingReport {
            dispatch: self.options.dispatch,
            stats: router.stats(),
            latency: LatencySummary::from_samples(&latencies),
            per_model: per_model
                .into_iter()
                .map(|(model, samples)| (model, LatencySummary::from_samples(&samples)))
                .collect(),
            per_node_completed,
            migrations: migration_records,
            makespan: Cycles(makespan),
        }
    }

    /// Starts the next queued request if the replica is idle and available.
    fn start_next(
        replica: &mut ReplicaSim,
        now: u64,
        events: &mut BinaryHeap<Reverse<(u64, u8, usize)>>,
        index: usize,
    ) {
        if replica.in_service.is_some() || now < replica.available_at {
            return;
        }
        if let Some(request) = replica.queue.pop_front() {
            let finish = now + replica.service_cycles;
            replica.in_service = Some((request, finish));
            events.push(Reverse((finish, EV_COMPLETION, index)));
        }
    }

    /// Runs the post-drain phases of a cold migration: snapshot + transfer +
    /// remap. The replica goes dark until `available_at` and then resumes on
    /// the destination node with its queue intact.
    #[allow(clippy::too_many_arguments)]
    fn execute_migration(
        cluster: &mut NpuCluster,
        replica: &mut ReplicaSim,
        now: u64,
        to: NodeId,
        drain_cycles: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut BinaryHeap<Reverse<(u64, u8, usize)>>,
        index: usize,
    ) {
        match cluster.migrate(replica.handle, to, cost_model, Some(drain_cycles)) {
            Ok(outcome) => {
                let post_drain = outcome.record.transfer_cycles + outcome.record.remap_cycles;
                replica.handle = outcome.new_handle();
                replica.available_at = now + post_drain;
                records.push(outcome.record);
                events.push(Reverse((replica.available_at, EV_RESUME, index)));
            }
            Err(_) => {
                // The destination refused (capacity raced away); the replica
                // keeps serving from its source node.
                Self::start_next(replica, now, events, index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeploySpec;
    use crate::placement::PlacementPolicy;
    use workloads::RequestArrival;

    fn fleet_with_replicas(nodes: usize, replicas: usize) -> (NpuCluster, Vec<VnpuHandle>) {
        let mut fleet = NpuCluster::homogeneous(nodes, &NpuConfig::single_core());
        let handles = (0..replicas)
            .map(|_| {
                fleet
                    .deploy(
                        DeploySpec::replica(ModelId::Mnist, 2, 2),
                        PlacementPolicy::WorstFit,
                    )
                    .unwrap()
            })
            .collect();
        (fleet, handles)
    }

    fn burst_trace(count: usize, gap: u64) -> ClusterTrace {
        ClusterTrace::from_arrivals(
            (0..count)
                .map(|i| RequestArrival {
                    at: Cycles(i as u64 * gap),
                    model: ModelId::Mnist,
                    sequence: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn admitted_requests_all_complete() {
        let (mut fleet, _) = fleet_with_replicas(2, 2);
        let trace = burst_trace(40, 1_000);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.offered, 40);
        assert_eq!(report.stats.admitted, 40);
        assert_eq!(
            report.stats.completed, report.stats.admitted,
            "the router never drops admitted requests"
        );
        assert_eq!(report.latency.count, 40);
        assert!(report.makespan > Cycles::ZERO);
        assert!(report.throughput_rps(&NpuConfig::single_core()) > 0.0);
        assert_eq!(
            report.per_node_completed.values().sum::<usize>(),
            40,
            "every completion is attributed to a node"
        );
    }

    #[test]
    fn unserved_models_are_rejected_not_lost() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let trace = ClusterTrace::from_arrivals(vec![RequestArrival {
            at: Cycles(0),
            model: ModelId::Bert,
            sequence: 0,
        }]);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::RoundRobin))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.rejected_no_replica, 1);
        assert_eq!(report.stats.completed, 0);
    }

    #[test]
    fn admission_control_bounds_queues() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        // A tight burst against a single replica with a 2-deep queue.
        let trace = burst_trace(50, 1);
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_admission(AdmissionControl { max_queue_depth: 2 });
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert!(report.stats.rejected_overload > 0, "overload must shed");
        assert_eq!(report.stats.completed, report.stats.admitted);
    }

    #[test]
    fn migration_downtime_is_charged_to_latency() {
        let trace = burst_trace(10, 2_000);
        let (mut undisturbed, _) = fleet_with_replicas(2, 1);
        let baseline = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut undisturbed, &trace);

        let (mut fleet, handles) = fleet_with_replicas(2, 1);
        let spare = NodeId(if handles[0].node.0 == 0 { 1 } else { 0 });
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_migration(
            Cycles(1),
            handles[0],
            spare,
        );
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 1, "the migration executed");
        assert!(report.migrations[0].downtime() > Cycles::ZERO);
        assert_eq!(report.stats.completed, 10, "no request was lost");
        assert!(
            report.latency.p99 > baseline.latency.p99,
            "downtime must surface in tenant latency ({} vs {})",
            report.latency.p99,
            baseline.latency.p99
        );
        // The replica genuinely moved.
        assert_eq!(fleet.node(spare).unwrap().manager().vnpu_count(), 1);
        assert_eq!(
            fleet.node(handles[0].node).unwrap().manager().vnpu_count(),
            0
        );
    }

    #[test]
    fn least_loaded_routes_around_a_migrating_replica() {
        // Two replicas on different nodes; replica 0 migrates at t=0 to a
        // third node. Least-loaded steers the burst to replica 1; round-robin
        // keeps hitting the dark replica and pays its downtime in p99.
        let build = || {
            let mut fleet = NpuCluster::homogeneous(3, &NpuConfig::single_core());
            let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
            let a = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
            let b = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
            let spare = NodeId(
                (0..3)
                    .find(|id| *id != a.node.0 && *id != b.node.0)
                    .unwrap(),
            );
            (fleet, a, spare)
        };
        let trace = burst_trace(30, 500);
        let run = |policy| {
            let (mut fleet, a, spare) = build();
            let options = ServingOptions::new(policy).with_migration(Cycles(0), a, spare);
            ClusterServingSim::new(options).run(&mut fleet, &trace)
        };
        let rr = run(DispatchPolicy::RoundRobin);
        let ll = run(DispatchPolicy::LeastLoaded);
        assert_eq!(rr.stats.completed, 30);
        assert_eq!(ll.stats.completed, 30);
        assert!(
            rr.latency.p99 > ll.latency.p99,
            "round-robin p99 {} should exceed least-loaded p99 {}",
            rr.latency.p99,
            ll.latency.p99
        );
    }
}
