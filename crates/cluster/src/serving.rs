//! The cluster serving simulator.
//!
//! Replays a [`workloads::ClusterTrace`] against the replicas deployed in an
//! [`NpuCluster`]: every arrival is routed by the [`Router`], waits in its
//! replica's queue, and is served as part of a **dynamic batch** — an idle
//! replica collects up to [`ServingOptions::max_batch`] queued requests of
//! its model and serves them in one pass, with the batch service time
//! calibrated from [`neu10::TenantWorkload`] at the *actual* batch size
//! (sublinear in the batch for weight-traffic-bound models, not
//! `batch × single`). With [`ServingOptions::with_batch_wait`] an idle
//! replica additionally *holds* a sub-`max_batch` queue for up to
//! `max_batch_wait` cycles to let a batch form, then serves the partial
//! batch — batch-formation latency is bounded by the timeout instead of by
//! the next burst. Requests may carry **deadlines and priority classes**
//! ([`workloads::RequestArrival`]): the simulator counts deadline misses,
//! optionally drops expired requests unserved, and — under
//! [`DispatchPolicy::EarliestDeadline`] — orders each replica queue
//! earliest-deadline-first within priority classes instead of FIFO.
//!
//! Service times are deterministic by default. With
//! [`ServingOptions::with_stochastic`] they get a seeded lognormal dispersion
//! whose coefficient of variation is calibrated from
//! [`neu10::CollocationSim`] per-request latencies
//! ([`neu10::calibrate_service_time`]), so fleet tail latencies reflect
//! multi-tenant service-time noise rather than queueing alone. Runs are
//! reproducible: the same seed yields an identical [`ServingReport`].
//!
//! Migrations can be scheduled mid-run in either [`MigrationMode`]. A **cold**
//! migration drains its in-flight batch, goes dark for the full transfer +
//! remap window, and resumes on the destination node — with the whole
//! downtime charged to the latency of the requests queued behind it. A
//! **live pre-copy** migration keeps the source replica serving (and
//! dispatchable) while copy-round events stream its resident state over the
//! interconnect — round 0 the full working set, each further round the pages
//! the served requests re-dirtied, priced by the cost model's
//! [`crate::migration::DirtyRateModel`]. Concurrent transfers over the same
//! board-to-board link serialize (bandwidth contention is charged against
//! the link). When the dirty set converges below the stop threshold — or
//! stops shrinking because the dirty rate outruns the link — the replica
//! stops for a final stop-and-copy whose downtime is just the residual delta
//! plus the architectural context. [`ServingReport::migration_stats`]
//! aggregates downtime, rounds and bytes per mode.
//!
//! The simulator is also the execution engine of the **autopilot control
//! plane**: with [`ServingOptions::with_telemetry`] it emits a
//! [`TelemetryFrame`] every sampling interval, and
//! [`ClusterServingSim::run_with_controller`] hands each frame to a
//! [`ControlPlane`] whose [`ControlAction`]s — scale-up through the
//! placement engine, drain-then-release scale-down, cold migration — are
//! applied inside the same deterministic event loop. Replica-time actually
//! provisioned is accounted in [`ServingReport::replica_cycles`], so
//! autoscaling experiments can trade replica-hours against tail latency.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

use neu10::{
    calibrate_service_time, DeadlineStats, IsaKind, LatencySummary, MetricsWindow, QuantileSketch,
    TenantWorkload,
};
use npu_sim::{Cycles, DirtySet, NpuConfig, NpuConfigKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::{ClusterTrace, ModelId, PriorityClass, RequestArrival};

use crate::cluster::{DeploySpec, DeployedVnpu, NpuCluster, VnpuHandle};
use crate::fault::{AvailabilityStats, ChaosState, FaultKind, FaultSchedule, RecoveryPolicy};
use crate::migration::{MigrationCostModel, MigrationMode, MigrationRecord, MigrationStats};
use crate::obs::{
    AlertLog, AlertTransition, FleetCounters, NoopSink, ObsSink, RejectReason, SloConfig, SloEngine,
};
use crate::router::{
    AdmissionControl, DispatchDecision, DispatchPolicy, ReplicaIndex, ReplicaView, Router,
    RouterStats,
};
use crate::sharded::ShardPlan;
use crate::telemetry::{
    ControlAction, ControlPlane, ControlStats, ModelSample, NoopControl, ReplicaSample,
    TelemetryFrame,
};
use crate::NodeId;

/// A migration the operator schedules before the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMigration {
    /// When the migration is triggered.
    pub at: Cycles,
    /// The deployment to move (its handle at schedule time).
    pub handle: VnpuHandle,
    /// The destination node.
    pub to: NodeId,
    /// How the state moves (cold stop-and-copy or live pre-copy).
    pub mode: MigrationMode,
}

/// Seeded service-time dispersion settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticService {
    /// RNG seed; runs with the same seed produce identical reports.
    pub seed: u64,
    /// Requests per tenant in the [`neu10::CollocationSim`] calibration run
    /// that measures the dispersion.
    pub calibration_requests: usize,
    /// Overrides the calibrated coefficient of variation (useful for tests
    /// and sensitivity sweeps); `None` calibrates per (model, allocation,
    /// board).
    pub cv_override: Option<f64>,
}

impl StochasticService {
    /// Calibrated dispersion with the given seed.
    pub fn seeded(seed: u64) -> Self {
        StochasticService {
            seed,
            calibration_requests: 4,
            cv_override: None,
        }
    }

    /// Forces the coefficient of variation instead of calibrating it.
    ///
    /// A coefficient of variation is a non-negative, finite dispersion:
    /// negative values clamp to 0 (deterministic service) and non-finite
    /// values (`NaN`, `±inf`) are rejected as 0 rather than poisoning every
    /// sampled service time downstream.
    pub fn with_cv(mut self, cv: f64) -> Self {
        self.cv_override = Some(if cv.is_finite() { cv.max(0.0) } else { 0.0 });
        self
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServingOptions {
    /// The dispatch policy under test.
    pub dispatch: DispatchPolicy,
    /// Admission-control limits.
    pub admission: AdmissionControl,
    /// Migrations to trigger mid-run.
    pub migrations: Vec<ScheduledMigration>,
    /// The migration cost model.
    pub cost_model: MigrationCostModel,
    /// Largest number of queued requests a replica serves in one pass
    /// (1 = no batching).
    pub max_batch: usize,
    /// Longest an idle replica holds a sub-`max_batch` queue to let a batch
    /// form, counted from the oldest queued arrival; `None` serves whatever
    /// is queued immediately.
    pub max_batch_wait: Option<u64>,
    /// Drop queued requests whose deadline has already passed instead of
    /// serving them late.
    pub drop_expired: bool,
    /// Seeded service-time dispersion; `None` keeps service deterministic.
    pub stochastic: Option<StochasticService>,
    /// Telemetry sampling interval in cycles; `None` disables the telemetry
    /// bus (and with it any control plane).
    pub telemetry_interval: Option<u64>,
    /// Use the pre-index reference dispatch path: rebuild the candidate
    /// [`ReplicaView`]s from the full replica table on every arrival
    /// (O(replicas²) per arrival) instead of reading the incremental
    /// [`ReplicaIndex`]. The two paths produce identical reports; this knob
    /// exists so equivalence tests and the perf harness can measure the
    /// indexed path against the loop it replaced.
    pub reference_dispatch: bool,
    /// SLO specs and burn-rate policies evaluated inside the event loop;
    /// `None` (the default) schedules no alert ticks and leaves the report's
    /// [`AlertLog`] empty.
    pub slo: Option<SloConfig>,
    /// Faults to inject as deterministic events; `None` (the default) runs a
    /// fault-free fleet.
    pub faults: Option<FaultSchedule>,
    /// Failure detection + failover policy; `None` injects faults without
    /// recovering from them (the chaos baseline).
    pub recovery: Option<RecoveryPolicy>,
    /// Steer new requests away from replicas whose live migration is in
    /// flight (stop-and-copy imminent) while any clean replica exists.
    pub migration_aware_dispatch: bool,
    /// Re-dispatch failover orphans in earliest-deadline-first order
    /// (priority class, then deadline, then admission sequence) instead of
    /// admission order, so the tightest-deadline orphans reach surviving
    /// replicas first. Off by default: the order changes queue contents
    /// after a failover, and locked golden runs predate it.
    pub failover_edf: bool,
}

impl ServingOptions {
    /// Default options for a dispatch policy.
    pub fn new(dispatch: DispatchPolicy) -> Self {
        ServingOptions {
            dispatch,
            admission: AdmissionControl::default(),
            migrations: Vec::new(),
            cost_model: MigrationCostModel::default(),
            max_batch: 1,
            max_batch_wait: None,
            drop_expired: false,
            stochastic: None,
            telemetry_interval: None,
            reference_dispatch: false,
            slo: None,
            faults: None,
            recovery: None,
            migration_aware_dispatch: false,
            failover_edf: false,
        }
    }

    /// Overrides the admission limits.
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = admission;
        self
    }

    /// Schedules a cold migration.
    pub fn with_migration(mut self, at: Cycles, handle: VnpuHandle, to: NodeId) -> Self {
        self.migrations.push(ScheduledMigration {
            at,
            handle,
            to,
            mode: MigrationMode::Cold,
        });
        self
    }

    /// Schedules a live pre-copy migration: the replica keeps serving through
    /// the copy rounds and goes dark only for the residual stop-and-copy.
    pub fn with_live_migration(mut self, at: Cycles, handle: VnpuHandle, to: NodeId) -> Self {
        self.migrations.push(ScheduledMigration {
            at,
            handle,
            to,
            mode: MigrationMode::PreCopy,
        });
        self
    }

    /// Overrides the migration cost model (interconnect link, pre-copy loop
    /// and dirty-rate knobs).
    pub fn with_cost_model(mut self, cost_model: MigrationCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Enables dynamic batching up to `max_batch` requests per pass.
    pub fn with_batching(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Holds an idle replica's sub-`max_batch` queue for up to `wait` cycles
    /// (from the oldest queued arrival) before serving a partial batch.
    pub fn with_batch_wait(mut self, wait: u64) -> Self {
        self.max_batch_wait = Some(wait);
        self
    }

    /// Drops expired requests unserved instead of serving them late.
    pub fn with_drop_expired(mut self) -> Self {
        self.drop_expired = true;
        self
    }

    /// Enables seeded stochastic service times.
    pub fn with_stochastic(mut self, stochastic: StochasticService) -> Self {
        self.stochastic = Some(stochastic);
        self
    }

    /// Emits a telemetry frame every `interval` cycles (the sampling hook of
    /// the autopilot control plane).
    pub fn with_telemetry(mut self, interval: u64) -> Self {
        self.telemetry_interval = Some(interval.max(1));
        self
    }

    /// Switches to the pre-index reference dispatch path (per-arrival
    /// candidate rebuild). For equivalence tests and benchmarks only — it is
    /// quadratic in the replica count per arrival.
    pub fn with_reference_dispatch(mut self) -> Self {
        self.reference_dispatch = true;
        self
    }

    /// Evaluates `slo` inside the event loop: completions and expiries feed
    /// the burn-rate engine, alert edges land in the report's
    /// [`AlertLog`] (and reach the sink / control plane as they happen).
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Injects `faults` as deterministic events inside the event loop. Every
    /// fault and its consequences are part of the run's seeded input: the
    /// same schedule, trace and seed reproduce the same
    /// [`AvailabilityStats`] byte for byte.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arms failure detection and failover. Detection rides the telemetry
    /// bus — a board is declared dead after
    /// [`RecoveryPolicy::missed_frame_threshold`] consecutive missed frames —
    /// so recovery requires [`with_telemetry`](ServingOptions::with_telemetry);
    /// without it no frame is ever missed and nothing is detected.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Steers new requests away from replicas with a live migration in
    /// flight (their stop-and-copy dark window is imminent) while any clean
    /// replica exists — the same soft-avoid mechanism failover uses to drain
    /// dying boards. Off by default: avoidance changes dispatch decisions,
    /// and locked golden runs predate it.
    pub fn with_migration_aware_dispatch(mut self) -> Self {
        self.migration_aware_dispatch = true;
        self
    }

    /// Re-dispatches failover orphans earliest-deadline-first: higher
    /// priority classes first, then the nearest deadline, then admission
    /// order. Cuts orphan deadline misses when a dead board strands a mixed
    /// queue. Off by default: locked golden runs predate it.
    pub fn with_failover_edf(mut self) -> Self {
        self.failover_edf = true;
        self
    }
}

/// Simulator-side execution counters of one serving run: how much machinery
/// the event loop turned, independent of what the simulated fleet did. The
/// `perf_fleet` harness reports these alongside wall-clock time so perf
/// regressions can be told apart from workload changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfStats {
    /// Discrete events processed (completions, resumes, batch timeouts,
    /// migrations, telemetry samples).
    pub events: u64,
    /// Trace arrivals consumed.
    pub arrivals: u64,
    /// Largest number of simultaneously live replicas.
    pub peak_replicas: usize,
}

impl PerfStats {
    /// Events plus arrivals: everything the event loop dequeued.
    pub fn total_processed(&self) -> u64 {
        self.events + self.arrivals
    }
}

/// The measurements of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// The dispatch policy that ran.
    pub dispatch: DispatchPolicy,
    /// Router counters (offered / admitted / rejected / completed). With
    /// drop-on-expiry enabled, `admitted = completed + deadline.dropped`.
    pub stats: RouterStats,
    /// Latency summary over every completed request (cycles from arrival to
    /// completion — queueing, batching, service and migration downtime
    /// included).
    pub latency: LatencySummary,
    /// Per-model latency summaries.
    pub per_model: BTreeMap<ModelId, LatencySummary>,
    /// Requests completed per node (attributed to the node that served them).
    pub per_node_completed: BTreeMap<NodeId, usize>,
    /// Deadline bookkeeping over the deadline-carrying requests.
    pub deadline: DeadlineStats,
    /// Service passes executed (a batch of k requests is one pass).
    pub batches: usize,
    /// The migrations that actually executed.
    pub migrations: Vec<MigrationRecord>,
    /// Per-mode migration aggregates (downtime, copy rounds, bytes streamed
    /// while serving) over `migrations`.
    pub migration_stats: MigrationStats,
    /// Control-plane activity (telemetry ticks, scale-ups/downs, controller
    /// migrations); all-zero for open-loop runs.
    pub control: ControlStats,
    /// Provisioned replica-time: the sum over replicas of the cycles between
    /// their activation and their release (or the end of the run). The
    /// replica-hours axis of autoscaling experiments.
    pub replica_cycles: u64,
    /// Time of the last completion (or executed-migration resume). Rejected
    /// arrivals never move the makespan.
    pub makespan: Cycles,
    /// Simulator execution counters (events processed, peak replica count).
    pub perf: PerfStats,
    /// SLO burn-rate alert edges (fire/resolve) in emission order; empty
    /// unless the run was configured with [`ServingOptions::with_slo`].
    pub alerts: AlertLog,
    /// Fault-injection and failover accounting; all-zero unless the run was
    /// configured with [`ServingOptions::with_faults`].
    pub availability: AvailabilityStats,
}

impl ServingReport {
    /// Aggregate throughput in requests per second.
    pub fn throughput_rps(&self, config: &NpuConfig) -> f64 {
        neu10::throughput_rps(self.stats.completed, self.makespan, config.frequency)
    }

    /// Mean number of requests per service pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.stats.completed as f64 / self.batches as f64
    }

    /// Provisioned replica-time in seconds (replica-hours × 3600).
    pub fn replica_seconds(&self, config: &NpuConfig) -> f64 {
        config
            .frequency
            .cycles_to_time(Cycles(self.replica_cycles))
            .as_secs()
    }
}

/// One admitted request waiting in (or being served from) a replica queue.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    model: ModelId,
    arrived: u64,
    deadline: Option<u64>,
    priority: PriorityClass,
    sequence: u64,
}

impl QueuedRequest {
    /// Earliest-deadline-first ordering key: priority class, then deadline
    /// (best-effort last), then arrival order.
    fn edf_key(&self) -> (PriorityClass, u64, u64) {
        (
            self.priority,
            self.deadline.unwrap_or(u64::MAX),
            self.sequence,
        )
    }
}

/// Heap entry comparing queued requests by their EDF key. The key is a
/// *total* order — sequences are unique per trace — so equal keys never
/// occur and heap pop order is fully deterministic.
#[derive(Debug, Clone, Copy)]
struct EdfEntry(QueuedRequest);

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.edf_key() == other.0.edf_key()
    }
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.edf_key().cmp(&other.0.edf_key())
    }
}

/// A replica's admitted-request queue: a FIFO ring, or — under
/// [`DispatchPolicy::EarliestDeadline`] — a min-heap ordered by
/// [`QueuedRequest::edf_key`].
///
/// The heap replaces a sorted-`VecDeque` linear insert (O(n) per enqueue,
/// quadratic across a backlog burst) with O(log n) push/pop. Because the EDF
/// key is a total order, popping the heap yields exactly the drain order the
/// sorted insert produced, so reports are bit-identical to the seed.
#[derive(Debug)]
enum ReplicaQueue {
    Fifo(VecDeque<QueuedRequest>),
    Edf(BinaryHeap<Reverse<EdfEntry>>),
}

impl ReplicaQueue {
    fn new(edf: bool) -> Self {
        if edf {
            ReplicaQueue::Edf(BinaryHeap::new())
        } else {
            ReplicaQueue::Fifo(VecDeque::new())
        }
    }

    fn len(&self) -> usize {
        match self {
            ReplicaQueue::Fifo(queue) => queue.len(),
            ReplicaQueue::Edf(heap) => heap.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, request: QueuedRequest) {
        match self {
            ReplicaQueue::Fifo(queue) => queue.push_back(request),
            ReplicaQueue::Edf(heap) => heap.push(Reverse(EdfEntry(request))),
        }
    }

    /// Earliest arrival cycle among the queued requests (`None` when empty).
    fn oldest_arrival(&self) -> Option<u64> {
        match self {
            ReplicaQueue::Fifo(queue) => queue.iter().map(|queued| queued.arrived).min(),
            ReplicaQueue::Edf(heap) => heap.iter().map(|Reverse(entry)| entry.0.arrived).min(),
        }
    }

    /// Drops every request failing `keep`. Callback order is unspecified
    /// (heap retention visits in heap order), so drop accounting must be
    /// order-insensitive — which the deadline/window counters are.
    fn retain(&mut self, mut keep: impl FnMut(&QueuedRequest) -> bool) {
        match self {
            ReplicaQueue::Fifo(queue) => queue.retain(|queued| keep(queued)),
            ReplicaQueue::Edf(heap) => heap.retain(|Reverse(entry)| keep(&entry.0)),
        }
    }

    /// Moves the next `size` requests — FIFO or EDF order — into `batch`.
    fn drain_into(&mut self, size: usize, batch: &mut Vec<QueuedRequest>) {
        match self {
            ReplicaQueue::Fifo(queue) => batch.extend(queue.drain(..size)),
            ReplicaQueue::Edf(heap) => {
                // `size` is clamped to the queue length by every caller;
                // stopping at an early None keeps this panic-free anyway.
                while batch.len() < size {
                    let Some(Reverse(entry)) = heap.pop() else {
                        break;
                    };
                    batch.push(entry.0);
                }
            }
        }
    }
}

/// The in-flight state of one live pre-copy migration: the dirty-page
/// accounting over the replica's resident state, the copy-round history, and
/// the convergence bookkeeping. Lives on the source replica from the request
/// until the stop-and-copy switch-over.
#[derive(Debug)]
struct PreCopyFlight {
    /// Destination node.
    to: NodeId,
    /// Page-granular dirty accounting; completions mark it, rounds drain it.
    dirty: DirtySet,
    /// Bytes one completed request re-dirties (write-heavy KV vs read-mostly
    /// weights, from the cost model's dirty-rate model).
    dirty_bytes_per_request: u64,
    /// Copy rounds performed (round 0, the full-state copy, included).
    rounds: u32,
    /// Bytes streamed by the previous round (convergence signal).
    last_round_bytes: u64,
    /// Bytes streamed per round, for the record.
    round_bytes: Vec<u64>,
    /// Link cycles spent copying while the source kept serving.
    precopy_cycles: u64,
    /// The scheduled end of the in-flight round (stale-event guard).
    round_ends_at: u64,
    /// Whether the loop converged below the stop threshold (set at the
    /// stop-and-copy decision; `false` = fallback to a cold-sized residual).
    converged: bool,
}

#[derive(Debug)]
struct ReplicaSim {
    handle: VnpuHandle,
    model: ModelId,
    /// Calibrated service time of a k-request batch at `batch_cycles[k - 1]`.
    /// Shared with every replica of the same (model, allocation, board)
    /// shape through the [`CalibrationCache`].
    batch_cycles: Arc<[u64]>,
    /// Calibrated service-time coefficient of variation (0 = deterministic).
    cv: f64,
    queue: ReplicaQueue,
    /// The batch in service with its (start, finish) times.
    in_service: Option<(Vec<QueuedRequest>, u64, u64)>,
    available_at: u64,
    pending_migration: Option<(NodeId, u64)>,
    /// A live pre-copy migration in flight: the replica keeps serving while
    /// copy rounds stream its state, until the stop-and-copy.
    precopy: Option<PreCopyFlight>,
    /// The batch-formation timeout currently armed, if any.
    batch_timeout_at: Option<u64>,
    /// Scale-down requested: no new dispatches; released once drained.
    draining: bool,
    /// Drained and released — the slot is dead (indices stay stable).
    retired: bool,
    /// Fenced by fault injection: the board is (or is presumed) dead, its
    /// in-service batch will never complete and its queue black-holes until
    /// failover takes the orphans. Stale completion events for fenced
    /// replicas are discarded.
    fenced: bool,
    /// When the replica was deployed (0 for the initial fleet).
    activated_at: u64,
    /// Busy cycles accumulated since the last telemetry tick.
    window_busy: u64,
}

impl ReplicaSim {
    fn unavailable(&self, now: u64) -> bool {
        now < self.available_at || self.pending_migration.is_some()
    }

    /// Requests in the batch currently being served.
    fn in_flight(&self) -> usize {
        self.in_service
            .as_ref()
            .map_or(0, |(batch, _, _)| batch.len())
    }

    /// Whether the replica participates in routing and telemetry.
    fn live(&self) -> bool {
        !self.retired
    }

    /// Inserts an admitted request, FIFO or EDF-ordered (the queue variant
    /// was fixed at replica construction).
    fn enqueue(&mut self, request: QueuedRequest) {
        self.queue.push(request);
    }
}

/// Per-model accumulators for the current telemetry window.
#[derive(Debug, Default)]
struct ModelWindow {
    metrics: MetricsWindow,
    arrivals: usize,
    rejected: usize,
}

/// Mutable bookkeeping shared by the batch-formation path.
#[derive(Debug)]
struct ServeState {
    max_batch: usize,
    max_batch_wait: Option<u64>,
    drop_expired: bool,
    rng: Option<StdRng>,
    deadline: DeadlineStats,
    batches: usize,
    /// Whether the telemetry bus is on (per-model windows accumulate).
    sampling: bool,
    /// Start of the current telemetry window.
    window_start: u64,
    windows: BTreeMap<ModelId, ModelWindow>,
    control: ControlStats,
    /// Replica-time already banked by released replicas.
    replica_cycles: u64,
    /// Recycled batch buffers: completions return their request vector here
    /// and batch formation reuses one, so steady-state serving allocates no
    /// batch storage.
    batch_pool: Vec<Vec<QueuedRequest>>,
    /// Live (non-retired) replicas right now.
    live_replicas: usize,
    /// Largest `live_replicas` seen over the run.
    peak_replicas: usize,
    /// The SLO burn-rate engine, fed by completions and expiries; `None`
    /// unless [`ServingOptions::with_slo`] configured one.
    slo: Option<SloEngine>,
    /// Alert edges emitted so far (lands in the report).
    alerts: AlertLog,
    /// Chaos bookkeeping; `None` unless [`ServingOptions::with_faults`]
    /// scheduled faults. The fault-free hot path pays one discriminant check.
    chaos: Option<ChaosState>,
}

impl ServeState {
    fn window_of(&mut self, model: ModelId) -> Option<&mut ModelWindow> {
        if self.sampling {
            Some(self.windows.entry(model).or_default())
        } else {
            None
        }
    }
}

// Event kinds, ordered so that at equal timestamps completions free capacity
// before resumes re-open replicas, batch-formation timeouts fire on settled
// queues, pre-copy rounds see the dirt of same-cycle completions, migrations
// trigger next, telemetry samples observe the fully settled state, and SLO
// alert ticks evaluate after the tick's data has landed.
const EV_COMPLETION: u8 = 0;
const EV_RESUME: u8 = 1;
const EV_BATCH_TIMEOUT: u8 = 2;
const EV_COPY_ROUND: u8 = 3;
const EV_MIGRATION: u8 = 4;
const EV_SAMPLE: u8 = 5;
const EV_ALERT: u8 = 6;
/// Fault injections sort after the observers at equal timestamps (the tick
/// sees the pre-fault fleet; the fault lands next) and — like samples and
/// alerts — never count as pending *work*: a schedule whose tail outlives
/// the traffic must not keep the run alive on its own.
const EV_FAULT: u8 = 7;

/// The serving event heap, with a running count of non-sample events so the
/// telemetry tick's "is there still work in flight?" question is O(1) instead
/// of a whole-heap scan per sample. Sample and alert ticks are the periodic
/// observers — they must never count as work, or they would keep a finished
/// run (and each other) alive forever.
#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u8, usize)>>,
    non_sample: usize,
}

impl EventQueue {
    fn push(&mut self, at: u64, kind: u8, index: usize) {
        if kind < EV_SAMPLE {
            self.non_sample += 1;
        }
        self.heap.push(Reverse((at, kind, index)));
    }

    fn pop(&mut self) -> Option<(u64, u8, usize)> {
        let Reverse((at, kind, index)) = self.heap.pop()?;
        if kind < EV_SAMPLE {
            self.non_sample -= 1;
        }
        Some((at, kind, index))
    }

    fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Whether any completion / resume / timeout / migration event is still
    /// queued (stale batch timeouts included, exactly like the scan this
    /// counter replaced).
    fn has_non_sample(&self) -> bool {
        self.non_sample > 0
    }
}

/// Per-link busy horizons: pre-copy rounds and stop-and-copy transfers over
/// the same board-to-board link serialize, so concurrent migrations contend
/// for bandwidth instead of each seeing a private link.
///
/// Ordered map (simlint `D1`): lookups are by exact key today, but a sharded
/// event loop will want to snapshot link horizons across partitions, and an
/// ordered map guarantees that snapshot is iteration-order-deterministic.
#[derive(Debug, Default)]
struct LinkSchedule {
    busy_until: BTreeMap<(NodeId, NodeId), u64>,
}

impl LinkSchedule {
    /// Links are bidirectional: (a, b) and (b, a) are the same link.
    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Reserves the link for a `cycles`-long transfer starting no earlier
    /// than `now`; returns when the transfer completes (queueing behind any
    /// transfer already on the link).
    fn reserve(&mut self, a: NodeId, b: NodeId, now: u64, cycles: u64) -> u64 {
        let slot = self.busy_until.entry(Self::key(a, b)).or_insert(0);
        let end = now.max(*slot) + cycles;
        *slot = end;
        end
    }
}

/// Inflates a transfer's cycle count by any open chaos link-degradation
/// window on the `(a, b)` link before the transfer is put on the link.
/// Pre-copy rounds, stop-and-copy windows and failover state restores all
/// price through here, so a degraded (or partitioned) link stresses both
/// migration and recovery.
fn chaos_transfer(state: &ServeState, a: NodeId, b: NodeId, now: u64, cycles: u64) -> u64 {
    match &state.chaos {
        Some(chaos) => {
            let factor = chaos.link_factor(a, b, now);
            if factor > 1.0 {
                ((cycles as f64 * factor) as u64).max(cycles)
            } else {
                cycles
            }
        }
        None => cycles,
    }
}

/// The fluid service-time estimate of one `batch_requests`-request batch on a
/// `mes`×`ves` replica: the model is compiled at
/// `batch_requests × evaluation_batch_size` and each operator runs at the
/// rate of the engines the replica owns and the node's HBM bandwidth. The
/// estimate is sublinear in the batch wherever per-pass work (weight
/// traffic, fixed operator overheads) amortizes. An empty batch
/// (`batch_requests = 0`) is estimated as a batch of one — the cost of
/// spinning the pass up — never as zero or an underflow.
///
/// Compilation goes through the process-wide
/// [`TenantWorkload::compile_cached`] memo, so repeated queries for the same
/// (model, batch, board) — every replica of a homogeneous fleet, every
/// harness capacity estimate — compile exactly once.
pub fn estimated_batch_service_cycles(
    model: ModelId,
    batch_requests: usize,
    mes: usize,
    ves: usize,
    npu: &NpuConfig,
) -> u64 {
    let batch = model.evaluation_batch_size() * batch_requests.max(1) as u64;
    let workload = TenantWorkload::compile_cached(model, batch, npu, IsaKind::NeuIsa);
    let bw_per_cycle = npu.hbm_bandwidth_bytes_per_sec / npu.frequency.hz();
    let mut total = 0.0f64;
    for op in &workload.operators {
        let mut t = 0.0f64;
        if op.me_cycles > 0 {
            let engines = op.me_parallelism.max(1).min(mes.max(1));
            t = t.max(op.me_cycles as f64 / engines as f64);
        }
        if op.ve_cycles > 0 {
            let engines = op.ve_parallelism.max(1).min(ves.max(1));
            t = t.max(op.ve_cycles as f64 / engines as f64);
        }
        if op.hbm_bytes > 0 && bw_per_cycle > 0.0 {
            t = t.max(op.hbm_bytes as f64 / bw_per_cycle);
        }
        total += t;
    }
    (total as u64).max(1)
}

/// The fluid service-time estimate of one single-request pass — the
/// batch-of-1 case of [`estimated_batch_service_cycles`]. Harnesses use this
/// to size offered load relative to fleet capacity.
pub fn estimated_service_cycles(model: ModelId, mes: usize, ves: usize, npu: &NpuConfig) -> u64 {
    estimated_batch_service_cycles(model, 1, mes, ves, npu)
}

/// A lognormal multiplier with mean 1 and the given coefficient of
/// variation, drawn via Box–Muller from the seeded generator.
fn lognormal_factor(rng: &mut StdRng, cv: f64) -> f64 {
    if cv <= 0.0 || !cv.is_finite() {
        return 1.0;
    }
    let sigma_sq = (1.0 + cv * cv).ln();
    let sigma = sigma_sq.sqrt();
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (-0.5 * sigma_sq + sigma * z).exp()
}

/// The per-(model, allocation, board) service calibration: batch service
/// times for every batch size up to `max_batch` (shared, never re-cloned),
/// plus the stochastic dispersion when enabled.
struct CalibrationEntry {
    batch_cycles: Arc<[u64]>,
    cv: f64,
}

/// The key of one calibration: the replica shape, with the board identified
/// by its hashable [`NpuConfigKey`] instead of deep struct equality.
type CalibrationKey = (ModelId, usize, usize, NpuConfigKey);

/// The run-lifetime calibration cache. Boards are compared by configuration,
/// not node identity, so a homogeneous fleet compiles each (model,
/// allocation) once per batch size — including replicas the control plane
/// scales up mid-run. Lookups hash the key (no linear scan with deep
/// `NpuConfig` comparisons) and hits hand out the shared `Arc<[u64]>` curve
/// (no per-replica clone of the batch table).
///
/// Ordered map (simlint `D1`): the cache is lookup-only today, but any
/// future "recalibrate everything" sweep would iterate it, and in a
/// digest-affecting crate that iteration must be deterministic from day
/// one. The key compares cheap fixed-size integers, so ordered lookups stay
/// free of deep `NpuConfig` scans.
struct CalibrationCache {
    max_batch: usize,
    stochastic: Option<StochasticService>,
    /// Whether replicas order their queues earliest-deadline-first (fixes
    /// the [`ReplicaQueue`] variant of every replica built, including
    /// control-plane scale-ups).
    edf: bool,
    entries: BTreeMap<CalibrationKey, CalibrationEntry>,
}

impl CalibrationCache {
    fn new(max_batch: usize, stochastic: Option<StochasticService>, edf: bool) -> Self {
        CalibrationCache {
            max_batch,
            stochastic,
            edf,
            entries: BTreeMap::new(),
        }
    }

    /// The calibrated batch service times and dispersion of one replica shape.
    fn calibrate(
        &mut self,
        model: ModelId,
        mes: usize,
        ves: usize,
        npu: &NpuConfig,
    ) -> (Arc<[u64]>, f64) {
        let key = (model, mes, ves, npu.cache_key());
        let max_batch = self.max_batch;
        let stochastic = self.stochastic;
        let entry = self.entries.entry(key).or_insert_with(|| {
            let batch_cycles: Arc<[u64]> = (1..=max_batch)
                .map(|k| estimated_batch_service_cycles(model, k, mes, ves, npu))
                .collect();
            let cv = match stochastic {
                Some(stochastic) => {
                    let cv = stochastic.cv_override.unwrap_or_else(|| {
                        calibrate_service_time(
                            npu,
                            model,
                            mes,
                            ves,
                            model.evaluation_batch_size(),
                            None,
                            stochastic.calibration_requests,
                        )
                        .cv
                    });
                    if cv.is_finite() {
                        cv.max(0.0)
                    } else {
                        0.0
                    }
                }
                None => 0.0,
            };
            CalibrationEntry { batch_cycles, cv }
        });
        (Arc::clone(&entry.batch_cycles), entry.cv)
    }

    /// Builds the simulator-side state of one deployed replica.
    fn replica_sim(
        &mut self,
        cluster: &NpuCluster,
        deployment: &DeployedVnpu,
        now: u64,
    ) -> ReplicaSim {
        let node = cluster
            .node(deployment.handle.node)
            .expect("deployment node exists"); // simlint::allow(P1, reason = "replica construction follows a successful deploy on that node")
        let (batch_cycles, cv) = self.calibrate(
            deployment.model,
            deployment.config.num_mes_per_core,
            deployment.config.num_ves_per_core,
            node.npu_config(),
        );
        ReplicaSim {
            handle: deployment.handle,
            model: deployment.model,
            batch_cycles,
            cv,
            queue: ReplicaQueue::new(self.edf),
            in_service: None,
            available_at: now,
            pending_migration: None,
            precopy: None,
            batch_timeout_at: None,
            draining: false,
            retired: false,
            fenced: false,
            activated_at: now,
            window_busy: 0,
        }
    }
}

/// The cluster serving simulator (open-loop, or closed-loop under a
/// [`ControlPlane`]).
#[derive(Debug, Clone)]
pub struct ClusterServingSim {
    options: ServingOptions,
}

impl ClusterServingSim {
    /// Builds a simulator with the given options.
    pub fn new(options: ServingOptions) -> Self {
        ClusterServingSim { options }
    }

    /// Replays `trace` against the replicas deployed in `cluster` with no
    /// control plane (any configured telemetry ticks are still counted).
    ///
    /// The cluster is mutated by scheduled migrations (their placements
    /// genuinely move); everything else is read-only. The run is a pure
    /// function of `(cluster, trace, options)`: replaying the same inputs
    /// produces a bit-identical [`ServingReport`].
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::{ClusterServingSim, DeploySpec, DispatchPolicy, NpuCluster,
    ///               PlacementPolicy, ServingOptions};
    /// use npu_sim::NpuConfig;
    /// use workloads::{ClusterTrace, ModelId};
    ///
    /// let npu = NpuConfig::single_core();
    /// let mut fleet = NpuCluster::homogeneous(2, &npu);
    /// fleet.deploy(DeploySpec::replica(ModelId::Mnist, 2, 2), PlacementPolicy::BestFit)?;
    ///
    /// let trace = ClusterTrace::poisson(&[(ModelId::Mnist, 50_000)], 32, 7);
    /// let sim = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded));
    /// let report = sim.run(&mut fleet, &trace);
    /// assert_eq!(report.stats.offered, 32);
    /// assert_eq!(report.stats.completed, 32);
    ///
    /// // Determinism: an identical replay yields an identical report.
    /// let mut fleet2 = NpuCluster::homogeneous(2, &npu);
    /// fleet2.deploy(DeploySpec::replica(ModelId::Mnist, 2, 2), PlacementPolicy::BestFit)?;
    /// assert_eq!(report, sim.run(&mut fleet2, &trace));
    /// # Ok::<(), cluster::ClusterError>(())
    /// ```
    pub fn run(&self, cluster: &mut NpuCluster, trace: &ClusterTrace) -> ServingReport {
        self.run_loop(cluster, trace, &mut NoopControl, &mut NoopSink)
    }

    /// [`ClusterServingSim::run`] with the event loop instrumented through
    /// `sink` (typically a [`crate::obs::TraceRecorder`]).
    ///
    /// Observation never perturbs the simulation: the report is bit-identical
    /// to the uninstrumented [`ClusterServingSim::run`], and with
    /// [`NoopSink`] the monomorphized loop *is* the uninstrumented loop.
    pub fn run_observed(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        sink: &mut dyn ObsSink,
    ) -> ServingReport {
        self.run_loop(cluster, trace, &mut NoopControl, sink)
    }

    /// [`ClusterServingSim::run_with_controller`] with the event loop
    /// instrumented through `sink`.
    ///
    /// # Panics
    ///
    /// Panics unless [`ServingOptions::with_telemetry`] was configured, for
    /// the same reason as [`ClusterServingSim::run_with_controller`].
    pub fn run_observed_with_controller(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        controller: &mut dyn ControlPlane,
        sink: &mut dyn ObsSink,
    ) -> ServingReport {
        assert!(
            self.options.telemetry_interval.is_some(),
            "run_observed_with_controller requires ServingOptions::with_telemetry: \
             without a sampling interval the controller is never invoked"
        );
        self.run_loop(cluster, trace, controller, sink)
    }

    /// Replays `trace` against `cluster` under a closed-loop `controller`.
    ///
    /// Every sampling interval the simulator emits a [`TelemetryFrame`], the
    /// controller answers with [`ControlAction`]s, and the actions are
    /// applied inside the event loop — scale-ups deploy through the
    /// placement engine and start serving at the tick, scale-downs drain
    /// then release, migrations follow the cold migration path. The cluster
    /// is mutated accordingly. Deterministic controllers yield reproducible
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics unless [`ServingOptions::with_telemetry`] was configured:
    /// without a sampling interval the controller would never be invoked and
    /// the run would silently degrade to open loop.
    pub fn run_with_controller(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        controller: &mut dyn ControlPlane,
    ) -> ServingReport {
        assert!(
            self.options.telemetry_interval.is_some(),
            "run_with_controller requires ServingOptions::with_telemetry: \
             without a sampling interval the controller is never invoked"
        );
        self.run_loop(cluster, trace, controller, &mut NoopSink)
    }

    /// The shared event loop behind every `run*` entry point.
    ///
    /// Generic over the [`ObsSink`] so the disabled path ([`NoopSink`], whose
    /// hooks are all empty defaults) monomorphizes to exactly the
    /// uninstrumented loop — no branches, no allocations, no digest drift.
    ///
    /// The loop itself lives in [`PartitionSim`]: the sequential path is the
    /// degenerate single-partition case — one partition owning every board,
    /// stepped in a single unbounded round.
    pub(crate) fn run_loop<S: ObsSink + ?Sized>(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        controller: &mut dyn ControlPlane,
        sink: &mut S,
    ) -> ServingReport {
        let mut partition = PartitionSim::new(self.options.clone(), cluster, trace.arrivals());
        partition.step_until(u64::MAX, cluster, controller, sink);
        partition.finish(sink).into_report()
    }

    /// The options this simulator was built with (the sharded runner derives
    /// its per-partition options from them).
    pub(crate) fn options(&self) -> &ServingOptions {
        &self.options
    }
}

/// The accumulated results of one partition's run.
///
/// The sequential path produces exactly one outcome and converts it straight
/// into a [`ServingReport`]; the sharded runner merges the per-partition
/// outcomes in partition-index order first ([`PartitionOutcome::merge`]), so
/// the merged report is a pure fold over per-partition state — bit-identical
/// for a fixed partitioning regardless of how many worker threads ran it.
pub(crate) struct PartitionOutcome {
    pub(crate) dispatch: DispatchPolicy,
    pub(crate) router_stats: RouterStats,
    pub(crate) latencies: QuantileSketch,
    pub(crate) per_model: BTreeMap<ModelId, QuantileSketch>,
    pub(crate) per_node_completed: BTreeMap<NodeId, usize>,
    pub(crate) deadline: DeadlineStats,
    pub(crate) batches: usize,
    pub(crate) migration_records: Vec<MigrationRecord>,
    pub(crate) control: ControlStats,
    pub(crate) replica_cycles: u64,
    pub(crate) makespan: u64,
    pub(crate) perf: PerfStats,
    pub(crate) alerts: AlertLog,
    pub(crate) availability: AvailabilityStats,
}

impl PartitionOutcome {
    /// Folds `other` (a higher-indexed partition's outcome) into `self`.
    ///
    /// Order matters and is fixed: the sharded runner always merges in
    /// partition-index order, so sketch contents, per-model folds and record
    /// concatenation are deterministic for a fixed partitioning.
    pub(crate) fn merge(&mut self, other: PartitionOutcome) {
        self.router_stats.offered += other.router_stats.offered;
        self.router_stats.admitted += other.router_stats.admitted;
        self.router_stats.rejected_no_replica += other.router_stats.rejected_no_replica;
        self.router_stats.rejected_overload += other.router_stats.rejected_overload;
        self.router_stats.completed += other.router_stats.completed;
        self.latencies.merge(&other.latencies);
        for (model, sketch) in other.per_model {
            self.per_model.entry(model).or_default().merge(&sketch);
        }
        for (node, count) in other.per_node_completed {
            *self.per_node_completed.entry(node).or_default() += count;
        }
        self.deadline.with_deadline += other.deadline.with_deadline;
        self.deadline.met += other.deadline.met;
        self.deadline.missed += other.deadline.missed;
        self.deadline.dropped += other.deadline.dropped;
        self.batches += other.batches;
        self.migration_records.extend(other.migration_records);
        self.control.samples += other.control.samples;
        self.control.scale_ups += other.control.scale_ups;
        self.control.scale_up_rejected += other.control.scale_up_rejected;
        self.control.scale_downs += other.control.scale_downs;
        self.control.released += other.control.released;
        self.control.migrations_requested += other.control.migrations_requested;
        self.control.migrations_rejected += other.control.migrations_rejected;
        self.replica_cycles += other.replica_cycles;
        self.makespan = self.makespan.max(other.makespan);
        self.perf.events += other.perf.events;
        self.perf.arrivals += other.perf.arrivals;
        // Summed, not maxed: partition peaks need not coincide in time, so
        // this is the provisioning upper bound, exact when partitions are
        // statically sized (the sequential path never merges).
        self.perf.peak_replicas += other.perf.peak_replicas;
        for transition in other.alerts.transitions() {
            self.alerts.push(*transition);
        }
        self.availability.merge(&other.availability);
    }

    /// Converts the (merged) outcome into the public report.
    ///
    /// `summary_sorted` reproduces the seed's sort-then-`from_sorted` global
    /// summary bit-for-bit below the sketch cap; `summary` reproduces the
    /// insertion-order `from_samples` per-model fold.
    pub(crate) fn into_report(mut self) -> ServingReport {
        ServingReport {
            dispatch: self.dispatch,
            stats: self.router_stats,
            latency: self.latencies.summary_sorted(),
            per_model: self
                .per_model
                .into_iter()
                .map(|(model, sketch)| (model, sketch.summary()))
                .collect(),
            per_node_completed: self.per_node_completed,
            deadline: self.deadline,
            batches: self.batches,
            migration_stats: MigrationStats::from_records(&self.migration_records),
            migrations: self.migration_records,
            control: self.control,
            replica_cycles: self.replica_cycles,
            makespan: Cycles(self.makespan),
            perf: self.perf,
            alerts: self.alerts,
            availability: self.availability,
        }
    }
}

/// A replica in flight between partitions: everything the destination needs
/// to resurrect it, plus everything the source already charged for moving it.
///
/// Cross-partition migrations are always cold (precopy needs destination
/// state the source partition cannot see), priced source-side, and delivered
/// at the next barrier. `ready_at` is the cycle the replica may resume at on
/// the destination — the barrier merge clamps it up to the barrier time, which
/// is conservative-safe because partitions never run past the barrier bound.
pub(crate) struct MigrationEnvelope {
    pub(crate) from_node: NodeId,
    pub(crate) to_node: NodeId,
    pub(crate) spec: DeploySpec,
    queue: Vec<QueuedRequest>,
    pub(crate) ready_at: u64,
    record: MigrationRecord,
    /// True once the destination rejected the import and the envelope was
    /// re-targeted back at its source. A bounced envelope re-imports silently
    /// (the rejection was already counted); a second failure abandons it.
    pub(crate) bounced: bool,
}

/// Per-partition view of the sharded world: which partition this is, who owns
/// each board, how arrivals are routed, and the replicas exported since the
/// last barrier. `None` on the sequential path — every shard-aware branch in
/// the step function keys off that, so `partitions = 1` is the sequential
/// code path by construction.
pub(crate) struct ShardContext {
    pub(crate) index: usize,
    pub(crate) owners: BTreeMap<NodeId, usize>,
    pub(crate) plan: ShardPlan,
    pub(crate) exports: Vec<MigrationEnvelope>,
}

impl ShardContext {
    fn owner_of(&self, node: NodeId) -> usize {
        self.owners.get(&node).copied().unwrap_or(0)
    }

    fn owns(&self, node: NodeId) -> bool {
        self.owner_of(node) == self.index
    }
}

/// One partition of the serving event loop: a set of boards with its own
/// event heap, replica table, router, RNG and accumulators.
///
/// The sequential `run*` entry points drive a single partition owning the
/// whole cluster to completion in one unbounded round; the sharded runner
/// drives one partition per board-group in bounded-window rounds, merging
/// cross-partition traffic at each barrier. All mutable simulation state
/// lives here so a partition can be stepped to a bound, reconciled, and
/// resumed without losing determinism.
pub(crate) struct PartitionSim<'a> {
    pub(crate) options: ServingOptions,
    cache: CalibrationCache,
    replicas: Vec<ReplicaSim>,
    dispatch_index: ReplicaIndex,
    router: Router,
    state: ServeState,
    events: EventQueue,
    links: LinkSchedule,
    recovery_armed: bool,
    avoid_migrating: bool,
    sample_interval: Option<u64>,
    alert_interval: Option<u64>,
    alert_scratch: Vec<AlertTransition>,
    frame: TelemetryFrame,
    stale_models: Vec<ModelId>,
    arrivals: &'a [RequestArrival],
    next_arrival: usize,
    makespan: u64,
    perf: PerfStats,
    latencies: QuantileSketch,
    per_model: BTreeMap<ModelId, QuantileSketch>,
    per_node_completed: BTreeMap<NodeId, usize>,
    migration_records: Vec<MigrationRecord>,
    views: Vec<ReplicaView>,
    /// `Some` only under the sharded runner; `None` keeps every shard-aware
    /// branch dead on the sequential path.
    shard: Option<ShardContext>,
}

impl<'a> PartitionSim<'a> {
    /// Builds a partition over `cluster`'s current deployments, arming the
    /// scheduled migration, fault, telemetry and alert events.
    pub(crate) fn new(
        options: ServingOptions,
        cluster: &mut NpuCluster,
        arrivals: &'a [RequestArrival],
    ) -> Self {
        Self::build(options, cluster, arrivals, None)
    }

    /// Builds one partition of a sharded run. Telemetry and alert events are
    /// never armed partition-side — the coordinator drives sampling at the
    /// barrier so the control plane sees the whole fleet, not one shard.
    pub(crate) fn new_sharded(
        options: ServingOptions,
        cluster: &mut NpuCluster,
        arrivals: &'a [RequestArrival],
        shard: ShardContext,
    ) -> Self {
        Self::build(options, cluster, arrivals, Some(shard))
    }

    fn build(
        options: ServingOptions,
        cluster: &mut NpuCluster,
        arrivals: &'a [RequestArrival],
        shard: Option<ShardContext>,
    ) -> Self {
        let max_batch = options.max_batch.max(1);
        let edf = options.dispatch.orders_queues_by_deadline();
        let mut cache = CalibrationCache::new(max_batch, options.stochastic, edf);
        let initial: Vec<DeployedVnpu> = cluster.deployments().copied().collect();
        let replicas: Vec<ReplicaSim> = initial
            .iter()
            .map(|d| cache.replica_sim(cluster, d, 0))
            .collect();

        // The dispatch index mirrors the replica table incrementally: slots
        // enter on deploy, leave the routable sets on drain, re-key on
        // migration and die on retire. Every arrival then reads exactly the
        // candidates of its model instead of scanning (and re-counting) the
        // whole table.
        let mut dispatch_index = ReplicaIndex::new();
        for (slot, replica) in replicas.iter().enumerate() {
            dispatch_index.insert(slot, replica.model, replica.handle.node, replica.handle);
        }

        let router = Router::new(options.dispatch, options.admission);
        let sample_interval = options.telemetry_interval;
        let state = ServeState {
            max_batch,
            max_batch_wait: options.max_batch_wait,
            drop_expired: options.drop_expired,
            rng: options.stochastic.map(|s| StdRng::seed_from_u64(s.seed)),
            deadline: DeadlineStats::default(),
            batches: 0,
            sampling: sample_interval.is_some(),
            window_start: 0,
            windows: BTreeMap::new(),
            control: ControlStats::default(),
            replica_cycles: 0,
            batch_pool: Vec::new(),
            live_replicas: replicas.len(),
            peak_replicas: replicas.len(),
            slo: options.slo.as_ref().map(SloEngine::new),
            alerts: AlertLog::default(),
            chaos: options
                .faults
                .as_ref()
                .map(|schedule| ChaosState::new(schedule, options.recovery)),
        };
        let mut events = EventQueue::default();
        for (index, migration) in options.migrations.iter().enumerate() {
            events.push(migration.at.get(), EV_MIGRATION, index);
        }
        if let Some(schedule) = &options.faults {
            for (index, fault) in schedule.events().iter().enumerate() {
                events.push(fault.at, EV_FAULT, index);
            }
        }
        // Fenced (undetected-dead) replicas count as pending work only while
        // recovery will eventually drain them; without recovery they would
        // sustain the telemetry bus forever and the run could never end.
        let recovery_armed = options.faults.is_some() && options.recovery.is_some();
        let avoid_migrating = options.migration_aware_dispatch;
        // Sharded partitions never self-sample: the coordinator ticks
        // telemetry at the barrier over the merged fleet instead.
        if shard.is_none() {
            if let Some(interval) = sample_interval {
                events.push(interval, EV_SAMPLE, 0);
            }
        }
        let alert_interval = state.slo.as_ref().map(|engine| engine.tick());
        if shard.is_none() {
            if let Some(tick) = alert_interval {
                events.push(tick, EV_ALERT, 0);
            }
        }
        // Latency accumulators are streaming quantile sketches, not retained
        // per-sample vectors: exact (and summary-bit-identical to the seed's
        // sort-then-summarize) below the sketch cap, α-bounded and O(1)
        // memory beyond it — a 10M-arrival run no longer holds 80MB of
        // samples to answer four percentiles.
        let latencies = QuantileSketch::with_capacity_hint(arrivals.len());

        PartitionSim {
            options,
            cache,
            replicas,
            dispatch_index,
            router,
            state,
            events,
            links: LinkSchedule::default(),
            recovery_armed,
            avoid_migrating,
            sample_interval,
            alert_interval,
            // Alert-edge scratch, reused across alert ticks.
            alert_scratch: Vec::new(),
            // Telemetry scratch, reused across ticks: the frame's vectors and
            // model map persist, so steady-state sampling allocates nothing.
            frame: TelemetryFrame {
                at: Cycles::ZERO,
                window: Cycles::ZERO,
                replicas: Vec::new(),
                models: BTreeMap::new(),
            },
            stale_models: Vec::new(),
            arrivals,
            next_arrival: 0,
            makespan: 0,
            perf: PerfStats::default(),
            latencies,
            per_model: BTreeMap::new(),
            per_node_completed: BTreeMap::new(),
            migration_records: Vec::new(),
            // Candidate-view scratch, refilled per arrival; after warm-up the
            // dispatch path performs no allocation at all.
            views: Vec::new(),
            shard,
        }
    }

    /// Advances the partition until no work remains or the next event or
    /// arrival is at or past `bound` — events exactly at `bound` run in the
    /// next round, after the barrier reconciliation, which is what makes
    /// barrier-injected events (always stamped ≥ the barrier time) safe. The
    /// sequential path passes `u64::MAX`: one unbounded round to completion.
    pub(crate) fn step_until<S: ObsSink + ?Sized>(
        &mut self,
        bound: u64,
        cluster: &mut NpuCluster,
        controller: &mut dyn ControlPlane,
        sink: &mut S,
    ) {
        let PartitionSim {
            options,
            cache,
            replicas,
            dispatch_index,
            router,
            state,
            events,
            links,
            recovery_armed,
            avoid_migrating,
            sample_interval,
            alert_interval,
            alert_scratch,
            frame,
            stale_models,
            arrivals,
            next_arrival,
            makespan,
            perf,
            latencies,
            per_model,
            per_node_completed,
            migration_records,
            views,
            shard,
        } = self;
        let arrivals: &[RequestArrival] = arrivals;
        let recovery_armed = *recovery_armed;
        let avoid_migrating = *avoid_migrating;
        let sample_interval = *sample_interval;
        let alert_interval = *alert_interval;

        loop {
            let event_time = events.next_time();
            let arrival_time = arrivals.get(*next_arrival).map(|a| a.at.get());
            let take_event = match (event_time, arrival_time) {
                (None, None) => break,
                (Some(t), Some(at)) => t <= at,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            let due = if take_event { event_time } else { arrival_time };
            match due {
                Some(t) if t < bound => {}
                _ => break,
            }

            if take_event {
                let (now, kind, index) = events.pop().expect("peeked above"); // simlint::allow(P1, reason = "pop follows the peek that chose the event branch")
                perf.events += 1;
                match kind {
                    EV_COMPLETION => {
                        // A fenced board never reports: the batch stays
                        // captured in `in_service` so failover (or the
                        // end-of-run sweep) can account for every request.
                        if replicas[index].fenced {
                            continue;
                        }
                        // Only real work moves the makespan: completions here,
                        // executed migrations via their resume event.
                        *makespan = (*makespan).max(now);
                        let replica = &mut replicas[index];
                        let (mut batch, started, finish) = replica
                            .in_service
                            .take()
                            .expect("completion without service"); // simlint::allow(P1, reason = "EV_COMPLETION is only scheduled while a batch is in service")
                        debug_assert_eq!(finish, now);
                        replica.window_busy += finish - started.max(state.window_start);
                        for request in &batch {
                            let latency = now.saturating_sub(request.arrived);
                            latencies.record(latency);
                            per_model.entry(request.model).or_default().record(latency);
                            if let Some(window) = state.window_of(request.model) {
                                window.metrics.record_latency(latency);
                            }
                            let mut deadline_met = None;
                            if let Some(deadline) = request.deadline {
                                let met = now <= deadline;
                                deadline_met = Some(met);
                                state.deadline.record_completion(met);
                                if let Some(window) = state.window_of(request.model) {
                                    window.metrics.record_deadline(met);
                                }
                            }
                            router.record_completion();
                            if let Some(chaos) = &mut state.chaos {
                                chaos.note_completed(request.model);
                            }
                            if let Some(engine) = &mut state.slo {
                                engine.observe_latency(
                                    now,
                                    request.model,
                                    request.priority,
                                    latency,
                                );
                            }
                            sink.on_complete(
                                now,
                                request.sequence,
                                request.model,
                                request.priority,
                                request.arrived,
                                replica.handle.node,
                                index,
                                deadline_met,
                            );
                        }
                        *per_node_completed.entry(replica.handle.node).or_default() += batch.len();
                        // A live pre-copy in flight: the served batch wrote
                        // its share of resident state, re-dirtying pages the
                        // rounds must stream again.
                        if let Some(precopy) = &mut replica.precopy {
                            precopy
                                .dirty
                                .mark(batch.len() as u64 * precopy.dirty_bytes_per_request);
                        }
                        batch.clear();
                        state.batch_pool.push(batch);
                        if let Some((to, requested_at)) = replica.pending_migration.take() {
                            let drain = now.saturating_sub(requested_at);
                            Self::execute_migration(
                                cluster,
                                &mut replicas[index],
                                dispatch_index,
                                now,
                                to,
                                drain,
                                &options.cost_model,
                                migration_records,
                                events,
                                links,
                                index,
                                state,
                                shard,
                                sink,
                            );
                        } else {
                            Self::start_next(&mut replicas[index], now, events, index, state, sink);
                            Self::retire_if_drained(
                                cluster,
                                &mut replicas[index],
                                dispatch_index,
                                now,
                                state,
                            );
                        }
                    }
                    EV_RESUME => {
                        *makespan = (*makespan).max(now);
                        Self::start_next(&mut replicas[index], now, events, index, state, sink);
                        Self::retire_if_drained(
                            cluster,
                            &mut replicas[index],
                            dispatch_index,
                            now,
                            state,
                        );
                    }
                    EV_BATCH_TIMEOUT => {
                        let replica = &mut replicas[index];
                        // Stale timeouts (the batch filled, or the queue was
                        // served/dropped meanwhile) are ignored; `start_next`
                        // re-arms a fresh one when it holds again.
                        if replica.batch_timeout_at == Some(now) {
                            replica.batch_timeout_at = None;
                            Self::start_next(replica, now, events, index, state, sink);
                        }
                    }
                    EV_COPY_ROUND => {
                        Self::copy_round(
                            cluster,
                            replicas,
                            dispatch_index,
                            index,
                            now,
                            &options.cost_model,
                            migration_records,
                            events,
                            links,
                            state,
                            shard,
                            sink,
                        );
                    }
                    EV_MIGRATION => {
                        let scheduled = options.migrations[index];
                        let Some(target) = dispatch_index.slot_of(scheduled.handle) else {
                            continue; // stale handle (already moved or undeployed)
                        };
                        // Under the sharded runner a destination owned by
                        // another partition demotes a pre-copy to a cold
                        // drain-and-move: the copy loop needs destination
                        // state the source partition cannot see.
                        let export = shard.is_some() && cluster.node(scheduled.to).is_none();
                        match scheduled.mode {
                            MigrationMode::Cold => Self::request_migration(
                                cluster,
                                replicas,
                                dispatch_index,
                                target,
                                scheduled.to,
                                now,
                                &options.cost_model,
                                migration_records,
                                events,
                                links,
                                state,
                                shard,
                                sink,
                            ),
                            MigrationMode::PreCopy if export => Self::request_migration(
                                cluster,
                                replicas,
                                dispatch_index,
                                target,
                                scheduled.to,
                                now,
                                &options.cost_model,
                                migration_records,
                                events,
                                links,
                                state,
                                shard,
                                sink,
                            ),
                            MigrationMode::PreCopy => Self::begin_precopy(
                                cluster,
                                replicas,
                                target,
                                scheduled.to,
                                now,
                                &options.cost_model,
                                events,
                                links,
                                state,
                                sink,
                            ),
                        }
                    }
                    EV_FAULT => {
                        let mut chaos = state
                            .chaos
                            .take()
                            .expect("EV_FAULT scheduled without chaos state"); // simlint::allow(P1, reason = "EV_FAULT events are only pushed when a fault schedule configured the chaos state")
                        let fault = chaos.schedule[index];
                        chaos.apply(&fault);
                        sink.on_fault(now, &fault);
                        match fault.kind {
                            FaultKind::BoardCrash { node } => {
                                // Cordon the board: nothing (the autoscaler
                                // included) may place onto it again. Replicas
                                // are fenced, not retired — the router keeps
                                // steering into the black hole until the
                                // missed-frame detector declares the board
                                // dead, which is exactly the availability
                                // cost of detection latency.
                                cluster.set_offline(node, true);
                                chaos.cordoned.insert(node);
                                for replica in replicas
                                    .iter_mut()
                                    .filter(|r| r.live() && r.handle.node == node)
                                {
                                    replica.fenced = true;
                                    replica.pending_migration = None;
                                    replica.precopy = None;
                                    replica.batch_timeout_at = None;
                                }
                            }
                            FaultKind::BoardHang { node, for_cycles } => {
                                // Cordon for the window so the control plane
                                // cannot deploy into dead air; the sample-tick
                                // sweep re-onlines the board once the hang
                                // clears (unless the detector failed it over
                                // first). Batches already on the device
                                // complete; nothing new starts.
                                cluster.set_offline(node, true);
                                chaos.cordoned.insert(node);
                                let resume_at = now.saturating_add(for_cycles);
                                for (slot, replica) in replicas.iter_mut().enumerate() {
                                    if replica.live()
                                        && !replica.fenced
                                        && replica.handle.node == node
                                    {
                                        replica.available_at = replica.available_at.max(resume_at);
                                        events.push(resume_at, EV_RESUME, slot);
                                    }
                                }
                            }
                            // Window faults: `apply` opened the window; the
                            // serving and transfer paths read it lazily.
                            FaultKind::LinkDegrade { .. }
                            | FaultKind::Straggler { .. }
                            | FaultKind::TelemetryDropout { .. } => {}
                        }
                        state.chaos = Some(chaos);
                    }
                    EV_SAMPLE => {
                        let interval = sample_interval.expect("sampling scheduled"); // simlint::allow(P1, reason = "EV_SAMPLE is only scheduled when sampling is configured")
                        Self::chaos_tick(
                            cluster,
                            replicas,
                            dispatch_index,
                            cache,
                            router,
                            views,
                            now,
                            &options.cost_model,
                            options.failover_edf,
                            events,
                            links,
                            state,
                            sink,
                        );
                        Self::sample_into(frame, stale_models, replicas, now, state);
                        state.control.samples += 1;
                        // Fleet-wide counter tracks are gathered only for an
                        // active sink: the disabled path never pays the scan.
                        if sink.active() {
                            let mut counters = FleetCounters::default();
                            for replica in replicas.iter().filter(|r| r.live()) {
                                counters.queued += replica.queue.len() as u64;
                                counters.in_flight += replica.in_flight() as u64;
                                counters.live_replicas += 1;
                                if replica.precopy.is_some() || replica.pending_migration.is_some()
                                {
                                    counters.migrations_in_flight += 1;
                                }
                                counters.resident_bytes +=
                                    cluster.resident_state_bytes(replica.handle).unwrap_or(0);
                            }
                            sink.on_tick(now, frame, &counters);
                        }
                        let actions = controller.control(frame, cluster);
                        for action in actions {
                            Self::apply_action(
                                cluster,
                                replicas,
                                dispatch_index,
                                cache,
                                action,
                                now,
                                &options.cost_model,
                                migration_records,
                                events,
                                links,
                                state,
                                shard,
                                sink,
                            );
                        }
                        // Keep ticking only while there is (or can be) work:
                        // the bus must not keep an otherwise-finished run
                        // alive forever. The event counter answers "anything
                        // still queued?" without scanning the heap.
                        if Self::work_left(
                            *next_arrival,
                            arrivals,
                            replicas,
                            events,
                            recovery_armed,
                        ) {
                            events.push(now + interval, EV_SAMPLE, 0);
                        }
                    }
                    EV_ALERT => {
                        alert_scratch.clear();
                        if let Some(engine) = &mut state.slo {
                            engine.evaluate(now, alert_scratch);
                        }
                        for alert in alert_scratch.iter() {
                            state.alerts.push(*alert);
                            sink.on_alert(now, alert);
                            controller.on_alert(Cycles(now), alert);
                        }
                        // Same liveness rule as the telemetry bus: alert
                        // ticks observe work, they must not sustain it.
                        if let Some(tick) = alert_interval {
                            if Self::work_left(
                                *next_arrival,
                                arrivals,
                                replicas,
                                events,
                                recovery_armed,
                            ) {
                                events.push(now + tick, EV_ALERT, 0);
                            }
                        }
                    }
                    _ => unreachable!("unknown event kind"),
                }
            } else {
                let arrival = arrivals[*next_arrival];
                *next_arrival += 1;
                // Sharded runs share the trace slice: each partition walks
                // every arrival but admits only those the deterministic plan
                // assigns to it, so arrival counters sum to the trace length
                // across partitions.
                if let Some(context) = shard.as_ref() {
                    if context.plan.owner(arrival.model, arrival.sequence) != context.index {
                        continue;
                    }
                }
                perf.arrivals += 1;
                let now = arrival.at.get();
                sink.on_arrival(now, arrival.sequence, arrival.model);

                views.clear();
                if options.reference_dispatch {
                    // The pre-index reference path, kept verbatim: scan the
                    // whole table per arrival and recount the locality signal
                    // per candidate.
                    views.extend(
                        replicas
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.live() && !r.draining && r.model == arrival.model)
                            .map(|(slot, r)| ReplicaView {
                                index: slot,
                                node: r.handle.node,
                                queue_len: r.queue.len(),
                                in_flight: r.in_flight(),
                                unavailable: r.unavailable(now)
                                    || (avoid_migrating && r.precopy.is_some()),
                                node_replicas: replicas
                                    .iter()
                                    .filter(|o| {
                                        o.live()
                                            && !o.draining
                                            && o.model == arrival.model
                                            && o.handle.node == r.handle.node
                                    })
                                    .count(),
                            }),
                    );
                } else {
                    // Indexed path: O(candidates of this model), no recount.
                    for &slot in dispatch_index.candidates(arrival.model) {
                        let replica = &replicas[slot];
                        views.push(ReplicaView {
                            index: slot,
                            node: replica.handle.node,
                            queue_len: replica.queue.len(),
                            in_flight: replica.in_flight(),
                            unavailable: replica.unavailable(now)
                                || (avoid_migrating && replica.precopy.is_some()),
                            node_replicas: dispatch_index
                                .node_count(arrival.model, replica.handle.node),
                        });
                    }
                }
                match router.dispatch(arrival.model, views) {
                    DispatchDecision::Dispatch(index) => {
                        if let Some(window) = state.window_of(arrival.model) {
                            window.arrivals += 1;
                        }
                        if let Some(chaos) = &mut state.chaos {
                            chaos.note_admitted(arrival.model);
                        }
                        sink.on_dispatch(
                            now,
                            arrival.sequence,
                            arrival.model,
                            replicas[index].handle.node,
                            index,
                        );
                        let request = QueuedRequest {
                            model: arrival.model,
                            arrived: now,
                            deadline: arrival.deadline.map(|d| d.get()),
                            priority: arrival.priority,
                            sequence: arrival.sequence,
                        };
                        replicas[index].enqueue(request);
                        Self::start_next(&mut replicas[index], now, events, index, state, sink);
                    }
                    decision @ (DispatchDecision::RejectNoReplica
                    | DispatchDecision::RejectOverload) => {
                        if let Some(window) = state.window_of(arrival.model) {
                            window.rejected += 1;
                        }
                        let reason = if matches!(decision, DispatchDecision::RejectNoReplica) {
                            RejectReason::NoReplica
                        } else {
                            RejectReason::Overload
                        };
                        sink.on_reject(now, arrival.sequence, arrival.model, reason);
                    }
                }
            }
        }
    }

    /// Ends the run: sweeps requests still marooned on fenced boards, banks
    /// the replica-time of everything still provisioned, and converts the
    /// partition's accumulators into a mergeable [`PartitionOutcome`].
    pub(crate) fn finish<S: ObsSink + ?Sized>(mut self, sink: &mut S) -> PartitionOutcome {
        let makespan = self.makespan;
        // Requests still marooned on fenced boards at run end were never
        // failed over (no recovery armed, or the run drained first): count
        // every one lost with a fault attribution. Nothing is silent.
        if let Some(chaos) = &mut self.state.chaos {
            let mut marooned: Vec<QueuedRequest> = Vec::new();
            for replica in self.replicas.iter_mut().filter(|r| r.fenced && !r.retired) {
                if let Some((batch, _, _)) = replica.in_service.take() {
                    marooned.extend(batch.iter().copied());
                }
                let queued = replica.queue.len();
                replica.queue.drain_into(queued, &mut marooned);
                for request in marooned.drain(..) {
                    chaos.note_lost(request.model);
                    sink.on_lost(
                        makespan,
                        request.sequence,
                        request.model,
                        replica.handle.node,
                    );
                }
            }
        }

        // Bank the replica-time of everything still provisioned at the end.
        for replica in self.replicas.iter().filter(|r| r.live()) {
            self.state.replica_cycles += makespan.saturating_sub(replica.activated_at);
        }
        self.perf.peak_replicas = self.state.peak_replicas;

        let availability = self
            .state
            .chaos
            .take()
            .map(|chaos| chaos.stats)
            .unwrap_or_default();
        PartitionOutcome {
            dispatch: self.options.dispatch,
            router_stats: self.router.stats(),
            latencies: self.latencies,
            per_model: self.per_model,
            per_node_completed: self.per_node_completed,
            deadline: self.state.deadline,
            batches: self.state.batches,
            migration_records: self.migration_records,
            control: self.state.control,
            replica_cycles: self.state.replica_cycles,
            makespan,
            perf: self.perf,
            alerts: self.state.alerts,
            availability,
        }
    }

    /// Whether the run can still produce completions: arrivals left, a live
    /// replica with queued/in-service work or a pending drain-then-move, or
    /// any real (non-observer) event queued. Shared by the telemetry and
    /// alert ticks so neither periodic observer keeps a finished run alive.
    fn work_left(
        next_arrival: usize,
        arrivals: &[RequestArrival],
        replicas: &[ReplicaSim],
        events: &EventQueue,
        recovery_armed: bool,
    ) -> bool {
        next_arrival < arrivals.len()
            || replicas.iter().any(|r| {
                // Work marooned on a fenced board counts only while recovery
                // will eventually drain it (detection needs the telemetry
                // ticks this keeps alive); without recovery it would sustain
                // the bus forever, so the run ends and the sweep counts the
                // marooned requests as lost.
                r.live()
                    && (!r.fenced || recovery_armed)
                    && (r.in_service.is_some()
                        || !r.queue.is_empty()
                        || r.pending_migration.is_some())
            })
            || events.has_non_sample()
    }

    /// The failure-detection and failover pass, run at every telemetry tick
    /// before the frame is sampled (detection rides the telemetry bus — no
    /// wall clock anywhere).
    ///
    /// Every monitored board (one hosting at least one live replica) either
    /// heartbeats or bumps its consecutive-missed-frame counter; a board at
    /// the policy threshold is **declared dead**: its replicas are fenced
    /// and retired, the orphaned requests (queued + in flight) are
    /// re-dispatched to surviving replicas within their remaining deadline
    /// budget, and replacement replicas are re-placed through the placement
    /// engine with the state restore priced over the (possibly degraded)
    /// interconnect. Finally, cordoned boards whose transient fault window
    /// has closed rejoin the placement engine as spare capacity.
    #[allow(clippy::too_many_arguments)]
    fn chaos_tick<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replicas: &mut Vec<ReplicaSim>,
        dispatch_index: &mut ReplicaIndex,
        cache: &mut CalibrationCache,
        router: &mut Router,
        views: &mut Vec<ReplicaView>,
        now: u64,
        cost_model: &MigrationCostModel,
        failover_edf: bool,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        state: &mut ServeState,
        sink: &mut S,
    ) {
        let Some(mut chaos) = state.chaos.take() else {
            return;
        };
        let Some(policy) = chaos.recovery else {
            state.chaos = Some(chaos);
            return;
        };

        // Heartbeat accounting over the monitored boards. BTreeSet: the
        // declaration scan below must walk nodes in a deterministic order.
        let mut monitored: BTreeSet<NodeId> = BTreeSet::new();
        for replica in replicas.iter().filter(|r| r.live()) {
            monitored.insert(replica.handle.node);
        }
        let mut dead: Vec<NodeId> = Vec::new();
        for &node in &monitored {
            if chaos.declared.contains(&node) {
                continue;
            }
            if chaos.suppressed(node, now) {
                let missed = chaos.missed.entry(node).or_insert(0);
                *missed += 1;
                if *missed >= policy.missed_frame_threshold {
                    dead.push(node);
                }
            } else {
                chaos.missed.remove(&node);
                chaos.fault_since.remove(&node);
            }
        }

        // Slots whose queues gained redispatched orphans; batches start only
        // after the chaos state is back in place (straggler pricing applies).
        let mut touched: BTreeSet<usize> = BTreeSet::new();

        for node in dead {
            chaos.declared.insert(node);
            chaos.cordoned.insert(node);
            cluster.set_offline(node, true);
            chaos.stats.failovers += 1;
            let fault_at = chaos.fault_since.get(&node).copied().unwrap_or(now);
            let detect = now.saturating_sub(fault_at);
            chaos.stats.detect_cycles_total += detect;
            chaos.stats.detect_cycles_max = chaos.stats.detect_cycles_max.max(detect);

            // Fence and retire every live replica on the dead board,
            // capturing its orphans and (for non-draining replicas) the
            // deployment shape to restore elsewhere.
            let slots: Vec<usize> = replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.live() && r.handle.node == node)
                .map(|(slot, _)| slot)
                .collect();
            let mut orphans: Vec<(usize, QueuedRequest)> = Vec::new();
            let mut failed_here = 0u64;
            for slot in slots {
                let (handle, was_draining) = {
                    let r = &replicas[slot];
                    (r.handle, r.draining)
                };
                let restore_spec = if was_draining {
                    None
                } else {
                    cluster.deployment(handle).map(|d| {
                        (
                            DeploySpec {
                                model: d.model,
                                mes: d.config.num_mes_per_core,
                                ves: d.config.num_ves_per_core,
                                sram_bytes: Some(d.config.sram_size_per_core),
                                hbm_bytes: Some(d.config.mem_size_per_core),
                                priority: d.priority,
                                mode: d.mode,
                            },
                            cluster.resident_state_bytes(handle).unwrap_or(0),
                        )
                    })
                };
                let replica = &mut replicas[slot];
                replica.fenced = true;
                replica.pending_migration = None;
                replica.precopy = None;
                replica.batch_timeout_at = None;
                if let Some((mut batch, _, _)) = replica.in_service.take() {
                    orphans.extend(batch.iter().map(|&request| (slot, request)));
                    batch.clear();
                    state.batch_pool.push(batch);
                }
                let queued = replica.queue.len();
                let mut drained: Vec<QueuedRequest> = Vec::with_capacity(queued);
                replica.queue.drain_into(queued, &mut drained);
                orphans.extend(drained.into_iter().map(|request| (slot, request)));
                dispatch_index.evict(slot, replica.model, node, handle, !replica.draining);
                replica.retired = true;
                state.replica_cycles += now.saturating_sub(replica.activated_at);
                state.live_replicas -= 1;
                failed_here += 1;
                chaos.stats.replicas_failed += 1;
                let undeployed = cluster.undeploy(handle);
                debug_assert!(
                    undeployed.is_ok(),
                    "a live replica's deployment must exist at failover"
                );

                // Re-place the replica on a surviving board, pricing the
                // state restore over the interconnect (degraded links slow
                // recovery too).
                if let Some((spec, state_bytes)) = restore_spec {
                    match cluster.deploy(spec, policy.placement) {
                        Ok(new_handle) => {
                            let deployment = *cluster
                                .deployment(new_handle)
                                .expect("deploy just returned this handle"); // simlint::allow(P1, reason = "deployment record is created by the successful deploy above")
                            let mut sim = cache.replica_sim(cluster, &deployment, now);
                            let frequency = cluster
                                .node(new_handle.node)
                                .expect("deploy placed on an existing node") // simlint::allow(P1, reason = "deploy only places on nodes of the cluster")
                                .npu_config()
                                .frequency;
                            let mut cycles =
                                cost_model.transfer_cycles(state_bytes, frequency).get();
                            let factor = chaos.link_factor(node, new_handle.node, now);
                            if factor > 1.0 {
                                cycles = ((cycles as f64 * factor) as u64).max(cycles);
                            }
                            let ready = links.reserve(node, new_handle.node, now, cycles);
                            sim.available_at = ready;
                            let new_slot = replicas.len();
                            dispatch_index.insert(new_slot, sim.model, new_handle.node, new_handle);
                            replicas.push(sim);
                            state.live_replicas += 1;
                            state.peak_replicas = state.peak_replicas.max(state.live_replicas);
                            events.push(ready, EV_RESUME, new_slot);
                            chaos.stats.replicas_restored += 1;
                            let restore = ready.saturating_sub(fault_at);
                            chaos.stats.restore_cycles_total += restore;
                            chaos.stats.restore_cycles_max =
                                chaos.stats.restore_cycles_max.max(restore);
                            sink.on_replica_restored(
                                now,
                                new_handle.node,
                                new_slot,
                                ready.saturating_sub(now),
                            );
                        }
                        Err(_) => {
                            chaos.stats.restore_rejected += 1;
                        }
                    }
                }
            }

            // Re-dispatch the orphans in admission order — or, with
            // `failover_edf`, earliest-deadline-first so the tightest
            // deadlines reach surviving capacity ahead of best-effort
            // backlog. A request past its deadline is dropped with the
            // normal expiry accounting; one no surviving replica can take is
            // lost — with a fault attribution, never silently.
            if failover_edf {
                orphans.sort_by_key(|(_, request)| request.edf_key());
            } else {
                orphans.sort_by_key(|(_, request)| request.sequence);
            }
            chaos.stats.orphaned += orphans.len() as u64;
            let mut redispatched_here = 0u64;
            for (dead_slot, request) in orphans {
                if state.drop_expired && request.deadline.is_some_and(|d| d < now) {
                    chaos.stats.expired_in_failover += 1;
                    state.deadline.record_dropped();
                    if state.sampling {
                        state
                            .windows
                            .entry(request.model)
                            .or_default()
                            .metrics
                            .record_dropped();
                    }
                    if let Some(engine) = &mut state.slo {
                        engine.observe_expired(now, request.model, request.priority);
                    }
                    sink.on_expire(
                        now,
                        request.sequence,
                        request.model,
                        request.arrived,
                        node,
                        dead_slot,
                    );
                    continue;
                }
                views.clear();
                for &slot in dispatch_index.candidates(request.model) {
                    let replica = &replicas[slot];
                    views.push(ReplicaView {
                        index: slot,
                        node: replica.handle.node,
                        queue_len: replica.queue.len(),
                        in_flight: replica.in_flight(),
                        unavailable: replica.unavailable(now),
                        node_replicas: dispatch_index
                            .node_count(request.model, replica.handle.node),
                    });
                }
                match router.redispatch(request.model, views) {
                    DispatchDecision::Dispatch(slot) => {
                        redispatched_here += 1;
                        chaos.stats.redispatched += 1;
                        replicas[slot].enqueue(request);
                        touched.insert(slot);
                    }
                    DispatchDecision::RejectNoReplica | DispatchDecision::RejectOverload => {
                        chaos.note_lost(request.model);
                        if let Some(engine) = &mut state.slo {
                            engine.observe_expired(now, request.model, request.priority);
                        }
                        sink.on_lost(now, request.sequence, request.model, node);
                    }
                }
            }
            sink.on_failover(now, node, failed_here, redispatched_here, detect);
        }

        // Boards whose transient windows closed (hang over, dropout over —
        // never a crash) rejoin the placement engine as spare capacity. A
        // falsely declared board rejoins empty: its replicas were already
        // failed over.
        let rejoin: Vec<NodeId> = chaos
            .cordoned
            .iter()
            .copied()
            .filter(|&node| !chaos.crashed.contains(&node) && !chaos.suppressed(node, now))
            .collect();
        for node in rejoin {
            cluster.set_offline(node, false);
            chaos.cordoned.remove(&node);
            chaos.declared.remove(&node);
            chaos.missed.remove(&node);
            chaos.fault_since.remove(&node);
        }

        state.chaos = Some(chaos);
        for slot in touched {
            Self::start_next(&mut replicas[slot], now, events, slot, state, sink);
        }
    }

    /// Closes the current telemetry window and rebuilds `frame` in place for
    /// the control plane.
    ///
    /// The frame's replica vector and model map are per-run scratch: the
    /// vector is cleared and refilled (its capacity persists) and the map's
    /// entries are reset in place, with new models inserted and vanished
    /// models swept via the reused `stale` buffer — so a steady-state tick
    /// over a stable fleet allocates nothing. The frame contents are
    /// bit-identical to a from-scratch build.
    fn sample_into(
        frame: &mut TelemetryFrame,
        stale: &mut Vec<ModelId>,
        replicas: &mut [ReplicaSim],
        now: u64,
        state: &mut ServeState,
    ) {
        frame.at = Cycles(now);
        frame.window = Cycles(now.saturating_sub(state.window_start));
        frame.replicas.clear();
        for replica in replicas.iter_mut().filter(|r| r.live()) {
            if let Some((_, started, _)) = &replica.in_service {
                replica.window_busy += now - (*started).max(state.window_start);
            }
            // A replica activated mid-window is measured over its own
            // lifetime, not the full window — a saturated newcomer must not
            // read as half-idle.
            let lifetime = now.saturating_sub(replica.activated_at.max(state.window_start));
            let utilization = if lifetime > 0 {
                (replica.window_busy as f64 / lifetime as f64).min(1.0)
            } else {
                0.0
            };
            frame.replicas.push(ReplicaSample {
                handle: replica.handle,
                model: replica.model,
                queue_len: replica.queue.len(),
                in_flight: replica.in_flight(),
                draining: replica.draining,
                utilization,
            });
            replica.window_busy = 0;
        }

        for (model, entry) in frame.models.iter_mut() {
            *entry = ModelSample::empty(*model);
        }
        for sample in &frame.replicas {
            let entry = frame
                .models
                .entry(sample.model)
                .or_insert_with(|| ModelSample::empty(sample.model));
            if !sample.draining {
                entry.replicas += 1;
            }
            entry.queued += sample.queue_len;
            entry.in_flight += sample.in_flight;
        }
        for (model, window_acc) in state.windows.iter_mut() {
            let entry = frame
                .models
                .entry(*model)
                .or_insert_with(|| ModelSample::empty(*model));
            entry.arrivals = window_acc.arrivals;
            entry.rejected = window_acc.rejected;
            let (latency, deadline) = window_acc.metrics.flush();
            entry.latency = latency;
            entry.deadline = deadline;
            window_acc.arrivals = 0;
            window_acc.rejected = 0;
        }
        // Sweep models that vanished since the last tick (no live replica,
        // never any window traffic) so the frame matches a fresh build.
        stale.clear();
        stale.extend(frame.models.keys().copied().filter(|model| {
            !state.windows.contains_key(model)
                && !frame.replicas.iter().any(|sample| sample.model == *model)
        }));
        for model in stale.drain(..) {
            frame.models.remove(&model);
        }
        state.window_start = now;
    }

    /// Applies one control-plane action inside the event loop.
    #[allow(clippy::too_many_arguments)]
    fn apply_action<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replicas: &mut Vec<ReplicaSim>,
        dispatch_index: &mut ReplicaIndex,
        cache: &mut CalibrationCache,
        action: ControlAction,
        now: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        state: &mut ServeState,
        shard: &mut Option<ShardContext>,
        sink: &mut S,
    ) {
        sink.on_control(now, &action);
        match action {
            ControlAction::ScaleUp { spec, placement } => match cluster.deploy(spec, placement) {
                Ok(handle) => {
                    let deployment = *cluster.deployment(handle).expect("just deployed"); // simlint::allow(P1, reason = "deployment recorded by the deploy call one line up")
                    let replica = cache.replica_sim(cluster, &deployment, now);
                    let slot = replicas.len();
                    dispatch_index.insert(slot, replica.model, replica.handle.node, replica.handle);
                    replicas.push(replica);
                    state.control.scale_ups += 1;
                    state.live_replicas += 1;
                    state.peak_replicas = state.peak_replicas.max(state.live_replicas);
                }
                Err(_) => state.control.scale_up_rejected += 1,
            },
            ControlAction::ScaleDown { handle } => {
                let Some(index) = dispatch_index.slot_of(handle) else {
                    return; // stale handle (already moved or released)
                };
                if replicas[index].draining {
                    return;
                }
                replicas[index].draining = true;
                // A scale-down trumps a live migration in flight: the vNPU is
                // being released, so streaming its state anywhere is wasted
                // work. The orphaned copy-round event is ignored by its
                // staleness guard.
                replicas[index].precopy = None;
                dispatch_index.begin_drain(index, replicas[index].model, handle.node);
                state.control.scale_downs += 1;
                // A held partial batch flushes immediately: a draining
                // replica never waits for a batch that cannot form.
                Self::start_next(&mut replicas[index], now, events, index, state, sink);
                Self::retire_if_drained(cluster, &mut replicas[index], dispatch_index, now, state);
            }
            ControlAction::Migrate { handle, to, mode } => {
                state.control.migrations_requested += 1;
                let Some(index) = dispatch_index.slot_of(handle) else {
                    return;
                };
                // Cross-partition destinations demote pre-copy to a cold
                // drain-and-move, exactly like the scheduled-migration path.
                let export = shard.is_some() && cluster.node(to).is_none();
                match mode {
                    MigrationMode::Cold => Self::request_migration(
                        cluster,
                        replicas,
                        dispatch_index,
                        index,
                        to,
                        now,
                        cost_model,
                        records,
                        events,
                        links,
                        state,
                        shard,
                        sink,
                    ),
                    MigrationMode::PreCopy if export => Self::request_migration(
                        cluster,
                        replicas,
                        dispatch_index,
                        index,
                        to,
                        now,
                        cost_model,
                        records,
                        events,
                        links,
                        state,
                        shard,
                        sink,
                    ),
                    MigrationMode::PreCopy => Self::begin_precopy(
                        cluster, replicas, index, to, now, cost_model, events, links, state, sink,
                    ),
                }
            }
        }
    }

    /// Triggers a cold migration of `replicas[index]` to `to`: a busy replica
    /// drains its in-flight batch first, an idle one migrates immediately.
    #[allow(clippy::too_many_arguments)]
    fn request_migration<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replicas: &mut [ReplicaSim],
        dispatch_index: &mut ReplicaIndex,
        index: usize,
        to: NodeId,
        now: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        state: &mut ServeState,
        shard: &mut Option<ShardContext>,
        sink: &mut S,
    ) {
        // A draining replica is about to release its vNPU anyway: migrating
        // it would charge a pointless dark window to its queued requests. A
        // replica already migrating (either mode) finishes that move first.
        if replicas[index].handle.node == to
            || replicas[index].pending_migration.is_some()
            || replicas[index].precopy.is_some()
            || replicas[index].draining
        {
            return;
        }
        if replicas[index].in_service.is_some() {
            // Drain first; the completion event finishes the job.
            replicas[index].pending_migration = Some((to, now));
        } else {
            Self::execute_migration(
                cluster,
                &mut replicas[index],
                dispatch_index,
                now,
                to,
                0,
                cost_model,
                records,
                events,
                links,
                index,
                state,
                shard,
                sink,
            );
        }
    }

    /// Starts a live pre-copy migration of `replicas[index]` to `to`: round 0
    /// streams the full resident state over the (possibly contended) link
    /// while the replica keeps serving; the copy-round event continues the
    /// loop.
    #[allow(clippy::too_many_arguments)]
    fn begin_precopy<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replicas: &mut [ReplicaSim],
        index: usize,
        to: NodeId,
        now: u64,
        cost_model: &MigrationCostModel,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        state: &mut ServeState,
        sink: &mut S,
    ) {
        let replica = &mut replicas[index];
        if replica.handle.node == to
            || replica.pending_migration.is_some()
            || replica.precopy.is_some()
            || replica.draining
        {
            return;
        }
        let state_bytes = cluster.resident_state_bytes(replica.handle);
        if state_bytes.is_none() || cluster.node(to).is_none() {
            // Unknown destination or stale placement: refused, like the cold
            // path's migrate() error.
            state.control.migrations_rejected += 1;
            sink.on_migration_rejected(now, index);
            return;
        }
        let state_bytes = state_bytes.expect("checked above"); // simlint::allow(P1, reason = "the None case returned above as a rejected migration")
        let source_npu = cluster
            .node(replica.handle.node)
            .expect("source node exists") // simlint::allow(P1, reason = "a migrating replica's source node holds its deployment")
            .npu_config();
        let frequency = source_npu.frequency;
        let precopy = &cost_model.precopy;
        let dirty_bytes_per_request = precopy
            .dirty_rate
            .dirty_bytes_per_request(replica.model, source_npu);
        let full_copy = chaos_transfer(
            state,
            replica.handle.node,
            to,
            now,
            cost_model.transfer_cycles(state_bytes, frequency).get(),
        );
        let ends_at = links.reserve(replica.handle.node, to, now, full_copy);
        replica.precopy = Some(PreCopyFlight {
            to,
            dirty: DirtySet::new(state_bytes, precopy.page_bytes),
            dirty_bytes_per_request,
            rounds: 1,
            last_round_bytes: state_bytes,
            round_bytes: vec![state_bytes],
            precopy_cycles: ends_at - now,
            round_ends_at: ends_at,
            converged: false,
        });
        events.push(ends_at, EV_COPY_ROUND, index);
        sink.on_copy_round(now, ends_at, replica.handle.node, to, index, 0, state_bytes);
    }

    /// Finishes one pre-copy round: decides between another round (dirty set
    /// still large but shrinking), and the stop-and-copy (converged below the
    /// threshold, or the loop stalled — round cap hit, or the dirty set no
    /// longer shrinking because serving re-dirties faster than the link
    /// drains).
    #[allow(clippy::too_many_arguments)]
    fn copy_round<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replicas: &mut [ReplicaSim],
        dispatch_index: &mut ReplicaIndex,
        index: usize,
        now: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        state: &mut ServeState,
        shard: &mut Option<ShardContext>,
        sink: &mut S,
    ) {
        let replica = &mut replicas[index];
        // Staleness guards: the migration was cancelled (drain won), or this
        // is not the round we scheduled.
        let Some(precopy) = &mut replica.precopy else {
            return;
        };
        if precopy.round_ends_at != now || replica.retired || replica.draining {
            return;
        }
        let config = &cost_model.precopy;
        let dirty_bytes = precopy.dirty.dirty_bytes();
        let threshold = config.stop_copy_bytes(precopy.dirty.capacity_bytes());
        let converged = dirty_bytes <= threshold;
        let stalled = precopy.rounds >= config.max_rounds
            || dirty_bytes as f64 > config.shrink_ratio * precopy.last_round_bytes as f64;
        if converged || stalled {
            // Stop-and-copy: freeze dispatch; whatever the in-flight batch
            // still dirties joins the residual moved in the dark window.
            precopy.converged = converged;
            if replica.in_service.is_some() {
                replica.pending_migration = Some((precopy.to, now));
            } else {
                let to = precopy.to;
                Self::execute_migration(
                    cluster,
                    replica,
                    dispatch_index,
                    now,
                    to,
                    0,
                    cost_model,
                    records,
                    events,
                    links,
                    index,
                    state,
                    shard,
                    sink,
                );
            }
            return;
        }
        // Another round: stream the pages dirtied during the one that just
        // ended; serving continues and re-dirties into the next round.
        let round = precopy.dirty.take_bytes();
        let frequency = cluster
            .node(replica.handle.node)
            .expect("source node exists") // simlint::allow(P1, reason = "a migrating replica's source node holds its deployment")
            .npu_config()
            .frequency;
        let cycles = chaos_transfer(
            state,
            replica.handle.node,
            precopy.to,
            now,
            cost_model.transfer_cycles(round, frequency).get(),
        );
        let ends_at = links.reserve(replica.handle.node, precopy.to, now, cycles);
        precopy.rounds += 1;
        precopy.last_round_bytes = round;
        precopy.round_bytes.push(round);
        precopy.precopy_cycles += ends_at - now;
        precopy.round_ends_at = ends_at;
        events.push(ends_at, EV_COPY_ROUND, index);
        sink.on_copy_round(
            now,
            ends_at,
            replica.handle.node,
            precopy.to,
            index,
            precopy.rounds - 1,
            round,
        );
    }

    /// Releases a fully drained replica's vNPU back to the cluster.
    fn retire_if_drained(
        cluster: &mut NpuCluster,
        replica: &mut ReplicaSim,
        dispatch_index: &mut ReplicaIndex,
        now: u64,
        state: &mut ServeState,
    ) {
        if !replica.draining
            || replica.retired
            || replica.in_service.is_some()
            || !replica.queue.is_empty()
            || replica.pending_migration.is_some()
        {
            return;
        }
        let released = cluster.undeploy(replica.handle).is_ok();
        debug_assert!(released, "a live drained replica must release cleanly");
        replica.retired = true;
        replica.batch_timeout_at = None;
        dispatch_index.retire(replica.handle);
        state.control.released += 1;
        state.live_replicas -= 1;
        state.replica_cycles += now.saturating_sub(replica.activated_at);
    }

    /// Starts the next service pass if the replica is idle and available:
    /// drops expired requests (when enabled), then collects up to
    /// `max_batch` queued requests into one batch — unless a batch-formation
    /// window is configured and still open, in which case the queue is held
    /// (bounded by `max_batch_wait`) to let the batch fill.
    fn start_next<S: ObsSink + ?Sized>(
        replica: &mut ReplicaSim,
        now: u64,
        events: &mut EventQueue,
        index: usize,
        state: &mut ServeState,
        sink: &mut S,
    ) {
        if replica.retired
            || replica.fenced
            || replica.in_service.is_some()
            || now < replica.available_at
        {
            return;
        }
        // Defense in depth for chaos runs: no batch ever starts on a board
        // that is down right now (the fenced flag and the hang's
        // `available_at` push normally make this unreachable).
        if let Some(chaos) = &state.chaos {
            if chaos.board_down(replica.handle.node, now) {
                return;
            }
        }
        if state.drop_expired {
            let deadline = &mut state.deadline;
            let sampling = state.sampling;
            let windows = &mut state.windows;
            let slo = &mut state.slo;
            let node = replica.handle.node;
            replica.queue.retain(|queued| match queued.deadline {
                Some(d) if d < now => {
                    deadline.record_dropped();
                    if sampling {
                        windows
                            .entry(queued.model)
                            .or_default()
                            .metrics
                            .record_dropped();
                    }
                    // An expiry is an unmet request: it burns the error
                    // budget of every covering SLO.
                    if let Some(engine) = slo.as_mut() {
                        engine.observe_expired(now, queued.model, queued.priority);
                    }
                    sink.on_expire(
                        now,
                        queued.sequence,
                        queued.model,
                        queued.arrived,
                        node,
                        index,
                    );
                    false
                }
                _ => true,
            });
        }
        if replica.queue.is_empty() {
            return;
        }
        // Hold a sub-max_batch queue while the batch-formation window is
        // open; draining replicas flush immediately (their batch can never
        // fill again).
        if replica.queue.len() < state.max_batch && !replica.draining {
            if let Some(wait) = state.max_batch_wait {
                let oldest = replica.queue.oldest_arrival().expect("non-empty queue"); // simlint::allow(P1, reason = "a migrating replica's source node holds its deployment")
                let due = oldest.saturating_add(wait);
                if now < due {
                    if replica.batch_timeout_at.is_none() {
                        replica.batch_timeout_at = Some(due);
                        events.push(due, EV_BATCH_TIMEOUT, index);
                    }
                    return;
                }
            }
        }
        replica.batch_timeout_at = None;
        let size = replica.queue.len().min(state.max_batch);
        let mut batch = state.batch_pool.pop().unwrap_or_default();
        replica.queue.drain_into(size, &mut batch);
        let base = replica.batch_cycles[size - 1];
        let factor = match &mut state.rng {
            Some(rng) => lognormal_factor(rng, replica.cv),
            None => 1.0,
        };
        let mut service = ((base as f64 * factor) as u64).max(1);
        // A straggler window inflates every batch *started* on the board.
        if let Some(chaos) = &state.chaos {
            let straggle = chaos.service_factor(replica.handle.node, now);
            if straggle > 1.0 {
                service = ((service as f64 * straggle) as u64).max(service);
            }
        }
        let finish = now + service;
        // Batch-member iteration is extra work the disabled path must never
        // pay; an active sink sees each member's queue span, then the batch.
        if sink.active() {
            for request in &batch {
                sink.on_service_request(
                    now,
                    request.sequence,
                    request.model,
                    request.arrived,
                    replica.handle.node,
                    index,
                );
            }
            sink.on_service_batch(now, finish, replica.model, replica.handle.node, index, size);
        }
        replica.in_service = Some((batch, now, finish));
        state.batches += 1;
        events.push(finish, EV_COMPLETION, index);
    }

    /// Runs the stop-and-copy phases of a migration: snapshot + transfer +
    /// remap. The replica goes dark until `available_at` and then resumes on
    /// the destination node with its queue intact. For a cold migration the
    /// transfer moves the full resident state; for a pre-copy switch-over it
    /// moves only the residual dirty delta plus the architectural context,
    /// queueing behind any transfer already on the link.
    ///
    /// Under the sharded runner, a destination owned by another partition is
    /// intercepted before the local `migrate` call: the replica is exported
    /// into a [`MigrationEnvelope`] for barrier delivery instead.
    #[allow(clippy::too_many_arguments)]
    fn execute_migration<S: ObsSink + ?Sized>(
        cluster: &mut NpuCluster,
        replica: &mut ReplicaSim,
        dispatch_index: &mut ReplicaIndex,
        now: u64,
        to: NodeId,
        drain_cycles: u64,
        cost_model: &MigrationCostModel,
        records: &mut Vec<MigrationRecord>,
        events: &mut EventQueue,
        links: &mut LinkSchedule,
        index: usize,
        state: &mut ServeState,
        shard: &mut Option<ShardContext>,
        sink: &mut S,
    ) {
        if let Some(context) = shard.as_mut() {
            if cluster.node(to).is_none() && context.owners.contains_key(&to) {
                Self::export_replica(
                    cluster,
                    replica,
                    dispatch_index,
                    now,
                    to,
                    drain_cycles,
                    cost_model,
                    links,
                    index,
                    state,
                    context,
                );
                return;
            }
        }
        let source_frequency = cluster
            .node(replica.handle.node)
            .expect("source node exists") // simlint::allow(P1, reason = "a migrating replica's source node holds its deployment")
            .npu_config()
            .frequency;
        match cluster.migrate(replica.handle, to, cost_model, Some(drain_cycles)) {
            Ok(outcome) => {
                let mut record = outcome.record;
                if let Some(precopy) = replica.precopy.take() {
                    // Live switch-over: the dark window moves the residual
                    // dirty pages plus the register/queue context — not the
                    // full state the cold-priced record assumed — and waits
                    // its turn on the contended link.
                    let residual = precopy.dirty.dirty_bytes() + cost_model.context_bytes;
                    let cycles = chaos_transfer(
                        state,
                        record.from,
                        record.to,
                        now,
                        cost_model.transfer_cycles(residual, source_frequency).get(),
                    );
                    record.mode = MigrationMode::PreCopy;
                    record.transfer_cycles =
                        links.reserve(record.from, record.to, now, cycles) - now;
                    record.precopy_rounds = precopy.rounds;
                    record.precopy_bytes = precopy.round_bytes.iter().sum();
                    record.round_bytes = precopy.round_bytes;
                    record.precopy_cycles = precopy.precopy_cycles;
                    record.converged = precopy.converged;
                } else {
                    // Cold transfers occupy the same board-to-board link as
                    // everything else: a transfer already in flight delays
                    // this one (on an idle link the window is unchanged).
                    let cycles =
                        chaos_transfer(state, record.from, record.to, now, record.transfer_cycles);
                    record.transfer_cycles =
                        links.reserve(record.from, record.to, now, cycles) - now;
                }
                let post_drain = record.transfer_cycles + record.remap_cycles;
                let old_handle = replica.handle;
                replica.handle = VnpuHandle {
                    node: record.to,
                    vnpu: record.dest_vnpu,
                };
                replica.available_at = now + post_drain;
                // A draining replica (scale-down raced with the migration)
                // already left the routable sets; only its handle re-keys.
                dispatch_index.relocate(
                    old_handle,
                    replica.handle,
                    index,
                    replica.model,
                    !replica.draining,
                );
                sink.on_stop_copy(now, replica.available_at, index, &record);
                records.push(record);
                events.push(replica.available_at, EV_RESUME, index);
            }
            Err(_) => {
                // The destination refused (capacity raced away); the replica
                // keeps serving from its source node, any pre-copy effort
                // abandoned.
                replica.precopy = None;
                state.control.migrations_rejected += 1;
                sink.on_migration_rejected(now, index);
                Self::start_next(replica, now, events, index, state, sink);
            }
        }
    }

    /// Packs `replicas[index]` into a cross-partition [`MigrationEnvelope`]:
    /// the transfer is priced source-side (chaos windows and link contention
    /// included), the queue drained in pop order, the vNPU released — and the
    /// envelope waits in `shard.exports` for barrier delivery to the owning
    /// partition.
    #[allow(clippy::too_many_arguments)]
    fn export_replica(
        cluster: &mut NpuCluster,
        replica: &mut ReplicaSim,
        dispatch_index: &mut ReplicaIndex,
        now: u64,
        to: NodeId,
        drain_cycles: u64,
        cost_model: &MigrationCostModel,
        links: &mut LinkSchedule,
        index: usize,
        state: &mut ServeState,
        shard: &mut ShardContext,
    ) {
        let handle = replica.handle;
        let Some(deployment) = cluster.deployment(handle).copied() else {
            // The deployment raced away (cannot happen for a live replica);
            // account it like any refused migration rather than panicking.
            state.control.migrations_rejected += 1;
            return;
        };
        let spec = DeploySpec {
            model: deployment.model,
            mes: deployment.config.num_mes_per_core,
            ves: deployment.config.num_ves_per_core,
            sram_bytes: Some(deployment.config.sram_size_per_core),
            hbm_bytes: Some(deployment.config.mem_size_per_core),
            priority: deployment.priority,
            mode: deployment.mode,
        };
        let state_bytes = cluster.resident_state_bytes(handle).unwrap_or(0);
        let frequency = cluster
            .node(handle.node)
            .expect("source node exists") // simlint::allow(P1, reason = "a migrating replica's source node holds its deployment")
            .npu_config()
            .frequency;
        // Cross-partition moves are always cold: the pre-copy loop needs
        // destination-side state the source partition cannot see.
        replica.precopy = None;
        let cycles = chaos_transfer(
            state,
            handle.node,
            to,
            now,
            cost_model.transfer_cycles(state_bytes, frequency).get(),
        );
        let transfer_ends = links.reserve(handle.node, to, now, cycles);
        let ready_at = transfer_ends + cost_model.remap_cycles;
        let record = MigrationRecord {
            source_vnpu: handle.vnpu,
            // Placeholder: the destination assigns the real id at import.
            dest_vnpu: handle.vnpu,
            from: handle.node,
            to,
            mode: MigrationMode::Cold,
            state_bytes,
            drain_cycles,
            transfer_cycles: transfer_ends - now,
            remap_cycles: cost_model.remap_cycles,
            precopy_rounds: 0,
            round_bytes: Vec::new(),
            precopy_bytes: 0,
            precopy_cycles: 0,
            converged: true,
        };
        let queued = replica.queue.len();
        let mut queue: Vec<QueuedRequest> = Vec::with_capacity(queued);
        replica.queue.drain_into(queued, &mut queue);
        dispatch_index.evict(index, replica.model, handle.node, handle, !replica.draining);
        replica.retired = true;
        replica.batch_timeout_at = None;
        replica.pending_migration = None;
        state.replica_cycles += now.saturating_sub(replica.activated_at);
        state.live_replicas -= 1;
        let undeployed = cluster.undeploy(handle);
        debug_assert!(
            undeployed.is_ok(),
            "an exporting replica's deployment must exist"
        );
        shard.exports.push(MigrationEnvelope {
            from_node: handle.node,
            to_node: to,
            spec,
            queue,
            ready_at,
            record,
            bounced: false,
        });
    }

    /// Drains the envelopes exported since the last barrier (empty on the
    /// sequential path).
    pub(crate) fn take_exports(&mut self) -> Vec<MigrationEnvelope> {
        match &mut self.shard {
            Some(shard) => std::mem::take(&mut shard.exports),
            None => Vec::new(),
        }
    }

    /// Imports a replica another partition exported, deploying it on the
    /// envelope's destination node of this partition's cluster. On capacity
    /// failure the envelope is handed back so the coordinator can bounce it
    /// to its source partition.
    ///
    /// The resume time is the source-priced `ready_at` clamped up to the
    /// barrier — conservative-safe, because no partition has simulated past
    /// the barrier yet. A first-time import finalizes and records the
    /// migration; a bounced one records nothing (the rejection was already
    /// counted, mirroring the sequential refused-migration path).
    pub(crate) fn import_replica<S: ObsSink + ?Sized>(
        &mut self,
        cluster: &mut NpuCluster,
        envelope: MigrationEnvelope,
        barrier: u64,
        sink: &mut S,
    ) -> Result<(), Box<MigrationEnvelope>> {
        let handle = match cluster.deploy_pinned(envelope.spec, envelope.to_node) {
            Ok(handle) => handle,
            Err(_) => return Err(Box::new(envelope)),
        };
        let deployment = *cluster.deployment(handle).expect("just deployed"); // simlint::allow(P1, reason = "deployment recorded by the deploy_pinned call above")
        let mut sim = self.cache.replica_sim(cluster, &deployment, barrier);
        let resume_at = envelope.ready_at.max(barrier);
        sim.available_at = resume_at;
        for request in envelope.queue {
            sim.enqueue(request);
        }
        let slot = self.replicas.len();
        self.dispatch_index
            .insert(slot, sim.model, handle.node, handle);
        self.replicas.push(sim);
        self.state.live_replicas += 1;
        self.state.peak_replicas = self.state.peak_replicas.max(self.state.live_replicas);
        self.events.push(resume_at, EV_RESUME, slot);
        if !envelope.bounced {
            let mut record = envelope.record;
            record.dest_vnpu = handle.vnpu;
            record.to = handle.node;
            sink.on_stop_copy(barrier, resume_at, slot, &record);
            self.migration_records.push(record);
        }
        Ok(())
    }

    /// Drops a migration whose import failed at both the destination and
    /// (bounced) back at the source: the replica is gone and every queued
    /// request is lost — attributed through the chaos ledger or the sink,
    /// never silently. The rejection statistic was already counted at the
    /// partition that first refused the import.
    pub(crate) fn abandon_envelope<S: ObsSink + ?Sized>(
        &mut self,
        envelope: MigrationEnvelope,
        barrier: u64,
        sink: &mut S,
    ) {
        let from = envelope.from_node;
        for request in envelope.queue {
            if let Some(chaos) = &mut self.state.chaos {
                chaos.note_lost(request.model);
            }
            sink.on_lost(barrier, request.sequence, request.model, from);
        }
    }

    /// Counts a destination-side import rejection (the bounce back to the
    /// source still happens; only the statistic lands here, on the partition
    /// that refused).
    pub(crate) fn note_migration_rejected(&mut self) {
        self.state.control.migrations_rejected += 1;
    }

    /// Adopts a replica the coordinator just deployed on this partition's
    /// cluster (a control-plane scale-up placed fleet-wide at the barrier).
    pub(crate) fn adopt_replica<S: ObsSink + ?Sized>(
        &mut self,
        cluster: &NpuCluster,
        handle: VnpuHandle,
        now: u64,
        action: &ControlAction,
        sink: &mut S,
    ) {
        sink.on_control(now, action);
        let deployment = *cluster
            .deployment(handle)
            .expect("coordinator deployed this handle"); // simlint::allow(P1, reason = "the coordinator deployed this handle on this partition's cluster one barrier step earlier")
        let replica = self.cache.replica_sim(cluster, &deployment, now);
        let slot = self.replicas.len();
        self.dispatch_index
            .insert(slot, replica.model, handle.node, handle);
        self.replicas.push(replica);
        self.state.control.scale_ups += 1;
        self.state.live_replicas += 1;
        self.state.peak_replicas = self.state.peak_replicas.max(self.state.live_replicas);
    }

    /// Counts a fleet-wide scale-up the coordinator could not place anywhere.
    pub(crate) fn note_scale_up_rejected<S: ObsSink + ?Sized>(
        &mut self,
        now: u64,
        action: &ControlAction,
        sink: &mut S,
    ) {
        sink.on_control(now, action);
        self.state.control.scale_up_rejected += 1;
    }

    /// Applies a scale-down or migration action to the owning partition at a
    /// barrier (scale-ups are placed fleet-wide by the coordinator instead).
    pub(crate) fn apply_barrier_action<S: ObsSink + ?Sized>(
        &mut self,
        cluster: &mut NpuCluster,
        action: ControlAction,
        now: u64,
        sink: &mut S,
    ) {
        Self::apply_action(
            cluster,
            &mut self.replicas,
            &mut self.dispatch_index,
            &mut self.cache,
            action,
            now,
            &self.options.cost_model,
            &mut self.migration_records,
            &mut self.events,
            &mut self.links,
            &mut self.state,
            &mut self.shard,
            sink,
        );
    }

    /// Runs the telemetry-tick side effects for one partition at a barrier:
    /// failure detection and failover, frame sampling, and the fleet-counter
    /// scan for an active sink. The coordinator merges the per-partition
    /// frames and invokes the control plane fleet-wide, and owns
    /// `ControlStats::samples` (one per barrier tick) — it is never bumped
    /// here.
    pub(crate) fn barrier_tick<S: ObsSink + ?Sized>(
        &mut self,
        cluster: &mut NpuCluster,
        now: u64,
        sink: &mut S,
    ) {
        Self::chaos_tick(
            cluster,
            &mut self.replicas,
            &mut self.dispatch_index,
            &mut self.cache,
            &mut self.router,
            &mut self.views,
            now,
            &self.options.cost_model,
            self.options.failover_edf,
            &mut self.events,
            &mut self.links,
            &mut self.state,
            sink,
        );
        Self::sample_into(
            &mut self.frame,
            &mut self.stale_models,
            &mut self.replicas,
            now,
            &mut self.state,
        );
        if sink.active() {
            let mut counters = FleetCounters::default();
            for replica in self.replicas.iter().filter(|r| r.live()) {
                counters.queued += replica.queue.len() as u64;
                counters.in_flight += replica.in_flight() as u64;
                counters.live_replicas += 1;
                if replica.precopy.is_some() || replica.pending_migration.is_some() {
                    counters.migrations_in_flight += 1;
                }
                counters.resident_bytes +=
                    cluster.resident_state_bytes(replica.handle).unwrap_or(0);
            }
            sink.on_tick(now, &self.frame, &counters);
        }
    }

    /// The frame produced by the last [`barrier_tick`](Self::barrier_tick).
    pub(crate) fn frame(&self) -> &TelemetryFrame {
        &self.frame
    }

    /// Bumps the merged sample counter; called by the coordinator once per
    /// barrier tick on the lowest-indexed partition so the merged report
    /// counts ticks, not ticks × partitions.
    pub(crate) fn count_sample(&mut self) {
        self.state.control.samples += 1;
    }

    /// Whether this partition can still make progress: pending arrivals or
    /// events, live queued/in-service work, or an export awaiting barrier
    /// delivery.
    pub(crate) fn busy(&self) -> bool {
        Self::work_left(
            self.next_arrival,
            self.arrivals,
            &self.replicas,
            &self.events,
            self.recovery_armed,
        ) || self
            .shard
            .as_ref()
            .is_some_and(|shard| !shard.exports.is_empty())
    }

    /// Whether a cross-partition transfer is pending or imminent: an export
    /// awaiting delivery, or a busy replica draining toward a board another
    /// partition owns. The coordinator keeps barrier windows at the
    /// interconnect lookahead while this holds.
    pub(crate) fn pending_remote(&self) -> bool {
        let Some(shard) = &self.shard else {
            return false;
        };
        !shard.exports.is_empty()
            || self.replicas.iter().any(|replica| {
                replica.live()
                    && replica
                        .pending_migration
                        .is_some_and(|(to, _)| !shard.owns(to))
            })
    }

    /// Adds this partition's dispatchable replica counts to a shard plan
    /// being rebuilt at a barrier. Mirrors the sequential router's candidate
    /// set: live and not draining — fenced replicas stay routable until
    /// failover evicts them, exactly the sequential black-hole window.
    pub(crate) fn accumulate_weights(
        &self,
        weights: &mut BTreeMap<ModelId, Vec<u64>>,
        partitions: usize,
    ) {
        let Some(shard) = &self.shard else {
            return;
        };
        for replica in self.replicas.iter().filter(|r| r.live() && !r.draining) {
            weights
                .entry(replica.model)
                .or_insert_with(|| vec![0; partitions])[shard.index] += 1;
        }
    }

    /// Installs the plan rebuilt at a barrier.
    pub(crate) fn set_plan(&mut self, plan: ShardPlan) {
        if let Some(shard) = &mut self.shard {
            shard.plan = plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::DeploySpec;
    use crate::migration::{DirtyRateModel, PreCopyConfig};
    use crate::placement::PlacementPolicy;
    use workloads::RequestArrival;

    fn fleet_with_replicas(nodes: usize, replicas: usize) -> (NpuCluster, Vec<VnpuHandle>) {
        let mut fleet = NpuCluster::homogeneous(nodes, &NpuConfig::single_core());
        let handles = (0..replicas)
            .map(|_| {
                fleet
                    .deploy(
                        DeploySpec::replica(ModelId::Mnist, 2, 2),
                        PlacementPolicy::WorstFit,
                    )
                    .unwrap()
            })
            .collect();
        (fleet, handles)
    }

    fn burst_trace(count: usize, gap: u64) -> ClusterTrace {
        ClusterTrace::from_arrivals(
            (0..count)
                .map(|i| RequestArrival::new(Cycles(i as u64 * gap), ModelId::Mnist))
                .collect(),
        )
    }

    #[test]
    fn admitted_requests_all_complete() {
        let (mut fleet, _) = fleet_with_replicas(2, 2);
        let trace = burst_trace(40, 1_000);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.offered, 40);
        assert_eq!(report.stats.admitted, 40);
        assert_eq!(
            report.stats.completed, report.stats.admitted,
            "the router never drops admitted requests"
        );
        assert_eq!(report.latency.count, 40);
        assert!(report.makespan > Cycles::ZERO);
        assert!(report.throughput_rps(&NpuConfig::single_core()) > 0.0);
        assert_eq!(
            report.per_node_completed.values().sum::<usize>(),
            40,
            "every completion is attributed to a node"
        );
        // Unbatched run: one request per pass, no deadline-carrying traffic.
        assert_eq!(report.batches, 40);
        assert_eq!(report.mean_batch_size(), 1.0);
        assert_eq!(report.deadline, DeadlineStats::default());
        // Open-loop run: no control-plane activity, static provisioning.
        assert_eq!(report.control, ControlStats::default());
        assert_eq!(report.replica_cycles, 2 * report.makespan.get());
        assert!(report.replica_seconds(&NpuConfig::single_core()) > 0.0);
    }

    #[test]
    fn unserved_models_are_rejected_not_lost() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let trace =
            ClusterTrace::from_arrivals(vec![RequestArrival::new(Cycles(0), ModelId::Bert)]);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::RoundRobin))
            .run(&mut fleet, &trace);
        assert_eq!(report.stats.rejected_no_replica, 1);
        assert_eq!(report.stats.completed, 0);
    }

    #[test]
    fn admission_control_bounds_queues() {
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        // A tight burst against a single replica with a 2-deep queue.
        let trace = burst_trace(50, 1);
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_admission(AdmissionControl { max_queue_depth: 2 });
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert!(report.stats.rejected_overload > 0, "overload must shed");
        assert_eq!(report.stats.completed, report.stats.admitted);
    }

    #[test]
    fn batching_serves_a_backlog_in_fewer_longer_passes() {
        let trace = burst_trace(32, 1);
        let (mut unbatched_fleet, _) = fleet_with_replicas(1, 1);
        let unbatched = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut unbatched_fleet, &trace);
        let (mut batched_fleet, _) = fleet_with_replicas(1, 1);
        let batched = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(8),
        )
        .run(&mut batched_fleet, &trace);

        assert_eq!(unbatched.stats.completed, 32);
        assert_eq!(batched.stats.completed, 32);
        assert!(
            batched.batches < unbatched.batches,
            "batching must coalesce the backlog ({} vs {} passes)",
            batched.batches,
            unbatched.batches
        );
        assert!(batched.mean_batch_size() > 1.0);
        // MNIST batch service is strongly sublinear, so coalescing the
        // backlog finishes it sooner and cuts the tail.
        assert!(
            batched.makespan < unbatched.makespan,
            "sublinear batches drain the backlog faster ({} vs {})",
            batched.makespan,
            unbatched.makespan
        );
        assert!(batched.latency.p99 <= unbatched.latency.p99);
    }

    #[test]
    fn batch_wait_forms_batches_and_bounds_queueing_delay() {
        // Low load: four sparse requests against an idle batch-8 replica.
        // Without a formation window each is served alone the moment it
        // arrives; with one, the replica holds the queue — but never longer
        // than `max_batch_wait`, so queueing delay stays bounded even though
        // the batch never fills.
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let gap = service / 4;
        let wait = service;
        let trace = burst_trace(4, gap);

        let (mut eager_fleet, _) = fleet_with_replicas(1, 1);
        let eager = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(8),
        )
        .run(&mut eager_fleet, &trace);

        let (mut held_fleet, _) = fleet_with_replicas(1, 1);
        let held = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded)
                .with_batching(8)
                .with_batch_wait(wait),
        )
        .run(&mut held_fleet, &trace);

        assert_eq!(held.stats.completed, 4);
        assert!(
            held.batches < eager.batches,
            "the formation window must coalesce sparse arrivals ({} vs {} passes)",
            held.batches,
            eager.batches
        );
        // The bound: no request waits for the batch longer than the window,
        // so worst-case latency is the hold plus one (amortized) batch pass.
        let batch_service =
            estimated_batch_service_cycles(ModelId::Mnist, 4, 2, 2, &NpuConfig::single_core());
        assert!(
            held.latency.max <= wait + batch_service,
            "queueing delay must be bounded by the formation window ({} > {} + {})",
            held.latency.max,
            wait,
            batch_service
        );
    }

    #[test]
    fn deadline_misses_are_counted_and_drops_supported() {
        // One replica, a burst far exceeding what the deadline allows.
        let slack = 10_000u64;
        let trace = ClusterTrace::from_arrivals(
            (0..20)
                .map(|i| {
                    RequestArrival::new(Cycles(i), ModelId::Mnist).with_deadline(Cycles(i + slack))
                })
                .collect(),
        );
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let lenient = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &trace);
        assert_eq!(lenient.deadline.with_deadline, 20);
        assert!(
            lenient.deadline.missed > 0,
            "the backlog must blow deadlines"
        );
        assert_eq!(lenient.deadline.dropped, 0);
        assert_eq!(lenient.deadline.met + lenient.deadline.missed, 20);
        assert!(lenient.deadline.miss_rate() > 0.0);

        let (mut dropping_fleet, _) = fleet_with_replicas(1, 1);
        let dropping = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_drop_expired(),
        )
        .run(&mut dropping_fleet, &trace);
        assert!(
            dropping.deadline.dropped > 0,
            "expired requests are dropped"
        );
        assert_eq!(
            dropping.stats.completed + dropping.deadline.dropped,
            dropping.stats.admitted,
            "drops account for every admitted-but-unserved request"
        );
        assert_eq!(dropping.latency.count, dropping.stats.completed);
    }

    #[test]
    fn edf_serves_urgent_requests_first() {
        // A burst lands while the replica is busy; under EDF the
        // tight-deadline interactive request jumps the queue.
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let mut urgent = RequestArrival::new(Cycles(10), ModelId::Mnist)
            .with_deadline(Cycles(10 + service * 3))
            .with_priority(workloads::PriorityClass::Interactive);
        urgent.sequence = 3;
        let laggards: Vec<RequestArrival> = (0..3)
            .map(|i| {
                RequestArrival::new(Cycles(i), ModelId::Mnist)
                    .with_priority(workloads::PriorityClass::Batch)
            })
            .collect();
        let mut arrivals = laggards;
        arrivals.push(urgent);
        let trace = ClusterTrace::from_arrivals(arrivals);

        let run = |policy| {
            let (mut fleet, _) = fleet_with_replicas(1, 1);
            ClusterServingSim::new(ServingOptions::new(policy)).run(&mut fleet, &trace)
        };
        let fifo = run(DispatchPolicy::LeastLoaded);
        let edf = run(DispatchPolicy::EarliestDeadline);
        assert_eq!(
            fifo.deadline.missed, 1,
            "FIFO serves the urgent request last"
        );
        assert_eq!(
            edf.deadline.missed, 0,
            "EDF serves the urgent request first"
        );
    }

    #[test]
    fn stochastic_runs_are_seed_reproducible() {
        let trace = burst_trace(30, 2_000);
        let run = |seed: u64| {
            let (mut fleet, _) = fleet_with_replicas(2, 2);
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
                .with_stochastic(StochasticService::seeded(seed).with_cv(0.3));
            ClusterServingSim::new(options).run(&mut fleet, &trace)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the identical report");
        let c = run(8);
        assert_ne!(
            a.latency, c.latency,
            "a different seed must draw different service times"
        );
    }

    #[test]
    fn with_cv_rejects_degenerate_dispersions() {
        // Regression: a negative or non-finite coefficient of variation used
        // to flow straight into the lognormal sampler.
        assert_eq!(
            StochasticService::seeded(1).with_cv(-0.5).cv_override,
            Some(0.0)
        );
        assert_eq!(
            StochasticService::seeded(1).with_cv(f64::NAN).cv_override,
            Some(0.0)
        );
        assert_eq!(
            StochasticService::seeded(1)
                .with_cv(f64::INFINITY)
                .cv_override,
            Some(0.0)
        );
        assert_eq!(
            StochasticService::seeded(1).with_cv(0.3).cv_override,
            Some(0.3)
        );
        // A clamped dispersion behaves exactly like deterministic service.
        let trace = burst_trace(10, 2_000);
        let run = |options: ServingOptions| {
            let (mut fleet, _) = fleet_with_replicas(1, 1);
            ClusterServingSim::new(options).run(&mut fleet, &trace)
        };
        let deterministic = run(ServingOptions::new(DispatchPolicy::LeastLoaded));
        let clamped = run(ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_stochastic(StochasticService::seeded(3).with_cv(f64::NAN)));
        assert_eq!(deterministic.latency, clamped.latency);
    }

    #[test]
    fn empty_batch_estimate_never_underflows() {
        // Regression: `batch_requests = 0` must cost one pass, not zero (or
        // wrap), so capacity planning with an empty backlog stays sane.
        let npu = NpuConfig::single_core();
        let empty = estimated_batch_service_cycles(ModelId::Mnist, 0, 2, 2, &npu);
        let single = estimated_batch_service_cycles(ModelId::Mnist, 1, 2, 2, &npu);
        assert_eq!(empty, single, "an empty batch is priced as a batch of one");
        assert!(empty >= 1);
        // Degenerate engine counts clamp instead of dividing by zero.
        assert!(estimated_batch_service_cycles(ModelId::Mnist, 2, 0, 0, &npu) >= 1);
    }

    #[test]
    fn migration_downtime_is_charged_to_latency() {
        let trace = burst_trace(10, 2_000);
        let (mut undisturbed, _) = fleet_with_replicas(2, 1);
        let baseline = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut undisturbed, &trace);

        let (mut fleet, handles) = fleet_with_replicas(2, 1);
        let spare = NodeId(if handles[0].node.0 == 0 { 1 } else { 0 });
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_migration(
            Cycles(1),
            handles[0],
            spare,
        );
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 1, "the migration executed");
        assert!(report.migrations[0].downtime() > Cycles::ZERO);
        assert_eq!(report.stats.completed, 10, "no request was lost");
        assert!(
            report.latency.p99 > baseline.latency.p99,
            "downtime must surface in tenant latency ({} vs {})",
            report.latency.p99,
            baseline.latency.p99
        );
        // The replica genuinely moved.
        assert_eq!(fleet.node(spare).unwrap().manager().vnpu_count(), 1);
        assert_eq!(
            fleet.node(handles[0].node).unwrap().manager().vnpu_count(),
            0
        );
    }

    /// The canonical live-migration scenario: one loaded replica, a spare
    /// node, a stream long enough that arrivals span the whole copy window.
    fn precopy_scenario(mode_live: bool, cost_model: MigrationCostModel) -> ServingReport {
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let (mut fleet, handles) = fleet_with_replicas(2, 1);
        let spare = NodeId(if handles[0].node.0 == 0 { 1 } else { 0 });
        let trace = burst_trace(400, service);
        let mut options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_admission(AdmissionControl {
                max_queue_depth: 1_000,
            })
            .with_cost_model(cost_model);
        options = if mode_live {
            options.with_live_migration(Cycles(1), handles[0], spare)
        } else {
            options.with_migration(Cycles(1), handles[0], spare)
        };
        ClusterServingSim::new(options).run(&mut fleet, &trace)
    }

    #[test]
    fn precopy_cuts_downtime_an_order_of_magnitude_below_cold() {
        let cold = precopy_scenario(false, MigrationCostModel::default());
        let live = precopy_scenario(true, MigrationCostModel::default());
        assert_eq!(cold.migrations.len(), 1);
        assert_eq!(live.migrations.len(), 1);
        let cold_record = &cold.migrations[0];
        let live_record = &live.migrations[0];
        assert_eq!(cold_record.mode, MigrationMode::Cold);
        assert_eq!(live_record.mode, MigrationMode::PreCopy);
        assert!(live_record.converged, "a read-mostly tenant must converge");
        assert!(
            live_record.precopy_rounds >= 1,
            "at least the full-state round ran"
        );
        assert!(live_record.precopy_bytes >= live_record.state_bytes);
        assert!(
            live_record.downtime().get() * 10 <= cold_record.downtime().get(),
            "pre-copy downtime must be >=10x below cold ({} vs {})",
            live_record.downtime(),
            cold_record.downtime()
        );
        // Matched throughput: both runs complete the whole admitted stream.
        assert_eq!(cold.stats.completed, 400);
        assert_eq!(live.stats.completed, 400);
        // The shorter dark window shows up in the tail.
        assert!(live.latency.p99 <= cold.latency.p99);
        // Per-mode aggregates follow the records.
        assert_eq!(live.migration_stats.precopy, 1);
        assert_eq!(live.migration_stats.precopy_fallbacks, 0);
        assert_eq!(
            live.migration_stats.rounds,
            live_record.precopy_rounds as u64
        );
        assert_eq!(
            live.migration_stats.downtime_total,
            live_record.downtime().get()
        );
        assert_eq!(cold.migration_stats.cold, 1);
        assert_eq!(cold.migration_stats.precopy, 0);
    }

    #[test]
    fn precopy_source_keeps_serving_through_the_copy_rounds() {
        let live = precopy_scenario(true, MigrationCostModel::default());
        let record = &live.migrations[0];
        assert!(
            record.precopy_cycles > 0,
            "the link spent cycles copying while serving"
        );
        assert_eq!(record.round_bytes.len(), record.precopy_rounds as usize);
        assert_eq!(record.precopy_bytes, record.round_bytes.iter().sum::<u64>());
        // The source kept completing requests before the switch-over: with a
        // cold migration at t=1 every request would be served on the spare
        // side of a full dark window, so the source node finishing most of
        // the stream is the live-serving signal.
        let source_completed = live
            .per_node_completed
            .get(&record.from)
            .copied()
            .unwrap_or(0);
        assert!(
            source_completed > 0,
            "the source must serve during pre-copy"
        );
    }

    #[test]
    fn precopy_falls_back_to_cold_when_dirty_rate_outruns_the_link() {
        // A pathological tenant: every request rewrites ~its whole HBM
        // traffic, over a link an order of magnitude slower. The dirty set
        // cannot shrink, so the loop stops and the stop-and-copy moves a
        // cold-sized residual.
        let cost = MigrationCostModel::default()
            .with_interconnect(npu_sim::InterconnectConfig::tpu_v4_ici().with_bandwidth(0.5e9))
            .with_precopy(
                PreCopyConfig::default().with_dirty_rate(
                    DirtyRateModel::default()
                        .with_write_fraction(1.0)
                        .with_scale(400.0),
                ),
            );
        let live = precopy_scenario(true, cost.clone());
        let record = &live.migrations[0];
        assert_eq!(record.mode, MigrationMode::PreCopy);
        assert!(
            !record.converged,
            "the dirty set must outrun the link ({} rounds)",
            record.precopy_rounds
        );
        assert_eq!(live.migration_stats.precopy_fallbacks, 1);
        // Graceful: nothing is lost, the residual is cold-sized rather than
        // unbounded.
        assert_eq!(live.stats.completed, live.stats.admitted);
        let cold = precopy_scenario(false, cost);
        assert!(
            record.downtime().get() <= cold.migrations[0].downtime().get() * 2,
            "fallback downtime stays in the cold ballpark ({} vs {})",
            record.downtime(),
            cold.migrations[0].downtime()
        );
    }

    #[test]
    fn precopy_runs_are_seed_reproducible() {
        let first = precopy_scenario(true, MigrationCostModel::default());
        let second = precopy_scenario(true, MigrationCostModel::default());
        assert_eq!(first, second, "same inputs, identical report");
    }

    #[test]
    fn concurrent_precopies_contend_for_the_link() {
        // Two replicas on the same board, both live-migrating to the same
        // spare at t = 0: their round-0 transfers share one link, so the
        // second transfer queues behind the first and its copy window
        // (wait + stream) is strictly longer.
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let mut fleet = NpuCluster::homogeneous(2, &NpuConfig::single_core());
        let spec = DeploySpec::replica(ModelId::Mnist, 1, 1).with_memory(16 << 20, 1 << 30);
        let a = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        assert_eq!(a.node, b.node, "best-fit packs the same board");
        let spare = NodeId(if a.node.0 == 0 { 1 } else { 0 });
        let trace = burst_trace(60, service);
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_live_migration(Cycles(0), a, spare)
            .with_live_migration(Cycles(0), b, spare);
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 2);
        let first = &report.migrations[0];
        let second = &report.migrations[1];
        assert!(
            second.precopy_cycles > first.precopy_cycles,
            "the second transfer must wait for the shared link ({} vs {})",
            second.precopy_cycles,
            first.precopy_cycles
        );
    }

    #[test]
    fn concurrent_cold_migrations_contend_for_the_link() {
        // Same shape as the pre-copy contention test, but cold: the second
        // dark transfer queues behind the first on the shared link, so its
        // transfer window (wait + stream) is strictly longer.
        let mut fleet = NpuCluster::homogeneous(2, &NpuConfig::single_core());
        let spec = DeploySpec::replica(ModelId::Mnist, 1, 1).with_memory(16 << 20, 1 << 30);
        let a = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        assert_eq!(a.node, b.node);
        let spare = NodeId(if a.node.0 == 0 { 1 } else { 0 });
        let trace = burst_trace(4, 1_000);
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_migration(Cycles(0), a, spare)
            .with_migration(Cycles(0), b, spare);
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 2);
        assert!(
            report.migrations[1].transfer_cycles > report.migrations[0].transfer_cycles,
            "the second cold transfer must wait for the shared link ({} vs {})",
            report.migrations[1].transfer_cycles,
            report.migrations[0].transfer_cycles
        );
    }

    #[test]
    fn makespan_ignores_trailing_rejected_arrivals() {
        // Regression: a trailing rejected arrival used to inflate the
        // makespan (and deflate throughput) with zero work done.
        let (mut fleet, _) = fleet_with_replicas(1, 1);
        let baseline_trace = burst_trace(5, 1_000);
        let baseline = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut fleet, &baseline_trace);

        let far_future = baseline.makespan.get() * 1_000;
        let mut arrivals: Vec<RequestArrival> = (0..5)
            .map(|i| RequestArrival::new(Cycles(i * 1_000), ModelId::Mnist))
            .collect();
        // No replica serves BERT: the trailing arrival is rejected.
        arrivals.push(RequestArrival::new(Cycles(far_future), ModelId::Bert));
        let (mut rejected_fleet, _) = fleet_with_replicas(1, 1);
        let report = ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
            .run(&mut rejected_fleet, &ClusterTrace::from_arrivals(arrivals));
        assert_eq!(report.stats.rejected_no_replica, 1);
        assert_eq!(
            report.makespan, baseline.makespan,
            "a rejected arrival must not move the makespan"
        );
        assert_eq!(
            report.throughput_rps(&NpuConfig::single_core()),
            baseline.throughput_rps(&NpuConfig::single_core())
        );
    }

    #[test]
    fn round_robin_routes_around_a_migrating_replica() {
        // Regression: RR used to keep dispatching to the dark replica and
        // charge the whole migration downtime to the queued requests. Two
        // replicas on different nodes; replica 0 migrates at t = 0 to a third
        // node while the whole burst arrives during the dark window.
        let mut fleet = NpuCluster::homogeneous(3, &NpuConfig::single_core());
        let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
        let a = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        let spare = NodeId(
            (0..3)
                .find(|id| *id != a.node.0 && *id != b.node.0)
                .unwrap(),
        );
        let trace = burst_trace(20, 500);
        let options =
            ServingOptions::new(DispatchPolicy::RoundRobin).with_migration(Cycles(0), a, spare);
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.migrations.len(), 1);
        assert_eq!(report.stats.completed, 20);
        assert_eq!(
            report.per_node_completed.get(&b.node),
            Some(&20),
            "every request of the dark window is served by the live replica"
        );
    }

    /// A scripted controller for the lifecycle tests below: at given ticks it
    /// replays pre-programmed actions.
    struct Script {
        at: Vec<(usize, Vec<ControlAction>)>,
        tick: usize,
    }

    impl ControlPlane for Script {
        fn control(
            &mut self,
            _frame: &TelemetryFrame,
            _cluster: &NpuCluster,
        ) -> Vec<ControlAction> {
            self.tick += 1;
            self.at
                .iter()
                .find(|(tick, _)| *tick == self.tick)
                .map(|(_, actions)| actions.clone())
                .unwrap_or_default()
        }
    }

    #[test]
    fn scale_up_adds_a_serving_replica_mid_run() {
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let (mut fleet, _) = fleet_with_replicas(2, 1);
        // Saturating load on one replica; a second replica is added at the
        // first tick and absorbs part of the stream.
        let trace = burst_trace(40, service / 2);
        let mut script = Script {
            at: vec![(
                1,
                vec![ControlAction::ScaleUp {
                    spec: DeploySpec::replica(ModelId::Mnist, 2, 2),
                    placement: PlacementPolicy::WorstFit,
                }],
            )],
            tick: 0,
        };
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_telemetry(service * 2);
        let report =
            ClusterServingSim::new(options).run_with_controller(&mut fleet, &trace, &mut script);
        assert_eq!(report.control.scale_ups, 1);
        assert_eq!(report.stats.completed, 40, "no request was lost");
        assert_eq!(
            report.per_node_completed.len(),
            2,
            "the scaled-up replica served traffic"
        );
        assert_eq!(fleet.total_vnpus(), 2, "the deployment genuinely happened");
        assert!(report.control.samples > 0);
    }

    #[test]
    fn scale_down_drains_then_releases_without_losing_requests() {
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let (mut fleet, handles) = fleet_with_replicas(2, 2);
        let trace = burst_trace(30, service / 2);
        let mut script = Script {
            at: vec![(1, vec![ControlAction::ScaleDown { handle: handles[1] }])],
            tick: 0,
        };
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_telemetry(service * 2);
        let report =
            ClusterServingSim::new(options).run_with_controller(&mut fleet, &trace, &mut script);
        assert_eq!(report.control.scale_downs, 1);
        assert_eq!(report.control.released, 1, "the drained replica released");
        assert_eq!(
            report.stats.completed, report.stats.admitted,
            "draining must not lose admitted requests"
        );
        assert_eq!(fleet.total_vnpus(), 1, "the vNPU was genuinely released");
        // Releasing capacity mid-run must shrink provisioned replica-time
        // below two full-makespan replicas.
        assert!(report.replica_cycles < 2 * report.makespan.get());
    }

    #[test]
    fn controller_migration_follows_the_cold_path() {
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let (mut fleet, handles) = fleet_with_replicas(2, 1);
        let spare = NodeId(if handles[0].node.0 == 0 { 1 } else { 0 });
        let trace = burst_trace(20, service);
        let mut script = Script {
            at: vec![(
                1,
                vec![ControlAction::Migrate {
                    handle: handles[0],
                    to: spare,
                    mode: MigrationMode::Cold,
                }],
            )],
            tick: 0,
        };
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_telemetry(service * 2);
        let report =
            ClusterServingSim::new(options).run_with_controller(&mut fleet, &trace, &mut script);
        assert_eq!(report.control.migrations_requested, 1);
        assert_eq!(report.migrations.len(), 1, "the migration executed");
        assert_eq!(report.stats.completed, 20, "no request was lost");
        assert_eq!(fleet.node(spare).unwrap().manager().vnpu_count(), 1);
    }

    #[test]
    fn telemetry_frames_report_backlog_and_windows() {
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());

        /// Captures every frame for inspection.
        struct Probe {
            frames: Vec<TelemetryFrame>,
        }
        impl ControlPlane for Probe {
            fn control(
                &mut self,
                frame: &TelemetryFrame,
                _cluster: &NpuCluster,
            ) -> Vec<ControlAction> {
                self.frames.push(frame.clone());
                Vec::new()
            }
        }

        let (mut fleet, _) = fleet_with_replicas(1, 1);
        // Overload: the queue builds, so mid-run frames see a backlog.
        let trace = burst_trace(20, service / 4);
        let mut probe = Probe { frames: Vec::new() };
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_telemetry(service);
        let report =
            ClusterServingSim::new(options).run_with_controller(&mut fleet, &trace, &mut probe);
        assert_eq!(report.control.samples, probe.frames.len());
        assert!(probe.frames.len() > 1);
        let mid = &probe.frames[probe.frames.len() / 2];
        assert_eq!(mid.replicas.len(), 1);
        let sample = mid.model(ModelId::Mnist).expect("model is served");
        assert_eq!(sample.replicas, 1);
        assert!(
            sample.outstanding() > 0,
            "overload must show up as backlog in the frame"
        );
        assert!(
            mid.replicas[0].utilization > 0.9,
            "a saturated replica reports a busy window ({})",
            mid.replicas[0].utilization
        );
        // Window completions across all frames cover most of the run (the
        // final partial window is not flushed).
        let windowed: usize = probe
            .frames
            .iter()
            .filter_map(|f| f.model(ModelId::Mnist))
            .map(|m| m.latency.count)
            .sum();
        assert!(windowed >= report.stats.completed - 1);
    }

    #[test]
    fn board_crash_without_recovery_loses_requests() {
        // Round-robin keeps steering to the fenced replica (nothing detects
        // the crash), so everything dispatched there after the fault maroons.
        let (mut fleet, _) = fleet_with_replicas(2, 2);
        let trace = burst_trace(60, 500);
        let faults =
            FaultSchedule::new().with_fault(5_000, FaultKind::BoardCrash { node: NodeId(0) });
        let report = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::RoundRobin).with_faults(faults),
        )
        .run(&mut fleet, &trace);
        assert_eq!(report.availability.crashes, 1);
        assert!(
            report.availability.lost > 0,
            "a dead board with no failover must strand its queue"
        );
        // Nothing vanishes silently: every admitted request is either
        // completed or accounted lost with a fault attribution.
        assert_eq!(
            report.stats.admitted,
            report.stats.completed + report.availability.lost as usize + report.deadline.dropped,
            "conservation: admitted = completed + dropped + lost"
        );
        assert!(report.availability.availability() < 1.0);
    }

    #[test]
    fn board_crash_with_recovery_completes_everything() {
        // Same crash, but telemetry-driven detection fences the board,
        // re-places the replica on the spare node, and re-dispatches the
        // orphans: no admitted request is lost.
        let (mut fleet, _) = fleet_with_replicas(3, 2);
        let trace = burst_trace(60, 500);
        let faults =
            FaultSchedule::new().with_fault(5_000, FaultKind::BoardCrash { node: NodeId(0) });
        let options = ServingOptions::new(DispatchPolicy::RoundRobin)
            .with_faults(faults)
            .with_telemetry(2_000)
            .with_recovery(RecoveryPolicy::new(2));
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.availability.crashes, 1);
        assert_eq!(
            report.availability.failovers, 1,
            "the dead board is declared once"
        );
        assert!(report.availability.replicas_restored >= 1);
        assert!(report.availability.mean_detect_cycles() > 0.0);
        assert_eq!(report.availability.lost, 0, "failover saves every orphan");
        assert_eq!(report.stats.completed, report.stats.admitted);
        assert_eq!(report.availability.availability(), 1.0);
    }

    #[test]
    fn short_hang_rides_through_without_failover() {
        // A hang shorter than the detection threshold is absorbed in place:
        // the board resumes, nothing is re-placed, nothing is lost.
        let (mut fleet, _) = fleet_with_replicas(2, 2);
        let trace = burst_trace(40, 1_000);
        let faults = FaultSchedule::new().with_fault(
            5_000,
            FaultKind::BoardHang {
                node: NodeId(0),
                for_cycles: 4_000,
            },
        );
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_faults(faults)
            .with_telemetry(2_000)
            .with_recovery(RecoveryPolicy::new(8));
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        assert_eq!(report.availability.hangs, 1);
        assert_eq!(
            report.availability.failovers, 0,
            "a transient hang below the threshold must not trigger failover"
        );
        assert_eq!(report.availability.lost, 0);
        assert_eq!(report.stats.completed, report.stats.admitted);
    }

    #[test]
    fn chaos_runs_are_seed_reproducible() {
        use crate::fault::FaultProfile;
        let run = || {
            let (mut fleet, _) = fleet_with_replicas(3, 2);
            let trace = burst_trace(40, 800);
            let faults = FaultSchedule::generate(7, 40_000, 3, &FaultProfile::default());
            ClusterServingSim::new(
                ServingOptions::new(DispatchPolicy::LeastLoaded)
                    .with_faults(faults)
                    .with_telemetry(2_000)
                    .with_recovery(RecoveryPolicy::new(2)),
            )
            .run(&mut fleet, &trace)
        };
        let first = run();
        let second = run();
        assert_eq!(
            first, second,
            "the same fault schedule must replay to an identical report"
        );
        assert!(first.availability.injected() > 0);
    }

    #[test]
    fn migration_aware_dispatch_cuts_dark_window_misses() {
        // A live migration streams ~17 GB over a fast link while background
        // deadline traffic trickles in; a burst lands just before the
        // stop-and-copy pause (~371k cycles in). The unaware router keeps
        // packing the replica that is about to go dark, stranding part of
        // the burst in its queue through the pause; the aware router steers
        // the whole burst to the untouched replica, which drains it within
        // the deadline slack.
        use npu_sim::InterconnectConfig;
        let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &NpuConfig::single_core());
        let cost = MigrationCostModel {
            interconnect: InterconnectConfig {
                bandwidth_bytes_per_sec: 50.0e12,
                setup_cycles: 200,
            },
            drain_grace_cycles: 100_000,
            remap_cycles: 200_000,
            context_bytes: 256 << 10,
            precopy: PreCopyConfig {
                stop_fraction: 0.2,
                ..PreCopyConfig::default()
            },
        };
        let run = |aware: bool| {
            let mut fleet = NpuCluster::homogeneous(3, &NpuConfig::single_core());
            let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
            let a = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
            let b = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
            let spare = NodeId(
                (0..3)
                    .find(|id| *id != a.node.0 && *id != b.node.0)
                    .unwrap(),
            );
            let trace = ClusterTrace::from_arrivals({
                let mut arrivals: Vec<RequestArrival> = (0..26u64)
                    .map(|i| {
                        let at = i * service * 4;
                        RequestArrival::new(Cycles(at), ModelId::Mnist)
                            .with_deadline(Cycles(at + 14 * service))
                    })
                    .collect();
                for _ in 0..8 {
                    arrivals.push(
                        RequestArrival::new(Cycles(365_000), ModelId::Mnist)
                            .with_deadline(Cycles(365_000 + 14 * service)),
                    );
                }
                arrivals.sort_by_key(|arrival| arrival.at);
                arrivals
            });
            let mut options = ServingOptions::new(DispatchPolicy::RoundRobin)
                .with_live_migration(Cycles(service), a, spare)
                .with_cost_model(cost.clone());
            if aware {
                options = options.with_migration_aware_dispatch();
            }
            ClusterServingSim::new(options).run(&mut fleet, &trace)
        };
        let plain = run(false);
        let aware = run(true);
        assert_eq!(plain.migrations.len(), 1);
        assert_eq!(aware.migrations.len(), 1);
        assert_eq!(plain.stats.completed, plain.stats.admitted);
        assert_eq!(aware.stats.completed, aware.stats.admitted);
        let misses = |r: &ServingReport| r.deadline.missed + r.deadline.dropped;
        assert!(
            misses(&plain) > 0,
            "the unaware router must strand part of the burst in the dark window"
        );
        assert!(
            misses(&aware) < misses(&plain),
            "steering away from the migrating replica must cut deadline misses ({} vs {})",
            misses(&aware),
            misses(&plain)
        );
    }
}
