//! Datacenter fleet layer above the single-board Neu10 stack.
//!
//! The core reproduction stops at one [`neu10::VnpuManager`] owning one NPU
//! board. Serving production traffic is a *fleet* problem: requests have to
//! be balanced across many boards, vNPUs have to be placed where capacity and
//! locality are best, and running vNPUs occasionally have to move (board
//! maintenance, defragmentation, load spikes). This crate provides that
//! layer:
//!
//! * [`NpuCluster`] — owns N [`ClusterNode`]s (one `VnpuManager`-backed board
//!   each) and a cluster-level **placement engine** ([`placement`]) scoring
//!   per-node free ME/VE/SRAM/HBM inventory under best-fit, worst-fit or
//!   topology-aware policies;
//! * [`router`] / [`serving`] — an open-loop request **router** with
//!   per-model queues, admission control and pluggable dispatch policies
//!   (round-robin, least-loaded, locality-affine, earliest-deadline-first),
//!   plus the discrete-event serving simulator that replays a
//!   [`workloads::ClusterTrace`] against the deployed replicas with
//!   per-replica **dynamic batching**, **request deadlines and priorities**
//!   (miss counting, drop-on-expiry) and seeded **stochastic service times**
//!   calibrated from `neu10::CollocationSim`;
//! * [`migration`] — **vNPU migration** between nodes, cold (drain → snapshot
//!   the [`neu10::scheduler::VnpuContext`] → re-place → resume) or **live
//!   pre-copy** (iterative copy rounds stream dirty HBM pages while the
//!   source keeps serving; downtime shrinks to the residual stop-and-copy),
//!   with a cost model built on [`npu_sim::InterconnectConfig`] and
//!   page-granular dirty accounting ([`npu_sim::DirtySet`]), charged to
//!   tenant latency;
//! * [`telemetry`] — the **telemetry bus and control-plane hook**: with
//!   [`ServingOptions::with_telemetry`] the serving simulator emits periodic
//!   per-replica/per-model samples, and a [`ControlPlane`] (such as the
//!   `autopilot` crate's autoscaler + defragmenter) answers with scale-up /
//!   drain-then-release / migrate actions applied inside the same
//!   deterministic event loop;
//! * [`ShardOptions`] — the **sharded parallel event loop**:
//!   [`ClusterServingSim::run_sharded`] partitions the fleet into disjoint
//!   board groups advancing in bounded-lookahead rounds on a std-only worker
//!   pool, exchanging only migration envelopes and control-plane actions at
//!   barriers.
//!
//! # Invariants
//!
//! Everything in this crate upholds the workspace determinism contract
//! (see `ARCHITECTURE.md` at the repo root):
//!
//! 1. a serving run is a pure function of `(cluster, trace, options)` —
//!    same inputs ⇒ bit-identical [`ServingReport`];
//! 2. attaching any [`ObsSink`] never changes the report;
//! 3. for the sharded loop, the thread count never changes the merged
//!    report, and `partitions = 1` reproduces the sequential loop exactly;
//! 4. no admitted request vanishes: `admitted = completed + dropped + lost`
//!    holds through crashes, failover and cross-partition migration.
//!
//! # Example
//!
//! ```
//! use cluster::{DeploySpec, NpuCluster, PlacementPolicy};
//! use npu_sim::NpuConfig;
//! use workloads::ModelId;
//!
//! let mut fleet = NpuCluster::homogeneous(4, &NpuConfig::single_core());
//! let handle = fleet
//!     .deploy(DeploySpec::replica(ModelId::Mnist, 2, 2), PlacementPolicy::BestFit)
//!     .unwrap();
//! assert_eq!(fleet.total_vnpus(), 1);
//! assert!(fleet.node(handle.node).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod cluster;
pub mod fault;
pub mod inventory;
pub mod migration;
pub mod node;
pub mod obs;
mod par;
pub mod placement;
pub mod router;
pub mod serving;
mod sharded;
pub mod telemetry;

pub use cluster::{ClusterError, DeploySpec, DeployedVnpu, NpuCluster, VnpuHandle};
pub use fault::{
    AvailabilityStats, FaultEvent, FaultKind, FaultProfile, FaultSchedule, ModelAvailability,
    RecoveryPolicy,
};
pub use inventory::{NodeInventory, ResourceDemand};
pub use migration::{
    DirtyRateModel, MigrationCostModel, MigrationMode, MigrationOutcome, MigrationRecord,
    MigrationStats, PreCopyConfig,
};
pub use node::ClusterNode;
pub use obs::{
    export_chrome_trace, export_openmetrics, export_timeseries_openmetrics, validate_chrome_trace,
    validate_openmetrics, AlertKind, AlertLog, AlertSeverity, AlertTransition, BurnRatePolicy,
    FleetCounters, MetricsRegistry, NoopSink, ObsSink, OpenMetricsSummary, RejectReason,
    SeriesLabels, SloConfig, SloEngine, SloSpec, TimeSeriesConfig, TimeSeriesRecorder,
    TimeSeriesStats, TraceConfig, TraceRecorder, TraceStats, TraceValidation,
};
pub use placement::{rank_nodes, select_node, PlacementCandidate, PlacementPolicy};
pub use router::{AdmissionControl, DispatchPolicy, ReplicaIndex, ReplicaView, RouterStats};
pub use serving::{
    estimated_batch_service_cycles, estimated_service_cycles, ClusterServingSim, PerfStats,
    ScheduledMigration, ServingOptions, ServingReport, StochasticService,
};
pub use sharded::ShardOptions;
pub use telemetry::{
    ControlAction, ControlPlane, ControlStats, ModelSample, NoopControl, ReplicaSample,
    TelemetryFrame,
};

/// Identifies one node (board + host) of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}
