//! The cluster request router: per-model replica selection, admission
//! control and the pluggable dispatch policies.
//!
//! The router is deliberately state-light — it sees a snapshot of every
//! candidate replica ([`ReplicaView`]) at each arrival and picks one (or
//! rejects the request). The serving simulator ([`crate::serving`]) owns the
//! queues and clocks; production code would back the same interface with live
//! load reports.
//!
//! At fleet scale the expensive part of routing is not the policy but
//! *finding the candidates*: rebuilding the per-model replica set (and the
//! per-node locality counts behind [`ReplicaView::node_replicas`]) from the
//! full replica table on every arrival is O(replicas²) per request. The
//! [`ReplicaIndex`] keeps those sets incrementally — the serving event loop
//! updates it on deploy / drain / retire / migrate transitions, and each
//! arrival reads exactly the candidate slots of its model.

use std::collections::BTreeMap;
// simlint::allow(D1, reason = "imported for the two point-lookup-only index maps audited below")
use std::collections::HashMap;

use workloads::ModelId;

use crate::cluster::VnpuHandle;
use crate::NodeId;

/// An incrementally-maintained routing index over the serving simulator's
/// replica table.
///
/// Tracks three things the dispatch hot path needs in O(1)/O(candidates):
///
/// * the **routable** slots of every model — live, non-draining replicas, in
///   ascending slot order (the same order a full-table scan would visit, so
///   indexed dispatch reproduces scan-based dispatch decision-for-decision);
/// * the **per-(model, node) replica counts** behind the locality signal
///   ([`ReplicaView::node_replicas`]), which a naive build recounts by a
///   nested scan per candidate;
/// * the **handle → slot map** over every live replica (draining included),
///   replacing the linear `position()` scans that resolved migration and
///   control-plane handles.
///
/// The owner calls the transition methods exactly once per lifecycle edge:
/// [`insert`](ReplicaIndex::insert) on deploy, [`begin_drain`](ReplicaIndex::begin_drain)
/// when a replica stops being routable, [`relocate`](ReplicaIndex::relocate)
/// when a migration re-keys its handle, and [`retire`](ReplicaIndex::retire)
/// when the slot dies.
#[derive(Debug, Default)]
pub struct ReplicaIndex {
    /// Routable (live, non-draining) slots per model, ascending.
    by_model: BTreeMap<ModelId, Vec<usize>>,
    /// Routable replicas of (model, node) — the locality signal. Hashed on
    /// purpose: read per candidate per arrival on the dispatch hot path,
    /// and only ever by exact key — no code path iterates it, so its order
    /// cannot reach a report or digest.
    // simlint::allow(D1, reason = "hot-path point lookups only; never iterated")
    node_counts: HashMap<(ModelId, NodeId), usize>,
    /// Slot of every live replica (routable or draining). Same audit as
    /// `node_counts`: exact-key lookups from migration/control resolution,
    /// never iterated.
    // simlint::allow(D1, reason = "hot-path point lookups only; never iterated")
    by_handle: HashMap<VnpuHandle, usize>,
}

impl ReplicaIndex {
    /// An empty index.
    pub fn new() -> Self {
        ReplicaIndex::default()
    }

    /// Registers a newly deployed, routable replica. Slots must be inserted
    /// in increasing order (the serving simulator's replica table only ever
    /// grows), which keeps every candidate list sorted without searching.
    pub fn insert(&mut self, slot: usize, model: ModelId, node: NodeId, handle: VnpuHandle) {
        let candidates = self.by_model.entry(model).or_default();
        debug_assert!(
            candidates.last().is_none_or(|last| *last < slot),
            "slots are inserted in increasing order"
        );
        candidates.push(slot);
        *self.node_counts.entry((model, node)).or_insert(0) += 1;
        let previous = self.by_handle.insert(handle, slot);
        debug_assert!(previous.is_none(), "handles are unique among live replicas");
    }

    /// Removes a replica from the routable sets when it starts draining (it
    /// stays resolvable by handle until retired).
    pub fn begin_drain(&mut self, slot: usize, model: ModelId, node: NodeId) {
        if let Some(candidates) = self.by_model.get_mut(&model) {
            if let Some(position) = candidates.iter().position(|s| *s == slot) {
                candidates.remove(position);
            }
        }
        self.release_node_count(model, node);
    }

    /// Re-keys a replica whose migration moved it to a new node. Routable
    /// replicas move their locality count with them; a draining replica was
    /// already out of the routable sets and only re-keys its handle.
    pub fn relocate(
        &mut self,
        old_handle: VnpuHandle,
        new_handle: VnpuHandle,
        slot: usize,
        model: ModelId,
        routable: bool,
    ) {
        let removed = self.by_handle.remove(&old_handle);
        debug_assert_eq!(removed, Some(slot), "relocate must name a live replica");
        self.by_handle.insert(new_handle, slot);
        if routable {
            self.release_node_count(model, old_handle.node);
            *self
                .node_counts
                .entry((model, new_handle.node))
                .or_insert(0) += 1;
        }
    }

    /// Forgets a retired replica's handle. The slot itself stays dead in the
    /// owner's table; it was removed from the routable sets when it drained.
    pub fn retire(&mut self, handle: VnpuHandle) {
        self.by_handle.remove(&handle);
    }

    /// Removes a replica that died mid-run (board crash / failover fencing)
    /// in one step, without rebuilding the index. Unlike the graceful
    /// drain-then-retire path, eviction hits replicas in *any* state: a
    /// `routable` replica leaves the candidate list and its locality count
    /// immediately; a draining one was already out of the routable sets and
    /// only forgets its handle.
    pub fn evict(
        &mut self,
        slot: usize,
        model: ModelId,
        node: NodeId,
        handle: VnpuHandle,
        routable: bool,
    ) {
        if routable {
            self.begin_drain(slot, model, node);
        }
        self.retire(handle);
    }

    /// The slot of a live replica, draining included; `None` for stale
    /// handles (undeployed, or re-keyed by a migration).
    pub fn slot_of(&self, handle: VnpuHandle) -> Option<usize> {
        self.by_handle.get(&handle).copied()
    }

    /// The routable slots of `model`, in ascending slot order.
    pub fn candidates(&self, model: ModelId) -> &[usize] {
        self.by_model
            .get(&model)
            .map_or(&[], |slots| slots.as_slice())
    }

    /// Routable replicas of `model` on `node` (the locality signal).
    pub fn node_count(&self, model: ModelId, node: NodeId) -> usize {
        self.node_counts.get(&(model, node)).copied().unwrap_or(0)
    }

    fn release_node_count(&mut self, model: ModelId, node: NodeId) {
        match self.node_counts.get_mut(&(model, node)) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.node_counts.remove(&(model, node));
            }
            None => debug_assert!(false, "released a node count that was never taken"),
        }
    }
}

/// How the router picks among the replicas of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Cycle through the available replicas regardless of their load.
    RoundRobin,
    /// Send to the replica with the least outstanding work.
    LeastLoaded,
    /// Prefer replicas on nodes hosting the most replicas of the model
    /// (weight locality / warm HBM); ties break towards the least loaded.
    LocalityAffine,
    /// Deadline- and priority-aware serving: replica selection matches
    /// [`DispatchPolicy::LeastLoaded`] (minimize expected wait), but the
    /// serving simulator orders each replica's queue earliest-deadline-first
    /// within priority classes instead of FIFO.
    EarliestDeadline,
}

impl DispatchPolicy {
    /// Every dispatch policy, for sweeps.
    pub fn all() -> [DispatchPolicy; 4] {
        [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::LocalityAffine,
            DispatchPolicy::EarliestDeadline,
        ]
    }

    /// A short stable label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::LocalityAffine => "locality",
            DispatchPolicy::EarliestDeadline => "edf",
        }
    }

    /// Whether replicas serve their queues earliest-deadline-first within
    /// priority classes (instead of FIFO) under this policy.
    pub fn orders_queues_by_deadline(self) -> bool {
        matches!(self, DispatchPolicy::EarliestDeadline)
    }
}

/// Admission control limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum requests queued on one replica; arrivals that would exceed it
    /// are rejected (load shedding beats unbounded tail latency).
    pub max_queue_depth: usize,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            max_queue_depth: 64,
        }
    }
}

/// Router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests admitted and enqueued on a replica.
    pub admitted: usize,
    /// Requests rejected because no replica serves the model.
    pub rejected_no_replica: usize,
    /// Requests rejected by admission control.
    pub rejected_overload: usize,
    /// Requests that completed service.
    pub completed: usize,
}

impl RouterStats {
    /// Total rejections.
    pub fn rejected(&self) -> usize {
        self.rejected_no_replica + self.rejected_overload
    }
}

/// A snapshot of one candidate replica at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaView {
    /// Index of the replica in the caller's replica table.
    pub index: usize,
    /// The node hosting the replica.
    pub node: NodeId,
    /// Requests queued (excluding those in service).
    pub queue_len: usize,
    /// Requests in the batch currently being served (0 = idle). Scoring by
    /// the batch occupancy — not a busy bit — keeps a replica mid-way
    /// through an 8-request batch from looking as lightly loaded as one
    /// serving a single request.
    pub in_flight: usize,
    /// Whether the replica is mid-migration (draining or transferring).
    pub unavailable: bool,
    /// Replicas of the same model on the replica's node (locality signal).
    pub node_replicas: usize,
}

impl ReplicaView {
    /// Outstanding work on the replica, in requests: queued plus every
    /// request of the in-service batch.
    pub fn outstanding(&self) -> usize {
        self.queue_len + self.in_flight
    }

    /// Whether a batch is currently in service.
    pub fn busy(&self) -> bool {
        self.in_flight > 0
    }
}

/// The outcome of routing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchDecision {
    /// Enqueue on the replica at this index of the caller's table.
    Dispatch(usize),
    /// No replica serves the model.
    RejectNoReplica,
    /// Admission control rejected the request.
    RejectOverload,
}

/// The request router.
#[derive(Debug)]
pub struct Router {
    policy: DispatchPolicy,
    admission: AdmissionControl,
    rr_cursor: BTreeMap<ModelId, usize>,
    stats: RouterStats,
}

impl Router {
    /// A router with the given policy and admission limits.
    pub fn new(policy: DispatchPolicy, admission: AdmissionControl) -> Self {
        Router {
            policy,
            admission,
            rr_cursor: BTreeMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Records a completed request.
    pub fn record_completion(&mut self) {
        self.stats.completed += 1;
    }

    /// Routes one request for `model` over the candidate `replicas`
    /// (all replicas of that model, in stable index order).
    ///
    /// Replicas that are mid-migration (`unavailable`) are skipped while any
    /// available replica exists; when *every* replica is dark (e.g. a full
    /// migration window) the request queues behind the migration instead of
    /// being shed. Overload rejection only triggers when every eligible
    /// replica is at `max_queue_depth` — one full queue never sheds a request
    /// another replica has room for.
    pub fn dispatch(&mut self, model: ModelId, replicas: &[ReplicaView]) -> DispatchDecision {
        self.stats.offered += 1;
        match self.select(model, replicas) {
            DispatchDecision::Dispatch(index) => {
                self.stats.admitted += 1;
                DispatchDecision::Dispatch(index)
            }
            DispatchDecision::RejectNoReplica => {
                self.stats.rejected_no_replica += 1;
                DispatchDecision::RejectNoReplica
            }
            DispatchDecision::RejectOverload => {
                self.stats.rejected_overload += 1;
                DispatchDecision::RejectOverload
            }
        }
    }

    /// Routes an *already admitted* request again — failover re-dispatching
    /// the orphans of a dead board. Selection is identical to
    /// [`dispatch`](Router::dispatch) but no admission counters move: the
    /// request was offered and admitted exactly once at arrival, and
    /// re-dispatch must keep `offered = admitted + rejected` intact. A
    /// rejection here means no surviving replica can take the orphan; the
    /// caller records it as lost with a fault attribution.
    pub fn redispatch(&mut self, model: ModelId, replicas: &[ReplicaView]) -> DispatchDecision {
        self.select(model, replicas)
    }

    fn select(&mut self, model: ModelId, replicas: &[ReplicaView]) -> DispatchDecision {
        if replicas.is_empty() {
            return DispatchDecision::RejectNoReplica;
        }

        // Restrict to the available replicas while any exist; a fully dark
        // replica set queues rather than rejects.
        let any_available = replicas.iter().any(|r| !r.unavailable);
        let eligible = |r: &&ReplicaView| {
            r.queue_len < self.admission.max_queue_depth && (!any_available || !r.unavailable)
        };

        let pick = match self.policy {
            DispatchPolicy::RoundRobin => {
                let cursor = self.rr_cursor.entry(model).or_insert(0);
                let start = *cursor % replicas.len();
                let choice = (0..replicas.len())
                    .map(|offset| (start + offset) % replicas.len())
                    .find(|pos| eligible(&&replicas[*pos]));
                choice.map(|pos| {
                    *cursor = (pos + 1) % replicas.len();
                    replicas[pos]
                })
            }
            DispatchPolicy::LeastLoaded | DispatchPolicy::EarliestDeadline => replicas
                .iter()
                .filter(eligible)
                .min_by_key(|r| (r.outstanding(), r.index))
                .copied(),
            DispatchPolicy::LocalityAffine => replicas
                .iter()
                .filter(eligible)
                .min_by_key(|r| (std::cmp::Reverse(r.node_replicas), r.outstanding(), r.index))
                .copied(),
        };

        match pick {
            Some(replica) => DispatchDecision::Dispatch(replica.index),
            None => DispatchDecision::RejectOverload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(index: usize, node: u32, queue_len: usize, in_flight: usize) -> ReplicaView {
        ReplicaView {
            index,
            node: NodeId(node),
            queue_len,
            in_flight,
            unavailable: false,
            node_replicas: 1,
        }
    }

    #[test]
    fn round_robin_cycles_per_model() {
        let mut router = Router::new(DispatchPolicy::RoundRobin, AdmissionControl::default());
        let replicas = [view(0, 0, 0, 0), view(1, 1, 0, 0)];
        let picks: Vec<DispatchDecision> = (0..4)
            .map(|_| router.dispatch(ModelId::Mnist, &replicas))
            .collect();
        assert_eq!(
            picks,
            vec![
                DispatchDecision::Dispatch(0),
                DispatchDecision::Dispatch(1),
                DispatchDecision::Dispatch(0),
                DispatchDecision::Dispatch(1),
            ]
        );
        // Independent cursor per model.
        assert_eq!(
            router.dispatch(ModelId::Bert, &replicas),
            DispatchDecision::Dispatch(0)
        );
    }

    #[test]
    fn least_loaded_follows_outstanding_work() {
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        let replicas = [view(0, 0, 3, 1), view(1, 1, 1, 1), view(2, 2, 1, 0)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(2),
            "idle replica with the short queue wins"
        );
    }

    #[test]
    fn least_loaded_counts_batch_occupancy_not_a_busy_bit() {
        // Regression: `busy` used to be a bool, so a replica mid-way through
        // an 8-request batch scored as outstanding = queue + 1 and beat an
        // idle-but-queued replica. Occupancy now weighs the whole batch.
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        // Replica 0: empty queue but an 8-deep batch in service.
        // Replica 1: idle with 2 queued requests.
        let replicas = [view(0, 0, 0, 8), view(1, 1, 2, 0)];
        assert_eq!(
            replicas[0].outstanding(),
            8,
            "the in-service batch is outstanding work"
        );
        assert!(replicas[0].busy() && !replicas[1].busy());
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1),
            "a mid-batch replica is not near-idle"
        );
    }

    #[test]
    fn least_loaded_avoids_migrating_replicas() {
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        let mut migrating = view(0, 0, 0, 0);
        migrating.unavailable = true;
        let replicas = [migrating, view(1, 1, 2, 1)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1)
        );
    }

    #[test]
    fn locality_prefers_replica_dense_nodes() {
        let mut router = Router::new(DispatchPolicy::LocalityAffine, AdmissionControl::default());
        let mut dense = view(1, 1, 1, 1);
        dense.node_replicas = 3;
        let replicas = [view(0, 0, 0, 0), dense];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1),
            "locality outweighs load"
        );
    }

    #[test]
    fn round_robin_skips_migrating_replicas() {
        // Regression: RR used to pick replicas[cursor] blindly, dispatching
        // to mid-migration replicas.
        let mut router = Router::new(DispatchPolicy::RoundRobin, AdmissionControl::default());
        let mut dark = view(0, 0, 0, 0);
        dark.unavailable = true;
        let replicas = [dark, view(1, 1, 0, 0), view(2, 2, 0, 0)];
        let picks: Vec<DispatchDecision> = (0..4)
            .map(|_| router.dispatch(ModelId::Mnist, &replicas))
            .collect();
        assert_eq!(
            picks,
            vec![
                DispatchDecision::Dispatch(1),
                DispatchDecision::Dispatch(2),
                DispatchDecision::Dispatch(1),
                DispatchDecision::Dispatch(2),
            ],
            "the dark replica is never picked while others are available"
        );
    }

    #[test]
    fn round_robin_overload_requires_every_available_replica_full() {
        // Regression: RR used to reject outright when the cursor landed on a
        // full replica even though the other replica had queue room.
        let mut router = Router::new(
            DispatchPolicy::RoundRobin,
            AdmissionControl { max_queue_depth: 2 },
        );
        let replicas = [view(0, 0, 2, 1), view(1, 1, 0, 0)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1),
            "the roomy replica absorbs the request"
        );
        let both_full = [view(0, 0, 2, 1), view(1, 1, 2, 1)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &both_full),
            DispatchDecision::RejectOverload
        );
    }

    #[test]
    fn fully_dark_replica_sets_queue_instead_of_rejecting() {
        // When every replica is mid-migration the request waits behind the
        // migration window rather than being shed.
        for policy in DispatchPolicy::all() {
            let mut router = Router::new(policy, AdmissionControl::default());
            let mut a = view(0, 0, 0, 0);
            a.unavailable = true;
            let mut b = view(1, 1, 3, 1);
            b.unavailable = true;
            let decision = router.dispatch(ModelId::Mnist, &[a, b]);
            assert!(
                matches!(decision, DispatchDecision::Dispatch(_)),
                "{}: all-dark window must queue, got {decision:?}",
                policy.label()
            );
        }
    }

    #[test]
    fn edf_routes_like_least_loaded_and_flags_queue_ordering() {
        let mut router = Router::new(
            DispatchPolicy::EarliestDeadline,
            AdmissionControl::default(),
        );
        let replicas = [view(0, 0, 3, 1), view(1, 1, 0, 0)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1)
        );
        assert!(DispatchPolicy::EarliestDeadline.orders_queues_by_deadline());
        assert!(!DispatchPolicy::LeastLoaded.orders_queues_by_deadline());
    }

    #[test]
    fn redispatch_moves_no_admission_counters() {
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        let replicas = [view(0, 0, 1, 0), view(1, 1, 0, 0)];
        assert_eq!(
            router.redispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1)
        );
        assert_eq!(
            router.redispatch(ModelId::Mnist, &[]),
            DispatchDecision::RejectNoReplica
        );
        let stats = router.stats();
        assert_eq!(
            (stats.offered, stats.admitted, stats.rejected()),
            (0, 0, 0),
            "re-dispatching an orphan must not re-count it"
        );
    }

    #[test]
    fn evict_removes_a_routable_slot_mid_run() {
        use neu10::VnpuId;

        let mut index = ReplicaIndex::new();
        let handle = |n: u32| VnpuHandle {
            node: NodeId(n),
            vnpu: VnpuId(0),
        };
        index.insert(0, ModelId::Mnist, NodeId(0), handle(0));
        index.insert(1, ModelId::Mnist, NodeId(1), handle(1));
        index.insert(2, ModelId::Mnist, NodeId(1), handle(2));

        // Crash the middle slot: candidate list, locality count and handle
        // all drop in one step, no rebuild.
        index.evict(1, ModelId::Mnist, NodeId(1), handle(1), true);
        assert_eq!(index.candidates(ModelId::Mnist), &[0, 2]);
        assert_eq!(index.node_count(ModelId::Mnist, NodeId(1)), 1);
        assert_eq!(index.slot_of(handle(1)), None);

        // A draining replica is already out of the routable sets; eviction
        // only forgets the handle.
        index.begin_drain(2, ModelId::Mnist, NodeId(1));
        index.evict(2, ModelId::Mnist, NodeId(1), handle(2), false);
        assert_eq!(index.candidates(ModelId::Mnist), &[0]);
        assert_eq!(index.node_count(ModelId::Mnist, NodeId(1)), 0);
        assert_eq!(index.slot_of(handle(2)), None);
        assert_eq!(index.slot_of(handle(0)), Some(0));
    }

    #[test]
    fn admission_control_sheds_load() {
        let mut router = Router::new(
            DispatchPolicy::LeastLoaded,
            AdmissionControl { max_queue_depth: 2 },
        );
        let replicas = [view(0, 0, 2, 1)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::RejectOverload
        );
        assert_eq!(
            router.dispatch(ModelId::Mnist, &[]),
            DispatchDecision::RejectNoReplica
        );
        let stats = router.stats();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.rejected(), 2);
    }
}
