//! The cluster request router: per-model replica selection, admission
//! control and the pluggable dispatch policies.
//!
//! The router is deliberately state-light — it sees a snapshot of every
//! candidate replica ([`ReplicaView`]) at each arrival and picks one (or
//! rejects the request). The serving simulator ([`crate::serving`]) owns the
//! queues and clocks; production code would back the same interface with live
//! load reports.

use std::collections::BTreeMap;

use workloads::ModelId;

use crate::NodeId;

/// How the router picks among the replicas of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// Cycle through the replicas regardless of their load.
    RoundRobin,
    /// Send to the replica with the least outstanding work.
    LeastLoaded,
    /// Prefer replicas on nodes hosting the most replicas of the model
    /// (weight locality / warm HBM); ties break towards the least loaded.
    LocalityAffine,
}

impl DispatchPolicy {
    /// Every dispatch policy, for sweeps.
    pub fn all() -> [DispatchPolicy; 3] {
        [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::LocalityAffine,
        ]
    }

    /// A short stable label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::LocalityAffine => "locality",
        }
    }
}

/// Admission control limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum requests queued on one replica; arrivals that would exceed it
    /// are rejected (load shedding beats unbounded tail latency).
    pub max_queue_depth: usize,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            max_queue_depth: 64,
        }
    }
}

/// Router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests admitted and enqueued on a replica.
    pub admitted: usize,
    /// Requests rejected because no replica serves the model.
    pub rejected_no_replica: usize,
    /// Requests rejected by admission control.
    pub rejected_overload: usize,
    /// Requests that completed service.
    pub completed: usize,
}

impl RouterStats {
    /// Total rejections.
    pub fn rejected(&self) -> usize {
        self.rejected_no_replica + self.rejected_overload
    }
}

/// A snapshot of one candidate replica at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaView {
    /// Index of the replica in the caller's replica table.
    pub index: usize,
    /// The node hosting the replica.
    pub node: NodeId,
    /// Requests queued (excluding the one in service).
    pub queue_len: usize,
    /// Whether a request is currently in service.
    pub busy: bool,
    /// Whether the replica is mid-migration (draining or transferring).
    pub unavailable: bool,
    /// Replicas of the same model on the replica's node (locality signal).
    pub node_replicas: usize,
}

impl ReplicaView {
    /// Outstanding work on the replica, in requests.
    pub fn outstanding(&self) -> usize {
        self.queue_len + usize::from(self.busy)
    }
}

/// The outcome of routing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchDecision {
    /// Enqueue on the replica at this index of the caller's table.
    Dispatch(usize),
    /// No replica serves the model.
    RejectNoReplica,
    /// Admission control rejected the request.
    RejectOverload,
}

/// The request router.
#[derive(Debug)]
pub struct Router {
    policy: DispatchPolicy,
    admission: AdmissionControl,
    rr_cursor: BTreeMap<ModelId, usize>,
    stats: RouterStats,
}

impl Router {
    /// A router with the given policy and admission limits.
    pub fn new(policy: DispatchPolicy, admission: AdmissionControl) -> Self {
        Router {
            policy,
            admission,
            rr_cursor: BTreeMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Records a completed request.
    pub fn record_completion(&mut self) {
        self.stats.completed += 1;
    }

    /// Routes one request for `model` over the candidate `replicas`
    /// (all replicas of that model, in stable index order).
    pub fn dispatch(&mut self, model: ModelId, replicas: &[ReplicaView]) -> DispatchDecision {
        self.stats.offered += 1;
        if replicas.is_empty() {
            self.stats.rejected_no_replica += 1;
            return DispatchDecision::RejectNoReplica;
        }

        let pick = match self.policy {
            DispatchPolicy::RoundRobin => {
                let cursor = self.rr_cursor.entry(model).or_insert(0);
                let choice = *cursor % replicas.len();
                *cursor = (*cursor + 1) % replicas.len();
                replicas[choice]
            }
            DispatchPolicy::LeastLoaded => *replicas
                .iter()
                .min_by_key(|r| (r.unavailable, r.outstanding(), r.index))
                .expect("non-empty"),
            DispatchPolicy::LocalityAffine => *replicas
                .iter()
                .min_by_key(|r| {
                    (
                        r.unavailable,
                        std::cmp::Reverse(r.node_replicas),
                        r.outstanding(),
                        r.index,
                    )
                })
                .expect("non-empty"),
        };

        if pick.queue_len >= self.admission.max_queue_depth {
            self.stats.rejected_overload += 1;
            return DispatchDecision::RejectOverload;
        }
        self.stats.admitted += 1;
        DispatchDecision::Dispatch(pick.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(index: usize, node: u32, queue_len: usize, busy: bool) -> ReplicaView {
        ReplicaView {
            index,
            node: NodeId(node),
            queue_len,
            busy,
            unavailable: false,
            node_replicas: 1,
        }
    }

    #[test]
    fn round_robin_cycles_per_model() {
        let mut router = Router::new(DispatchPolicy::RoundRobin, AdmissionControl::default());
        let replicas = [view(0, 0, 0, false), view(1, 1, 0, false)];
        let picks: Vec<DispatchDecision> = (0..4)
            .map(|_| router.dispatch(ModelId::Mnist, &replicas))
            .collect();
        assert_eq!(
            picks,
            vec![
                DispatchDecision::Dispatch(0),
                DispatchDecision::Dispatch(1),
                DispatchDecision::Dispatch(0),
                DispatchDecision::Dispatch(1),
            ]
        );
        // Independent cursor per model.
        assert_eq!(
            router.dispatch(ModelId::Bert, &replicas),
            DispatchDecision::Dispatch(0)
        );
    }

    #[test]
    fn least_loaded_follows_outstanding_work() {
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        let replicas = [
            view(0, 0, 3, true),
            view(1, 1, 1, true),
            view(2, 2, 1, false),
        ];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(2),
            "idle replica with the short queue wins"
        );
    }

    #[test]
    fn least_loaded_avoids_migrating_replicas() {
        let mut router = Router::new(DispatchPolicy::LeastLoaded, AdmissionControl::default());
        let mut migrating = view(0, 0, 0, false);
        migrating.unavailable = true;
        let replicas = [migrating, view(1, 1, 2, true)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1)
        );
    }

    #[test]
    fn locality_prefers_replica_dense_nodes() {
        let mut router = Router::new(DispatchPolicy::LocalityAffine, AdmissionControl::default());
        let mut dense = view(1, 1, 1, true);
        dense.node_replicas = 3;
        let replicas = [view(0, 0, 0, false), dense];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::Dispatch(1),
            "locality outweighs load"
        );
    }

    #[test]
    fn admission_control_sheds_load() {
        let mut router = Router::new(
            DispatchPolicy::LeastLoaded,
            AdmissionControl { max_queue_depth: 2 },
        );
        let replicas = [view(0, 0, 2, true)];
        assert_eq!(
            router.dispatch(ModelId::Mnist, &replicas),
            DispatchDecision::RejectOverload
        );
        assert_eq!(
            router.dispatch(ModelId::Mnist, &[]),
            DispatchDecision::RejectNoReplica
        );
        let stats = router.stats();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.rejected(), 2);
    }
}
