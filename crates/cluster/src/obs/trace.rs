//! The bounded, head-sampled span recorder behind [`TraceRecorder`].

use workloads::{ModelId, PriorityClass};

use crate::fault::{FaultEvent, FaultKind};
use crate::migration::{MigrationMode, MigrationRecord};
use crate::obs::{
    AlertKind, AlertTransition, FleetCounters, MetricsRegistry, ObsSink, RejectReason,
};
use crate::telemetry::{ControlAction, TelemetryFrame};
use crate::NodeId;

/// Configuration of a [`TraceRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Ring capacity in events: the recorder retains at most this many span
    /// records, overwriting the oldest beyond it, so trace memory is
    /// `O(capacity)` at any arrival count.
    pub capacity: usize,
    /// Head-sampling rate in `[0, 1]`: the fraction of requests whose
    /// lifecycle spans are recorded. The decision is a seeded hash of the
    /// request sequence number — deterministic, memoryless, and consistent
    /// across the request's dispatch, service and completion events.
    /// Migration, control and tick events are always recorded.
    pub sample_rate: f64,
    /// Seed of the sampling hash; same seed + same rate ⇒ the same sampled
    /// request set, byte-identical exports.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 65_536,
            sample_rate: 1.0,
            seed: 0,
        }
    }
}

impl TraceConfig {
    /// Overrides the ring capacity (at least one event).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Overrides the head-sampling rate (clamped to `[0, 1]`).
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self
    }

    /// Overrides the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Recorder bookkeeping: how much was recorded, overwritten and sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events pushed into the ring (including ones later overwritten).
    pub recorded: u64,
    /// Events lost to ring wrap-around (oldest-first).
    pub overwritten: u64,
    /// Requests whose lifecycle passed the head-sampling decision.
    pub sampled_requests: u64,
    /// Requests skipped by head-sampling (their registry aggregates still
    /// count).
    pub skipped_requests: u64,
}

/// One recorded span/instant, compact enough for a multi-million-event ring.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceEvent {
    Arrival {
        at: u64,
        sequence: u64,
        model: ModelId,
    },
    Reject {
        at: u64,
        sequence: u64,
        model: ModelId,
        reason: RejectReason,
    },
    Queue {
        from: u64,
        until: u64,
        sequence: u64,
        model: ModelId,
        node: NodeId,
        slot: u32,
    },
    Service {
        from: u64,
        until: u64,
        model: ModelId,
        node: NodeId,
        slot: u32,
        batch: u32,
    },
    Complete {
        at: u64,
        sequence: u64,
        node: NodeId,
        slot: u32,
        deadline_met: Option<bool>,
    },
    Expire {
        at: u64,
        sequence: u64,
        model: ModelId,
        node: NodeId,
        slot: u32,
    },
    CopyRound {
        from: u64,
        until: u64,
        source: NodeId,
        dest: NodeId,
        slot: u32,
        round: u32,
        bytes: u64,
    },
    StopCopy {
        from: u64,
        until: u64,
        source: NodeId,
        dest: NodeId,
        slot: u32,
        bytes: u64,
        mode: MigrationMode,
        converged: bool,
    },
    Control {
        at: u64,
        kind: ControlKind,
        node: Option<NodeId>,
        dest: Option<NodeId>,
        model: Option<ModelId>,
    },
    Tick {
        at: u64,
        counters: FleetCounters,
    },
}

/// The control-action flavor recorded in a [`TraceEvent::Control`] instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ControlKind {
    ScaleUp,
    ScaleDown,
    Migrate,
}

impl ControlKind {
    pub(crate) fn label(self) -> &'static str {
        match self {
            ControlKind::ScaleUp => "scale-up",
            ControlKind::ScaleDown => "scale-down",
            ControlKind::Migrate => "migrate",
        }
    }
}

/// SplitMix64: the deterministic, stateless sampling hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The structured trace recorder: an [`ObsSink`] that collects span records
/// into a bounded ring plus exact aggregates into a [`MetricsRegistry`].
///
/// Pass one to
/// [`ClusterServingSim::run_observed`](crate::ClusterServingSim::run_observed)
/// (or `run_observed_with_controller`), then export with
/// [`TraceRecorder::export_chrome_trace`] and open the JSON in
/// <https://ui.perfetto.dev>. Everything the recorder stores is keyed by
/// deterministic simulation cycles: the same seed and config produce a
/// byte-identical export.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    /// `sample iff splitmix64(seed ^ sequence) <= threshold`; `u64::MAX`
    /// means always (rate ≥ 1).
    threshold: u64,
    ring: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full (also the oldest
    /// retained event).
    head: usize,
    stats: TraceStats,
    registry: MetricsRegistry,
    /// Whether the batch currently being announced (see hook order on
    /// [`ObsSink`]) contains at least one sampled member.
    batch_sampled: bool,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(TraceConfig::default())
    }
}

impl TraceRecorder {
    /// A recorder with the given ring/sampling configuration.
    pub fn new(config: TraceConfig) -> Self {
        let threshold = if config.sample_rate >= 1.0 {
            u64::MAX
        } else if config.sample_rate <= 0.0 {
            0
        } else {
            (config.sample_rate * u64::MAX as f64) as u64
        };
        TraceRecorder {
            config: TraceConfig {
                capacity: config.capacity.max(1),
                ..config
            },
            threshold,
            ring: Vec::new(),
            head: 0,
            stats: TraceStats::default(),
            registry: MetricsRegistry::new(),
            batch_sampled: false,
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Recorder bookkeeping (recorded / overwritten / sampling counts).
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Events currently retained in the ring (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The exact aggregate metrics accumulated alongside the span ring.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Whether `sequence`'s lifecycle is recorded under the seeded
    /// head-sampling decision. Deterministic and stateless: the same
    /// (seed, rate, sequence) always answers the same.
    pub fn is_sampled(&self, sequence: u64) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        if self.threshold == 0 {
            return false;
        }
        splitmix64(self.config.seed ^ sequence) <= self.threshold
    }

    /// Exports the recorded trace as Chrome `trace_event` JSON (see
    /// [`export_chrome_trace`](crate::obs::export_chrome_trace)).
    pub fn export_chrome_trace(&self) -> String {
        crate::obs::export_chrome_trace(self)
    }

    /// Retained events, oldest first.
    pub(crate) fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, front) = self.ring.split_at(self.head.min(self.ring.len()));
        front.iter().chain(tail.iter())
    }

    /// Folds `other` into `self`: `other`'s retained events re-enter this
    /// ring (oldest first, overwriting this ring's oldest beyond capacity),
    /// sampling/loss bookkeeping sums, and the registries merge exactly.
    ///
    /// This is the combination step for per-partition recorders in a sharded
    /// event loop. Merge partitions in a fixed order for a deterministic
    /// result; events keep their own timestamps, so exporters stay truthful
    /// even though the merged ring is ordered per-partition rather than
    /// globally.
    pub fn merge(&mut self, other: &TraceRecorder) {
        for event in other.events() {
            self.push(*event);
        }
        // push() counted each retained event into `recorded`; rebase so the
        // total is everything either side ever recorded, and fold in the
        // events `other` had already lost to its own ring wrap.
        self.stats.recorded += other.stats.recorded - other.len() as u64;
        self.stats.overwritten += other.stats.overwritten;
        self.stats.sampled_requests += other.stats.sampled_requests;
        self.stats.skipped_requests += other.stats.skipped_requests;
        self.registry.merge(&other.registry);
    }

    fn push(&mut self, event: TraceEvent) {
        self.stats.recorded += 1;
        if self.ring.len() < self.config.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.config.capacity;
            self.stats.overwritten += 1;
        }
    }
}

impl ObsSink for TraceRecorder {
    fn active(&self) -> bool {
        true
    }

    fn on_arrival(&mut self, now: u64, sequence: u64, model: ModelId) {
        self.registry.inc("serving.arrivals");
        if self.is_sampled(sequence) {
            self.stats.sampled_requests += 1;
            self.push(TraceEvent::Arrival {
                at: now,
                sequence,
                model,
            });
        } else {
            self.stats.skipped_requests += 1;
        }
    }

    fn on_dispatch(
        &mut self,
        _now: u64,
        _sequence: u64,
        _model: ModelId,
        _node: NodeId,
        _slot: usize,
    ) {
        self.registry.inc("serving.dispatched");
    }

    fn on_reject(&mut self, now: u64, sequence: u64, model: ModelId, reason: RejectReason) {
        self.registry.inc(match reason {
            RejectReason::NoReplica => "serving.rejected_no_replica",
            RejectReason::Overload => "serving.rejected_overload",
        });
        if self.is_sampled(sequence) {
            self.push(TraceEvent::Reject {
                at: now,
                sequence,
                model,
                reason,
            });
        }
    }

    fn on_service_request(
        &mut self,
        start: u64,
        sequence: u64,
        model: ModelId,
        arrived: u64,
        node: NodeId,
        slot: usize,
    ) {
        if self.is_sampled(sequence) {
            self.batch_sampled = true;
            self.push(TraceEvent::Queue {
                from: arrived,
                until: start,
                sequence,
                model,
                node,
                slot: slot as u32,
            });
        }
    }

    fn on_service_batch(
        &mut self,
        start: u64,
        finish: u64,
        model: ModelId,
        node: NodeId,
        slot: usize,
        batch: usize,
    ) {
        self.registry.inc("serving.batches");
        self.registry.observe("serving.batch_size", batch as u64);
        if std::mem::take(&mut self.batch_sampled) {
            self.push(TraceEvent::Service {
                from: start,
                until: finish,
                model,
                node,
                slot: slot as u32,
                batch: batch as u32,
            });
        }
    }

    fn on_complete(
        &mut self,
        now: u64,
        sequence: u64,
        _model: ModelId,
        _priority: PriorityClass,
        arrived: u64,
        node: NodeId,
        slot: usize,
        deadline_met: Option<bool>,
    ) {
        self.registry.inc("serving.completed");
        self.registry
            .observe("serving.latency_cycles", now.saturating_sub(arrived));
        if let Some(met) = deadline_met {
            self.registry.inc(if met {
                "serving.deadline_met"
            } else {
                "serving.deadline_missed"
            });
        }
        if self.is_sampled(sequence) {
            self.push(TraceEvent::Complete {
                at: now,
                sequence,
                node,
                slot: slot as u32,
                deadline_met,
            });
        }
    }

    fn on_expire(
        &mut self,
        now: u64,
        sequence: u64,
        model: ModelId,
        arrived: u64,
        node: NodeId,
        slot: usize,
    ) {
        self.registry.inc("serving.expired");
        self.registry
            .observe("serving.expired_wait_cycles", now.saturating_sub(arrived));
        if self.is_sampled(sequence) {
            self.push(TraceEvent::Expire {
                at: now,
                sequence,
                model,
                node,
                slot: slot as u32,
            });
        }
    }

    fn on_copy_round(
        &mut self,
        start: u64,
        finish: u64,
        from: NodeId,
        to: NodeId,
        slot: usize,
        round: u32,
        bytes: u64,
    ) {
        self.registry.inc("migration.copy_rounds");
        self.registry.add("migration.copy_bytes", bytes);
        self.push(TraceEvent::CopyRound {
            from: start,
            until: finish,
            source: from,
            dest: to,
            slot: slot as u32,
            round,
            bytes,
        });
    }

    fn on_stop_copy(&mut self, start: u64, finish: u64, slot: usize, record: &MigrationRecord) {
        self.registry.inc(match record.mode {
            MigrationMode::Cold => "migration.cold",
            MigrationMode::PreCopy => "migration.precopy",
        });
        if record.mode == MigrationMode::PreCopy && !record.converged {
            self.registry.inc("migration.precopy_fallbacks");
        }
        self.registry
            .observe("migration.downtime_cycles", record.downtime().get());
        self.push(TraceEvent::StopCopy {
            from: start,
            until: finish,
            source: record.from,
            dest: record.to,
            slot: slot as u32,
            bytes: record.state_bytes,
            mode: record.mode,
            converged: record.converged,
        });
    }

    fn on_migration_rejected(&mut self, _now: u64, _slot: usize) {
        self.registry.inc("migration.rejected");
    }

    fn on_control(&mut self, now: u64, action: &ControlAction) {
        let (kind, node, dest, model) = match action {
            ControlAction::ScaleUp { spec, .. } => {
                (ControlKind::ScaleUp, None, None, Some(spec.model))
            }
            ControlAction::ScaleDown { handle } => {
                (ControlKind::ScaleDown, Some(handle.node), None, None)
            }
            ControlAction::Migrate { handle, to, .. } => {
                (ControlKind::Migrate, Some(handle.node), Some(*to), None)
            }
        };
        self.registry.inc(match kind {
            ControlKind::ScaleUp => "control.scale_ups",
            ControlKind::ScaleDown => "control.scale_downs",
            ControlKind::Migrate => "control.migrations",
        });
        self.push(TraceEvent::Control {
            at: now,
            kind,
            node,
            dest,
            model,
        });
    }

    fn on_tick(&mut self, now: u64, _frame: &TelemetryFrame, counters: &FleetCounters) {
        self.registry.inc("telemetry.ticks");
        self.registry
            .set_gauge("fleet.queued", counters.queued as f64);
        self.registry
            .set_gauge("fleet.in_flight", counters.in_flight as f64);
        self.registry
            .set_gauge("fleet.live_replicas", counters.live_replicas as f64);
        self.registry.set_gauge(
            "fleet.migrations_in_flight",
            counters.migrations_in_flight as f64,
        );
        self.registry
            .set_gauge("fleet.resident_bytes", counters.resident_bytes as f64);
        self.push(TraceEvent::Tick {
            at: now,
            counters: *counters,
        });
    }

    fn on_alert(&mut self, _now: u64, alert: &AlertTransition) {
        self.registry.inc(match alert.kind {
            AlertKind::Fired => "slo.alerts_fired",
            AlertKind::Resolved => "slo.alerts_resolved",
        });
    }

    fn on_fault(&mut self, _now: u64, fault: &FaultEvent) {
        self.registry.inc("fault.injected");
        self.registry.inc(match fault.kind {
            FaultKind::BoardCrash { .. } => "fault.board_crashes",
            FaultKind::BoardHang { .. } => "fault.board_hangs",
            FaultKind::LinkDegrade { .. } => "fault.link_degrades",
            FaultKind::Straggler { .. } => "fault.stragglers",
            FaultKind::TelemetryDropout { .. } => "fault.telemetry_dropouts",
        });
    }

    fn on_failover(
        &mut self,
        _now: u64,
        _node: NodeId,
        _replicas_failed: u64,
        redispatched: u64,
        detect_cycles: u64,
    ) {
        self.registry.inc("recovery.failovers");
        self.registry.add("recovery.redispatched", redispatched);
        self.registry
            .observe("recovery.detect_cycles", detect_cycles);
    }

    fn on_replica_restored(&mut self, _now: u64, _node: NodeId, _slot: usize, restore_cycles: u64) {
        self.registry.inc("recovery.replicas_restored");
        self.registry
            .observe("recovery.restore_cycles", restore_cycles);
    }

    fn on_lost(&mut self, _now: u64, _sequence: u64, _model: ModelId, _node: NodeId) {
        self.registry.inc("recovery.lost_requests");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest_events() {
        let mut recorder = TraceRecorder::new(TraceConfig::default().with_capacity(8));
        for sequence in 0..100u64 {
            recorder.on_arrival(sequence, sequence, ModelId::Mnist);
        }
        assert_eq!(recorder.len(), 8, "ring never exceeds capacity");
        let stats = recorder.stats();
        assert_eq!(stats.recorded, 100);
        assert_eq!(stats.overwritten, 92);
        // The survivors are the newest 8 events, oldest first.
        let sequences: Vec<u64> = recorder
            .events()
            .map(|event| match event {
                TraceEvent::Arrival { sequence, .. } => *sequence,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sequences, (92..100).collect::<Vec<u64>>());
        // Registry aggregates are exact regardless of the ring.
        assert_eq!(recorder.metrics().counter("serving.arrivals"), 100);
    }

    #[test]
    fn head_sampling_is_deterministic_and_roughly_proportional() {
        let recorder =
            TraceRecorder::new(TraceConfig::default().with_sample_rate(0.25).with_seed(42));
        let sampled: Vec<u64> = (0..10_000u64).filter(|s| recorder.is_sampled(*s)).collect();
        // Deterministic: a second recorder with the same config agrees.
        let again = TraceRecorder::new(TraceConfig::default().with_sample_rate(0.25).with_seed(42));
        assert!(sampled.iter().all(|s| again.is_sampled(*s)));
        // Roughly a quarter of the population.
        assert!(
            (2_000..3_000).contains(&sampled.len()),
            "got {}",
            sampled.len()
        );
        // A different seed draws a different subset.
        let reseeded =
            TraceRecorder::new(TraceConfig::default().with_sample_rate(0.25).with_seed(43));
        assert!(sampled.iter().any(|s| !reseeded.is_sampled(*s)));
        // Edge rates.
        let all = TraceRecorder::new(TraceConfig::default().with_sample_rate(1.0));
        assert!(all.is_sampled(7));
        let none = TraceRecorder::new(TraceConfig::default().with_sample_rate(0.0));
        assert!(!none.is_sampled(7));
    }

    #[test]
    fn unsampled_requests_skip_the_ring_but_count_in_the_registry() {
        let mut recorder = TraceRecorder::new(TraceConfig::default().with_sample_rate(0.0));
        recorder.on_arrival(0, 1, ModelId::Mnist);
        recorder.on_service_request(5, 1, ModelId::Mnist, 0, NodeId(0), 0);
        recorder.on_service_batch(5, 10, ModelId::Mnist, NodeId(0), 0, 1);
        recorder.on_complete(
            10,
            1,
            ModelId::Mnist,
            PriorityClass::Standard,
            0,
            NodeId(0),
            0,
            None,
        );
        assert!(recorder.is_empty(), "no spans at rate 0");
        assert_eq!(recorder.metrics().counter("serving.completed"), 1);
        assert_eq!(recorder.metrics().counter("serving.batches"), 1);
        assert_eq!(recorder.stats().skipped_requests, 1);
    }

    #[test]
    fn merge_combines_rings_stats_and_registries() {
        let mut a = TraceRecorder::new(TraceConfig::default().with_capacity(4));
        for sequence in 0..3u64 {
            a.on_arrival(sequence, sequence, ModelId::Mnist);
        }
        let mut b = TraceRecorder::new(TraceConfig::default().with_capacity(4));
        for sequence in 10..16u64 {
            b.on_arrival(sequence, sequence, ModelId::Mnist);
        }
        a.merge(&b);
        assert_eq!(a.len(), 4, "merged ring stays bounded");
        let stats = a.stats();
        assert_eq!(stats.recorded, 9, "every event either side ever recorded");
        // b lost 2 to its own wrap; the merge overwrote 3 more in a.
        assert_eq!(stats.overwritten, 5);
        assert_eq!(stats.sampled_requests, 9);
        assert_eq!(a.metrics().counter("serving.arrivals"), 9);
        // The survivors are b's newest retained events, oldest first.
        let sequences: Vec<u64> = a
            .events()
            .map(|event| match event {
                TraceEvent::Arrival { sequence, .. } => *sequence,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sequences, vec![12, 13, 14, 15]);
    }
}
