//! SLO burn-rate alerting: declarative latency objectives evaluated by a
//! multi-window, multi-burn-rate alert engine inside the serving event loop.
//!
//! A [`SloSpec`] states the contract of one model (optionally narrowed to one
//! [`PriorityClass`]): requests should complete within `latency_target`
//! cycles, and the fraction that does should stay at or above `objective`.
//! The complement `1 − objective` is the **error budget**; the **burn rate**
//! of a window is how many times faster than budget the window is spending:
//!
//! ```text
//! burn(window) = bad_fraction(window) / (1 − objective)
//! ```
//!
//! A [`BurnRatePolicy`] pairs a *fast* and a *slow* window (the standard
//! multi-window construction from SRE practice): the alert fires only when
//! **both** windows burn above the threshold — the slow window proves the
//! problem is sustained, the fast window proves it is still happening — and
//! resolves as soon as the fast window recovers, so a long-dead incident
//! cannot keep paging off stale slow-window history. Policies carry a
//! severity: [`AlertSeverity::Page`] for fast, steep burns that exhaust the
//! budget in hours, [`AlertSeverity::Ticket`] for slow leaks.
//!
//! The [`SloEngine`] buckets good/bad counts into fixed-width cycle-aligned
//! ticks held in a bounded ring (memory is O(specs × ring), independent of
//! arrival count) and is evaluated at tick boundaries by the serving loop's
//! `EV_ALERT` events. Every fire/resolve transition is recorded into the
//! run's [`AlertLog`] and delivered through
//! [`ObsSink::on_alert`](crate::obs::ObsSink::on_alert) and
//! [`ControlPlane::on_alert`](crate::telemetry::ControlPlane::on_alert) —
//! the hook the autopilot uses for alert-driven scaling. Everything is
//! integer-count based and deterministic: the same seed produces a
//! byte-identical [`AlertLog::render_text`].

use std::fmt::Write as _;

use npu_sim::Cycles;
use workloads::{ModelId, PriorityClass};

/// How loudly a burn-rate breach should be surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Wake a human: the error budget is burning fast enough to exhaust in
    /// hours.
    Page,
    /// File a ticket: a slow leak that will exhaust the budget in days.
    Ticket,
}

impl AlertSeverity {
    /// Short stable label used in rendered logs and exports.
    pub fn label(self) -> &'static str {
        match self {
            AlertSeverity::Page => "page",
            AlertSeverity::Ticket => "ticket",
        }
    }
}

/// A fire or resolve edge of one (spec, policy) alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Both windows crossed the burn threshold; the alert became active.
    Fired,
    /// The fast window recovered; the alert became inactive.
    Resolved,
}

impl AlertKind {
    /// Short stable label used in rendered logs and exports.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Fired => "fire",
            AlertKind::Resolved => "resolve",
        }
    }
}

/// The latency contract of one model (optionally one priority class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The model the objective governs.
    pub model: ModelId,
    /// Narrow the objective to one priority class; `None` covers every
    /// request of the model.
    pub priority: Option<PriorityClass>,
    /// A request is *good* iff it completes within this many cycles of its
    /// arrival. Requests dropped on deadline expiry are always *bad*.
    pub latency_target: Cycles,
    /// The required good fraction over the rolling horizon, in `[0, 1)` —
    /// e.g. `0.99` leaves a 1% error budget.
    pub objective: f64,
}

impl SloSpec {
    /// An objective over every request of `model`.
    pub fn new(model: ModelId, latency_target: Cycles, objective: f64) -> Self {
        SloSpec {
            model,
            priority: None,
            latency_target,
            objective: if objective.is_finite() {
                objective.clamp(0.0, 0.999_999)
            } else {
                0.0
            },
        }
    }

    /// Narrows the objective to one priority class.
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = Some(priority);
        self
    }

    /// The error budget `1 − objective` (never zero: the objective is
    /// clamped below 1).
    pub fn error_budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }

    /// Whether a completion of (`model`, `priority`) falls under this spec.
    fn covers(&self, model: ModelId, priority: PriorityClass) -> bool {
        self.model == model && self.priority.is_none_or(|p| p == priority)
    }
}

/// One multi-window burn-rate alert rule.
///
/// Fires when **both** the fast and the slow window burn above `threshold`;
/// resolves when the fast window alone drops back to the threshold or below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRatePolicy {
    /// Stable policy name, carried on every transition.
    pub name: &'static str,
    /// How loudly a breach surfaces.
    pub severity: AlertSeverity,
    /// The short "is it still happening" window, in cycles (rounded up to
    /// whole engine ticks).
    pub fast_window: u64,
    /// The long "is it sustained" window, in cycles (rounded up to whole
    /// engine ticks).
    pub slow_window: u64,
    /// Fire when both windows burn error budget at more than this multiple
    /// of the sustainable rate.
    pub threshold: f64,
}

impl BurnRatePolicy {
    /// A named policy; `slow_window` is clamped to at least `fast_window`.
    pub fn new(
        name: &'static str,
        severity: AlertSeverity,
        fast_window: u64,
        slow_window: u64,
        threshold: f64,
    ) -> Self {
        BurnRatePolicy {
            name,
            severity,
            fast_window: fast_window.max(1),
            slow_window: slow_window.max(fast_window.max(1)),
            threshold: if threshold.is_finite() {
                threshold.max(0.0)
            } else {
                0.0
            },
        }
    }

    /// A paging policy: steep burn over a short pair of windows.
    pub fn page(fast_window: u64, slow_window: u64, threshold: f64) -> Self {
        BurnRatePolicy::new(
            "page",
            AlertSeverity::Page,
            fast_window,
            slow_window,
            threshold,
        )
    }

    /// A ticketing policy: shallow burn over a long pair of windows.
    pub fn ticket(fast_window: u64, slow_window: u64, threshold: f64) -> Self {
        BurnRatePolicy::new(
            "ticket",
            AlertSeverity::Ticket,
            fast_window,
            slow_window,
            threshold,
        )
    }
}

/// The SLO-alerting configuration of one serving run: the evaluation tick,
/// the objectives and the burn-rate rules applied to each of them.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Bucket width and evaluation cadence, in cycles.
    pub tick: u64,
    /// The objectives under watch.
    pub specs: Vec<SloSpec>,
    /// The burn-rate rules evaluated against every spec.
    pub policies: Vec<BurnRatePolicy>,
    /// Whether a resolve edge requires the fast window to have seen traffic
    /// (see [`SloConfig::with_resolve_requires_evidence`]). Off by default:
    /// the golden scenarios predate the rule.
    pub resolve_requires_evidence: bool,
}

impl SloConfig {
    /// A configuration evaluating every `tick` cycles, with no specs or
    /// policies yet.
    pub fn new(tick: u64) -> Self {
        SloConfig {
            tick: tick.max(1),
            specs: Vec::new(),
            policies: Vec::new(),
            resolve_requires_evidence: false,
        }
    }

    /// Requires *evidence* of recovery before resolving: an active alert
    /// holds (instead of resolving) while the fast window sees no traffic
    /// at all — a telemetry dropout or a fenced fleet proves nothing about
    /// the objective, and a resolve/re-fire flap on missing frames would
    /// page twice for one incident. Opt-in because the golden alert-log
    /// scenarios predate the rule.
    pub fn with_resolve_requires_evidence(mut self) -> Self {
        self.resolve_requires_evidence = true;
        self
    }

    /// Adds one objective.
    pub fn with_spec(mut self, spec: SloSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds one burn-rate rule.
    pub fn with_policy(mut self, policy: BurnRatePolicy) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds the standard two-rule ladder scaled to the tick: a `page` at
    /// 10× burn over (4, 24) ticks and a `ticket` at 2× burn over
    /// (24, 96) ticks — the classic fast/slow multi-window pairing.
    pub fn with_default_policies(self) -> Self {
        let tick = self.tick;
        self.with_policy(BurnRatePolicy::page(4 * tick, 24 * tick, 10.0))
            .with_policy(BurnRatePolicy::ticket(24 * tick, 96 * tick, 2.0))
    }
}

/// One fire/resolve edge, as recorded in the [`AlertLog`] and delivered to
/// the observability and control-plane hooks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertTransition {
    /// The evaluation tick that produced the edge.
    pub at: Cycles,
    /// The model of the breached (or recovered) objective.
    pub model: ModelId,
    /// The objective's priority narrowing, if any.
    pub priority: Option<PriorityClass>,
    /// The firing policy's severity.
    pub severity: AlertSeverity,
    /// The firing policy's name.
    pub policy: &'static str,
    /// Fire or resolve.
    pub kind: AlertKind,
    /// Burn rate of the fast window at the evaluation.
    pub burn_fast: f64,
    /// Burn rate of the slow window at the evaluation.
    pub burn_slow: f64,
}

/// The deterministic, time-ordered record of every alert edge of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertLog {
    transitions: Vec<AlertTransition>,
}

impl AlertLog {
    /// Appends one edge (the serving loop calls this in evaluation order).
    pub(crate) fn push(&mut self, transition: AlertTransition) {
        self.transitions.push(transition);
    }

    /// Every recorded edge, in evaluation order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// Edges recorded.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether no alert ever fired or resolved.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Fire edges recorded.
    pub fn fired(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.kind == AlertKind::Fired)
            .count()
    }

    /// Resolve edges recorded.
    pub fn resolved(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.kind == AlertKind::Resolved)
            .count()
    }

    /// The first fire at or after `at`, if any — the detection event a
    /// ground-truth breach is scored against.
    pub fn first_fire_after(&self, at: Cycles) -> Option<&AlertTransition> {
        self.transitions
            .iter()
            .find(|t| t.kind == AlertKind::Fired && t.at >= at)
    }

    /// Renders the log as one line per edge, deterministic byte for byte:
    ///
    /// ```text
    /// fire t=24576 model=MNIST priority=interactive policy=page severity=page burn_fast=14.500 burn_slow=11.250
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for t in &self.transitions {
            let _ = write!(
                out,
                "{} t={} model={} priority={} policy={} severity={} ",
                t.kind.label(),
                t.at.get(),
                t.model.name(),
                t.priority.map_or("any", PriorityClass::label),
                t.policy,
                t.severity.label(),
            );
            let _ = writeln!(
                out,
                "burn_fast={:.3} burn_slow={:.3}",
                finite(t.burn_fast),
                finite(t.burn_slow)
            );
        }
        out
    }
}

/// Degrades non-finite burns to 0 so the rendered log stays parseable.
fn finite(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// One tick-wide good/bad bucket of one spec's ring.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Tick index (`at / tick`); `u64::MAX` marks a never-written cell.
    index: u64,
    good: u64,
    bad: u64,
}

const EMPTY_BUCKET: Bucket = Bucket {
    index: u64::MAX,
    good: 0,
    bad: 0,
};

/// The burn-rate alert engine: per-spec bucket rings plus per-(spec, policy)
/// active flags.
///
/// Built by the serving loop from [`SloConfig`]
/// (see [`ServingOptions::with_slo`](crate::ServingOptions::with_slo));
/// drive it directly only in tests and offline analysis.
#[derive(Debug, Clone)]
pub struct SloEngine {
    tick: u64,
    specs: Vec<SloSpec>,
    policies: Vec<BurnRatePolicy>,
    /// Window lengths in ticks, per policy: `(fast, slow)`.
    window_ticks: Vec<(u64, u64)>,
    /// One bucket ring per spec, each `ring_len` cells.
    rings: Vec<Vec<Bucket>>,
    ring_len: u64,
    /// Active flags, indexed `spec * policies.len() + policy`.
    active: Vec<bool>,
    /// Whether resolve edges require the fast window to have seen traffic.
    resolve_requires_evidence: bool,
    evaluations: u64,
}

impl SloEngine {
    /// An engine over `config`'s specs and policies with empty history.
    pub fn new(config: &SloConfig) -> Self {
        let tick = config.tick.max(1);
        let window_ticks: Vec<(u64, u64)> = config
            .policies
            .iter()
            .map(|p| {
                (
                    p.fast_window.div_ceil(tick).max(1),
                    p.slow_window.div_ceil(tick).max(1),
                )
            })
            .collect();
        // The ring must hold the longest slow window; +1 because the bucket
        // currently filling is not yet part of any evaluated window.
        let ring_len = window_ticks
            .iter()
            .map(|(_, slow)| *slow)
            .max()
            .unwrap_or(1)
            + 1;
        SloEngine {
            tick,
            specs: config.specs.clone(),
            policies: config.policies.clone(),
            window_ticks,
            rings: vec![vec![EMPTY_BUCKET; ring_len as usize]; config.specs.len()],
            ring_len,
            active: vec![false; config.specs.len() * config.policies.len()],
            resolve_requires_evidence: config.resolve_requires_evidence,
            evaluations: 0,
        }
    }

    /// Bucket width and evaluation cadence, in cycles.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Whether any (spec, policy) alert is currently active.
    pub fn any_active(&self) -> bool {
        self.active.iter().any(|a| *a)
    }

    /// Records one completion: *good* for every covering spec whose latency
    /// target it met, *bad* for the rest.
    pub fn observe_latency(
        &mut self,
        at: u64,
        model: ModelId,
        priority: PriorityClass,
        latency: u64,
    ) {
        let bucket = at / self.tick;
        for (spec_index, spec) in self.specs.iter().enumerate() {
            if spec.covers(model, priority) {
                let good = latency <= spec.latency_target.get();
                bump(&mut self.rings[spec_index], self.ring_len, bucket, good);
            }
        }
    }

    /// Records one deadline-expired drop: *bad* for every covering spec (a
    /// request that never completed can meet no latency target).
    pub fn observe_expired(&mut self, at: u64, model: ModelId, priority: PriorityClass) {
        let bucket = at / self.tick;
        for (spec_index, spec) in self.specs.iter().enumerate() {
            if spec.covers(model, priority) {
                bump(&mut self.rings[spec_index], self.ring_len, bucket, false);
            }
        }
    }

    /// Evaluates every (spec, policy) pair at tick boundary `now`, appending
    /// fire/resolve edges to `out` in (spec, policy) declaration order.
    pub fn evaluate(&mut self, now: u64, out: &mut Vec<AlertTransition>) {
        self.evaluations += 1;
        // The evaluated history ends at the last *complete* bucket: the
        // bucket containing `now` is still filling.
        let next_bucket = now / self.tick;
        for (spec_index, spec) in self.specs.iter().enumerate() {
            let ring = &self.rings[spec_index];
            for (policy_index, policy) in self.policies.iter().enumerate() {
                let (fast_ticks, slow_ticks) = self.window_ticks[policy_index];
                let (burn_fast, fast_total) =
                    burn_over(ring, self.ring_len, next_bucket, fast_ticks, spec);
                let (burn_slow, _) = burn_over(ring, self.ring_len, next_bucket, slow_ticks, spec);
                let flag = &mut self.active[spec_index * self.policies.len() + policy_index];
                let breached = burn_fast > policy.threshold && burn_slow > policy.threshold;
                // With `resolve_requires_evidence`, resolving demands proof
                // of recovery: a fast window that saw no traffic at all
                // (telemetry dropout, fenced fleet) proves nothing, so an
                // active alert holds rather than false-resolving on missing
                // frames.
                let resolvable = fast_total > 0 || !self.resolve_requires_evidence;
                let kind = if !*flag && breached {
                    *flag = true;
                    AlertKind::Fired
                } else if *flag && resolvable && burn_fast <= policy.threshold {
                    *flag = false;
                    AlertKind::Resolved
                } else {
                    continue;
                };
                out.push(AlertTransition {
                    at: Cycles(now),
                    model: spec.model,
                    priority: spec.priority,
                    severity: policy.severity,
                    policy: policy.name,
                    kind,
                    burn_fast,
                    burn_slow,
                });
            }
        }
    }
}

/// Adds one observation to the bucket `index` of `ring`, evicting whatever
/// older bucket occupied the slot.
fn bump(ring: &mut [Bucket], ring_len: u64, index: u64, good: bool) {
    let cell = &mut ring[(index % ring_len) as usize];
    if cell.index != index {
        *cell = Bucket {
            index,
            good: 0,
            bad: 0,
        };
    }
    if good {
        cell.good += 1;
    } else {
        cell.bad += 1;
    }
}

/// The burn rate of the `window_ticks` complete buckets ending just before
/// `next_bucket`, plus the observation count it was computed over:
/// `(bad_fraction / error_budget, total)`, `(0.0, 0)` when the window saw no
/// traffic — the caller must treat an empty window as *absence of evidence*,
/// not as a zero burn rate.
fn burn_over(
    ring: &[Bucket],
    ring_len: u64,
    next_bucket: u64,
    window_ticks: u64,
    spec: &SloSpec,
) -> (f64, u64) {
    let first = next_bucket.saturating_sub(window_ticks);
    let mut good = 0u64;
    let mut bad = 0u64;
    for index in first..next_bucket {
        let cell = &ring[(index % ring_len) as usize];
        if cell.index == index {
            good += cell.good;
            bad += cell.bad;
        }
    }
    let total = good + bad;
    if total == 0 {
        return (0.0, 0);
    }
    ((bad as f64 / total as f64) / spec.error_budget(), total)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: u64 = 1_000;

    fn config(threshold: f64) -> SloConfig {
        SloConfig::new(TICK)
            .with_spec(SloSpec::new(ModelId::Mnist, Cycles(500), 0.9))
            .with_policy(BurnRatePolicy::page(2 * TICK, 6 * TICK, threshold))
    }

    fn drive(engine: &mut SloEngine, tick_index: u64, good: u64, bad: u64) -> Vec<AlertTransition> {
        let at = tick_index * TICK + TICK / 2;
        for _ in 0..good {
            engine.observe_latency(at, ModelId::Mnist, PriorityClass::Standard, 100);
        }
        for _ in 0..bad {
            engine.observe_latency(at, ModelId::Mnist, PriorityClass::Standard, 10_000);
        }
        let mut out = Vec::new();
        engine.evaluate((tick_index + 1) * TICK, &mut out);
        out
    }

    #[test]
    fn guaranteed_breach_fires_within_the_fast_window() {
        // 100% bad traffic burns at 1/0.1 = 10× budget; threshold 5 must
        // fire as soon as the fast window (2 ticks) is fully breached —
        // a false negative here is an engine bug, not a tuning problem.
        let mut engine = SloEngine::new(&config(5.0));
        let mut fired_at_tick = None;
        for tick_index in 0..10 {
            let out = drive(&mut engine, tick_index, 0, 50);
            if let Some(first) = out.first() {
                assert_eq!(first.kind, AlertKind::Fired);
                fired_at_tick = Some(tick_index);
                break;
            }
        }
        let fired = fired_at_tick.expect("a guaranteed breach must fire");
        assert!(
            fired < 2,
            "fired only after tick {fired}, beyond the 2-tick fast window"
        );
    }

    #[test]
    fn healthy_traffic_never_fires() {
        // 1% bad against a 10% budget burns at 0.1×: far under threshold.
        let mut engine = SloEngine::new(&config(1.0));
        for tick_index in 0..50 {
            let out = drive(&mut engine, tick_index, 99, 1);
            assert!(out.is_empty(), "healthy tick {tick_index} fired {out:?}");
        }
        assert!(!engine.any_active());
        assert_eq!(engine.evaluations(), 50);
    }

    #[test]
    fn fires_once_then_resolves_when_the_fast_window_recovers() {
        let mut engine = SloEngine::new(&config(5.0));
        // Breach for 4 ticks: exactly one fire edge.
        let mut fires = 0;
        for tick_index in 0..4 {
            fires += drive(&mut engine, tick_index, 0, 50).len();
        }
        assert_eq!(fires, 1, "an active alert must not re-fire every tick");
        assert!(engine.any_active());
        // Recover: once the fast window is clean the alert resolves, even
        // though the slow (6-tick) window still remembers the breach.
        let mut resolved = None;
        for tick_index in 4..10 {
            let out = drive(&mut engine, tick_index, 50, 0);
            if let Some(first) = out.first() {
                assert_eq!(first.kind, AlertKind::Resolved);
                resolved = Some(tick_index);
                break;
            }
        }
        let resolved = resolved.expect("recovered traffic must resolve");
        assert!(resolved <= 6, "resolve lagged the fast window: {resolved}");
        assert!(!engine.any_active());
    }

    #[test]
    fn slow_window_suppresses_transient_blips() {
        // One bad tick inside an otherwise healthy run: the fast window
        // breaches but the 6-tick slow window dilutes it below threshold.
        let mut engine = SloEngine::new(&config(5.0));
        for tick_index in 0..4 {
            assert!(drive(&mut engine, tick_index, 99, 1).is_empty());
        }
        let out = drive(&mut engine, 4, 0, 30);
        assert!(
            out.is_empty(),
            "one bad tick against clean slow history must not page: {out:?}"
        );
    }

    #[test]
    fn specs_narrow_by_model_and_priority() {
        let config = SloConfig::new(TICK)
            .with_spec(
                SloSpec::new(ModelId::Mnist, Cycles(500), 0.9)
                    .with_priority(PriorityClass::Interactive),
            )
            .with_policy(BurnRatePolicy::page(TICK, 2 * TICK, 2.0));
        let mut engine = SloEngine::new(&config);
        // Bad traffic on the wrong model and the wrong priority: no data
        // reaches the spec, so nothing can fire.
        for tick_index in 0..4u64 {
            let at = tick_index * TICK;
            engine.observe_latency(at, ModelId::Bert, PriorityClass::Interactive, 10_000);
            engine.observe_latency(at, ModelId::Mnist, PriorityClass::Batch, 10_000);
            engine.observe_expired(at, ModelId::Bert, PriorityClass::Interactive);
            let mut out = Vec::new();
            engine.evaluate((tick_index + 1) * TICK, &mut out);
            assert!(out.is_empty());
        }
        // Matching traffic fires; expiries count as bad.
        for tick_index in 4..8u64 {
            engine.observe_expired(
                tick_index * TICK,
                ModelId::Mnist,
                PriorityClass::Interactive,
            );
            let mut out = Vec::new();
            engine.evaluate((tick_index + 1) * TICK, &mut out);
            if !out.is_empty() {
                assert_eq!(out[0].kind, AlertKind::Fired);
                return;
            }
        }
        panic!("matching expiries never fired the narrowed spec");
    }

    #[test]
    fn render_text_is_deterministic_and_stable() {
        let mut log = AlertLog::default();
        log.push(AlertTransition {
            at: Cycles(24_576),
            model: ModelId::Mnist,
            priority: Some(PriorityClass::Interactive),
            severity: AlertSeverity::Page,
            policy: "page",
            kind: AlertKind::Fired,
            burn_fast: 14.5,
            burn_slow: 11.25,
        });
        log.push(AlertTransition {
            at: Cycles(40_960),
            model: ModelId::Mnist,
            priority: None,
            severity: AlertSeverity::Ticket,
            policy: "ticket",
            kind: AlertKind::Resolved,
            burn_fast: 0.5,
            burn_slow: f64::NAN,
        });
        let text = log.render_text();
        assert_eq!(text, log.render_text(), "rendering must be deterministic");
        assert_eq!(
            text,
            "fire t=24576 model=MNIST priority=interactive policy=page severity=page \
             burn_fast=14.500 burn_slow=11.250\n\
             resolve t=40960 model=MNIST priority=any policy=ticket severity=ticket \
             burn_fast=0.500 burn_slow=0.000\n"
        );
        assert_eq!(log.fired(), 1);
        assert_eq!(log.resolved(), 1);
        assert!(log.first_fire_after(Cycles(0)).is_some());
        assert!(log.first_fire_after(Cycles(30_000)).is_none());
    }

    #[test]
    fn ring_memory_is_bounded_by_the_slow_window() {
        let config = config(5.0);
        let mut engine = SloEngine::new(&config);
        // Feed a million ticks: the ring holds slow+1 buckets regardless.
        for tick_index in 0..1_000u64 {
            engine.observe_latency(
                tick_index * TICK * 1_000,
                ModelId::Mnist,
                PriorityClass::Standard,
                100,
            );
        }
        assert_eq!(engine.rings[0].len(), 7, "6 slow ticks + the filling one");
    }
}
