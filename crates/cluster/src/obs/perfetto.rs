//! Chrome `trace_event` JSON export (Perfetto-compatible) and a structural
//! validator for the exported traces.
//!
//! The exporter maps the simulated fleet onto the Chrome trace model:
//!
//! * **pid** — board: node `n` exports as pid `n + 1`; pid 0 is the
//!   fleet-level pseudo-process hosting the router lane (tid 0), the
//!   control-plane lane (tid 1) and the counter tracks;
//! * **tid** — replica slot (the event loop's stable replica index), so a
//!   replica that migrates keeps its lane per board;
//! * **flow events** (`ph: s/t/f`, one id per request sequence number) stitch
//!   a sampled request's arrival → queue → service → completion across
//!   replicas and boards;
//! * **counters** (`ph: C`) track fleet queue depth, in-flight batch
//!   occupancy, live replicas, in-flight migrations and resident HBM bytes
//!   at every telemetry tick.
//!
//! Timestamps are raw simulation cycles emitted as integer `ts`/`dur`
//! microsecond fields (1 cycle = 1 µs in the viewer; only relative scale
//! matters). Everything is emitted in deterministic order — ring order for
//! events, sorted order for metadata — so the same recorder state always
//! serializes to the same bytes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::obs::trace::TraceEvent;
use crate::obs::TraceRecorder;
use crate::NodeId;

/// The fleet-level pseudo-process (router + control lanes, counter tracks).
const FLEET_PID: u64 = 0;
/// Router lane on the fleet pseudo-process.
const ROUTER_TID: u64 = 0;
/// Control-plane lane on the fleet pseudo-process.
const CONTROL_TID: u64 = 1;

fn board_pid(node: NodeId) -> u64 {
    node.0 as u64 + 1
}

/// Serializes the recorder's retained events, metadata and metrics registry
/// as Chrome `trace_event` JSON. The output opens directly in
/// <https://ui.perfetto.dev> (or `chrome://tracing`) and is byte-identical
/// for identical recorder state.
pub fn export_chrome_trace(recorder: &TraceRecorder) -> String {
    let mut processes: BTreeSet<u64> = BTreeSet::new();
    let mut threads: BTreeSet<(u64, u64)> = BTreeSet::new();
    processes.insert(FLEET_PID);
    threads.insert((FLEET_PID, ROUTER_TID));
    for event in recorder.events() {
        match event {
            TraceEvent::Arrival { .. } | TraceEvent::Reject { .. } => {}
            TraceEvent::Queue { node, slot, .. }
            | TraceEvent::Service { node, slot, .. }
            | TraceEvent::Complete { node, slot, .. }
            | TraceEvent::Expire { node, slot, .. } => {
                processes.insert(board_pid(*node));
                threads.insert((board_pid(*node), *slot as u64));
            }
            TraceEvent::CopyRound {
                source, dest, slot, ..
            }
            | TraceEvent::StopCopy {
                source, dest, slot, ..
            } => {
                processes.insert(board_pid(*source));
                processes.insert(board_pid(*dest));
                threads.insert((board_pid(*source), *slot as u64));
            }
            TraceEvent::Control { .. } | TraceEvent::Tick { .. } => {
                threads.insert((FLEET_PID, CONTROL_TID));
            }
        }
    }

    let mut out = String::with_capacity(256 + recorder.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"neu10 cluster::obs\"},\"neu10Metrics\":");
    recorder.metrics().render_json(&mut out);
    out.push_str(",\"traceEvents\":[");
    let mut first = true;

    for pid in &processes {
        let name = if *pid == FLEET_PID {
            "fleet".to_string()
        } else {
            format!("board {}", pid - 1)
        };
        emit(&mut out, &mut first, |out| {
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
            );
        });
    }
    for (pid, tid) in &threads {
        let name = if *pid == FLEET_PID {
            if *tid == ROUTER_TID {
                "router".to_string()
            } else {
                "control-plane".to_string()
            }
        } else {
            format!("replica {tid}")
        };
        emit(&mut out, &mut first, |out| {
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
            );
        });
    }

    for event in recorder.events() {
        match event {
            TraceEvent::Arrival {
                at,
                sequence,
                model,
            } => {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"arrival\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{at},\"dur\":1,\"pid\":{FLEET_PID},\"tid\":{ROUTER_TID},\"args\":{{\"seq\":{sequence},\"model\":\"{}\"}}}}",
                        model.name()
                    );
                });
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"s\",\"id\":{sequence},\"ts\":{at},\"pid\":{FLEET_PID},\"tid\":{ROUTER_TID}}}"
                    );
                });
            }
            TraceEvent::Reject {
                at,
                sequence,
                model,
                reason,
            } => {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"reject\",\"cat\":\"request\",\"ph\":\"i\",\"ts\":{at},\"pid\":{FLEET_PID},\"tid\":{ROUTER_TID},\"s\":\"t\",\"args\":{{\"seq\":{sequence},\"model\":\"{}\",\"reason\":\"{}\"}}}}",
                        model.name(),
                        reason.label()
                    );
                });
            }
            TraceEvent::Queue {
                from,
                until,
                sequence,
                model,
                node,
                slot,
            } => {
                let pid = board_pid(*node);
                let dur = (until - from).max(1);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"queue\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{from},\"dur\":{dur},\"pid\":{pid},\"tid\":{slot},\"args\":{{\"seq\":{sequence},\"model\":\"{}\"}}}}",
                        model.name()
                    );
                });
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"t\",\"id\":{sequence},\"ts\":{from},\"pid\":{pid},\"tid\":{slot}}}"
                    );
                });
            }
            TraceEvent::Service {
                from,
                until,
                model,
                node,
                slot,
                batch,
            } => {
                let pid = board_pid(*node);
                let dur = (until - from).max(1);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"serve\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{from},\"dur\":{dur},\"pid\":{pid},\"tid\":{slot},\"args\":{{\"model\":\"{}\",\"batch\":{batch}}}}}",
                        model.name()
                    );
                });
            }
            TraceEvent::Complete {
                at,
                sequence,
                node,
                slot,
                deadline_met,
            } => {
                let pid = board_pid(*node);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{sequence},\"ts\":{at},\"pid\":{pid},\"tid\":{slot}"
                    );
                    if let Some(met) = deadline_met {
                        let _ = write!(out, ",\"args\":{{\"deadline_met\":{met}}}");
                    }
                    out.push('}');
                });
            }
            TraceEvent::Expire {
                at,
                sequence,
                model,
                node,
                slot,
            } => {
                let pid = board_pid(*node);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"expire\",\"cat\":\"request\",\"ph\":\"i\",\"ts\":{at},\"pid\":{pid},\"tid\":{slot},\"s\":\"t\",\"args\":{{\"seq\":{sequence},\"model\":\"{}\"}}}}",
                        model.name()
                    );
                });
            }
            TraceEvent::CopyRound {
                from,
                until,
                source,
                dest,
                slot,
                round,
                bytes,
            } => {
                let pid = board_pid(*source);
                let dur = (until - from).max(1);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"copy-round\",\"cat\":\"migration\",\"ph\":\"X\",\"ts\":{from},\"dur\":{dur},\"pid\":{pid},\"tid\":{slot},\"args\":{{\"round\":{round},\"bytes\":{bytes},\"to\":\"board {}\"}}}}",
                        dest.0
                    );
                });
            }
            TraceEvent::StopCopy {
                from,
                until,
                source,
                dest,
                slot,
                bytes,
                mode,
                converged,
            } => {
                let pid = board_pid(*source);
                let dur = (until - from).max(1);
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"stop-and-copy\",\"cat\":\"migration\",\"ph\":\"X\",\"ts\":{from},\"dur\":{dur},\"pid\":{pid},\"tid\":{slot},\"args\":{{\"mode\":\"{}\",\"converged\":{converged},\"state_bytes\":{bytes},\"to\":\"board {}\"}}}}",
                        mode.label(),
                        dest.0
                    );
                });
            }
            TraceEvent::Control {
                at,
                kind,
                node,
                dest,
                model,
            } => {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"control\",\"ph\":\"i\",\"ts\":{at},\"pid\":{FLEET_PID},\"tid\":{CONTROL_TID},\"s\":\"t\",\"args\":{{",
                        kind.label()
                    );
                    let mut any = false;
                    if let Some(node) = node {
                        let _ = write!(out, "\"node\":{}", node.0);
                        any = true;
                    }
                    if let Some(dest) = dest {
                        if any {
                            out.push(',');
                        }
                        let _ = write!(out, "\"to\":{}", dest.0);
                        any = true;
                    }
                    if let Some(model) = model {
                        if any {
                            out.push(',');
                        }
                        let _ = write!(out, "\"model\":\"{}\"", model.name());
                    }
                    out.push_str("}}");
                });
            }
            TraceEvent::Tick { at, counters } => {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"name\":\"tick\",\"cat\":\"telemetry\",\"ph\":\"i\",\"ts\":{at},\"pid\":{FLEET_PID},\"tid\":{CONTROL_TID},\"s\":\"t\"}}"
                    );
                });
                for (name, value) in [
                    ("fleet.queued", counters.queued),
                    ("fleet.in_flight", counters.in_flight),
                    ("fleet.live_replicas", counters.live_replicas),
                    ("fleet.migrations_in_flight", counters.migrations_in_flight),
                    ("fleet.resident_bytes", counters.resident_bytes),
                ] {
                    emit(&mut out, &mut first, |out| {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{at},\"pid\":{FLEET_PID},\"args\":{{\"value\":{value}}}}}"
                        );
                    });
                }
            }
        }
    }
    out.push_str("]}");
    out
}

fn emit(out: &mut String, first: &mut bool, write: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write(out);
}

/// Structural facts about an exported trace, from
/// [`validate_chrome_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceValidation {
    /// Total `traceEvents` entries (metadata included).
    pub events: usize,
    /// Complete spans (`ph: "X"`) per span name.
    pub complete_spans: BTreeMap<String, usize>,
    /// Instant events (`ph: "i"`) per name.
    pub instants: BTreeMap<String, usize>,
    /// Flow events (`ph: "s"/"t"/"f"`).
    pub flow_events: usize,
    /// Counter samples (`ph: "C"`).
    pub counter_events: usize,
    /// Metadata records (`ph: "M"`).
    pub metadata_events: usize,
}

impl TraceValidation {
    /// Fails unless at least one complete span of each `names` entry exists.
    pub fn require_complete_spans(&self, names: &[&str]) -> Result<(), String> {
        for name in names {
            if self.complete_spans.get(*name).copied().unwrap_or(0) == 0 {
                return Err(format!("trace has no complete \"{name}\" span"));
            }
        }
        Ok(())
    }
}

/// Parses `json` as Chrome `trace_event` JSON and checks its structure:
/// a top-level object with a `traceEvents` array whose entries are objects
/// carrying a `ph` phase, with numeric `ts`/`dur` on complete spans. Returns
/// per-phase counts for downstream assertions ("≥ 1 serve span", …).
pub fn validate_chrome_trace(json: &str) -> Result<TraceValidation, String> {
    let value = parse_json(json)?;
    let Json::Object(top) = &value else {
        return Err("top level is not an object".into());
    };
    let Some(Json::Array(events)) = field(top, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut validation = TraceValidation {
        events: events.len(),
        ..TraceValidation::default()
    };
    for (index, event) in events.iter().enumerate() {
        let Json::Object(entries) = event else {
            return Err(format!("traceEvents[{index}] is not an object"));
        };
        let Some(Json::String(ph)) = field(entries, "ph") else {
            return Err(format!("traceEvents[{index}] has no ph"));
        };
        let name = match field(entries, "name") {
            Some(Json::String(name)) => name.clone(),
            _ => String::new(),
        };
        match ph.as_str() {
            "X" => {
                let ts = field(entries, "ts").and_then(Json::as_number);
                let dur = field(entries, "dur").and_then(Json::as_number);
                if ts.is_none() || dur.is_none() {
                    return Err(format!("complete span {index} lacks numeric ts/dur"));
                }
                *validation.complete_spans.entry(name).or_insert(0) += 1;
            }
            "i" => {
                *validation.instants.entry(name).or_insert(0) += 1;
            }
            "s" | "t" | "f" => validation.flow_events += 1,
            "C" => validation.counter_events += 1,
            "M" => validation.metadata_events += 1,
            other => return Err(format!("traceEvents[{index}] has unknown ph {other:?}")),
        }
    }
    Ok(validation)
}

fn field<'a>(entries: &'a [(String, Json)], name: &str) -> Option<&'a Json> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
}

/// A parsed JSON value (internal to validation; not a general-purpose API).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A minimal, strict recursive-descent JSON parser — enough to validate the
/// exporter's output (and any well-formed JSON) without external crates.
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::String(key) = parse_value(bytes, pos)? else {
                    return Err(format!("object key at byte {pos} is not a string"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&byte) => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let start = *pos;
                        let len = match byte {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let chunk = bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                        *pos += len;
                    }
                }
            }
        }
        Some(b't') => literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(bytes, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
            text.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceConfig;
    use workloads::ModelId;

    #[test]
    fn parser_round_trips_the_basics() {
        let value = parse_json("{\"a\":[1,2.5,-3],\"b\":\"x\\ny\",\"c\":true,\"d\":null,\"e\":{}}")
            .unwrap();
        let Json::Object(entries) = value else {
            panic!("not an object")
        };
        assert_eq!(
            field(&entries, "a"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-3.0)
            ]))
        );
        assert_eq!(field(&entries, "b"), Some(&Json::String("x\ny".into())));
        assert_eq!(field(&entries, "c"), Some(&Json::Bool(true)));
        assert_eq!(field(&entries, "d"), Some(&Json::Null));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn export_of_a_synthetic_recorder_validates() {
        use crate::obs::ObsSink;
        let mut recorder = TraceRecorder::new(TraceConfig::default());
        recorder.on_arrival(0, 1, ModelId::Mnist);
        recorder.on_dispatch(0, 1, ModelId::Mnist, NodeId(0), 0);
        recorder.on_service_request(10, 1, ModelId::Mnist, 0, NodeId(0), 0);
        recorder.on_service_batch(10, 50, ModelId::Mnist, NodeId(0), 0, 1);
        recorder.on_complete(
            50,
            1,
            ModelId::Mnist,
            workloads::PriorityClass::Standard,
            0,
            NodeId(0),
            0,
            Some(true),
        );
        let json = recorder.export_chrome_trace();
        let validation = validate_chrome_trace(&json).expect("valid trace");
        validation
            .require_complete_spans(&["arrival", "queue", "serve"])
            .unwrap();
        assert!(validation.flow_events >= 3, "s + t + f flow chain");
        assert!(validation.metadata_events >= 3, "process + thread names");
        // Byte-identical re-export.
        assert_eq!(json, recorder.export_chrome_trace());
    }
}
