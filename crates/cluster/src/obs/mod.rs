//! Fleet observability: structured tracing, a metrics registry and
//! Chrome/Perfetto export for the serving simulator.
//!
//! The serving event loop is instrumented behind the [`ObsSink`] trait. The
//! loop is generic over the sink and the default implementation of every
//! hook is empty, so [`ClusterServingSim::run`](crate::ClusterServingSim::run)
//! monomorphizes against [`NoopSink`] and compiles to *exactly* the
//! uninstrumented loop — zero cost, zero allocations, bit-identical reports
//! (the golden-digest suite locks this). Passing a [`TraceRecorder`] to
//! [`ClusterServingSim::run_observed`](crate::ClusterServingSim::run_observed)
//! turns the same hooks into:
//!
//! * a **span trace** — per-request lifecycle (arrival → dispatch/reject →
//!   queue → service → complete/expire), per-copy-round migration spans,
//!   control-action and telemetry-tick instants — recorded into a bounded
//!   ring with seeded head-sampling, so trace memory is `O(capacity)` at any
//!   arrival count;
//! * an exact **metrics registry** ([`MetricsRegistry`]) — named counters,
//!   gauges and quantile-sketch histograms accumulated over *every* event,
//!   sampled or not;
//! * a **Chrome `trace_event` JSON export** ([`export_chrome_trace`]) that
//!   opens directly in <https://ui.perfetto.dev>: pid = board, tid = replica
//!   slot, flow events stitching each sampled request from dispatch to
//!   completion across replicas and migrations, plus fleet-level counter
//!   tracks (queue depth, in-flight batch occupancy, resident HBM bytes,
//!   in-flight migrations).
//!
//! On top of the whole-run layer sits the **temporal** layer added by this
//! module's `timeseries`/`slo`/`openmetrics` submodules:
//!
//! * [`TimeSeriesRecorder`] — the same hooks aggregated into fixed-width
//!   cycle-aligned windows per (metric, label set), held in a bounded
//!   overwrite-oldest ring so memory is `O(series × ring)` at any arrival
//!   count;
//! * [`SloEngine`] — declarative [`SloSpec`]s evaluated by paired fast/slow
//!   burn-rate windows ([`BurnRatePolicy`]) inside the event loop, emitting
//!   a deterministic [`AlertLog`] of fire/resolve edges that the control
//!   plane can react to;
//! * [`export_openmetrics`] / [`export_timeseries_openmetrics`] — an
//!   OpenMetrics text exposition over registry and time-series state, with
//!   [`validate_openmetrics`] as the strict dependency-free parser.

mod openmetrics;
mod perfetto;
mod registry;
mod slo;
mod timeseries;
mod trace;

pub use openmetrics::{
    export_openmetrics, export_timeseries_openmetrics, validate_openmetrics, OpenMetricsSummary,
};
pub use perfetto::{export_chrome_trace, validate_chrome_trace, TraceValidation};
pub use registry::{MetricsRegistry, METRIC_NAMES};
pub use slo::{
    AlertKind, AlertLog, AlertSeverity, AlertTransition, BurnRatePolicy, SloConfig, SloEngine,
    SloSpec,
};
pub use timeseries::{SeriesLabels, TimeSeriesConfig, TimeSeriesRecorder, TimeSeriesStats};
pub use trace::{TraceConfig, TraceRecorder, TraceStats};

use workloads::{ModelId, PriorityClass};

use crate::fault::FaultEvent;
use crate::migration::MigrationRecord;
use crate::telemetry::{ControlAction, TelemetryFrame};
use crate::NodeId;

/// Why the router turned an arrival away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No live replica serves the model.
    NoReplica,
    /// Every candidate replica was over the admission-control queue bound.
    Overload,
}

impl RejectReason {
    /// Short stable label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::NoReplica => "no-replica",
            RejectReason::Overload => "overload",
        }
    }
}

/// Fleet-wide gauges computed at a telemetry tick for the counter tracks.
///
/// Gathered by the event loop only when the sink is
/// [`active`](ObsSink::active), so disabled runs never pay for the scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Requests waiting in replica queues.
    pub queued: u64,
    /// Requests in service across all in-flight batches.
    pub in_flight: u64,
    /// Live (non-retired) replicas.
    pub live_replicas: u64,
    /// Replicas with a migration in flight (pre-copy rounds or a pending
    /// drain-then-move).
    pub migrations_in_flight: u64,
    /// Bytes of vNPU state (SRAM + HBM working set) resident across live
    /// replicas.
    pub resident_bytes: u64,
}

/// The serving event loop's instrumentation surface.
///
/// Every hook has an empty default body: a sink only overrides what it
/// consumes, and the [`NoopSink`] overrides nothing, which lets the
/// monomorphized disabled path fold every call site away. Hooks receive
/// deterministic simulation timestamps (cycles), never wall-clock time, so
/// anything recorded is reproducible run-to-run.
///
/// Hook order mirrors the event loop: request hooks fire in dispatch order,
/// [`on_service_request`](ObsSink::on_service_request) fires for each batch
/// member immediately before the batch's single
/// [`on_service_batch`](ObsSink::on_service_batch), and
/// [`on_tick`](ObsSink::on_tick) fires after the telemetry frame is built but
/// before the control plane acts on it.
#[allow(unused_variables)]
pub trait ObsSink {
    /// Whether the sink wants optional, costly-to-gather data (batch member
    /// iteration, [`FleetCounters`] scans). `false` — the default — lets the
    /// event loop skip that work entirely.
    fn active(&self) -> bool {
        false
    }

    /// A trace arrival entered the router.
    fn on_arrival(&mut self, now: u64, sequence: u64, model: ModelId) {}

    /// The router dispatched the arrival to `slot` on `node`.
    fn on_dispatch(&mut self, now: u64, sequence: u64, model: ModelId, node: NodeId, slot: usize) {}

    /// The router turned the arrival away.
    fn on_reject(&mut self, now: u64, sequence: u64, model: ModelId, reason: RejectReason) {}

    /// A queued request left the queue into a forming batch (its queue span
    /// is `arrived..start`).
    fn on_service_request(
        &mut self,
        start: u64,
        sequence: u64,
        model: ModelId,
        arrived: u64,
        node: NodeId,
        slot: usize,
    ) {
    }

    /// A batch of `batch` requests started service, finishing at `finish`.
    fn on_service_batch(
        &mut self,
        start: u64,
        finish: u64,
        model: ModelId,
        node: NodeId,
        slot: usize,
        batch: usize,
    ) {
    }

    /// A request completed service; `deadline_met` is `None` for requests
    /// that carried no deadline.
    #[allow(clippy::too_many_arguments)]
    fn on_complete(
        &mut self,
        now: u64,
        sequence: u64,
        model: ModelId,
        priority: PriorityClass,
        arrived: u64,
        node: NodeId,
        slot: usize,
        deadline_met: Option<bool>,
    ) {
    }

    /// A queued request was dropped unserved because its deadline expired.
    fn on_expire(
        &mut self,
        now: u64,
        sequence: u64,
        model: ModelId,
        arrived: u64,
        node: NodeId,
        slot: usize,
    ) {
    }

    /// A live pre-copy round started streaming `bytes` over the
    /// `from → to` link, ending at `finish`. Round 0 is the full-state copy.
    #[allow(clippy::too_many_arguments)]
    fn on_copy_round(
        &mut self,
        start: u64,
        finish: u64,
        from: NodeId,
        to: NodeId,
        slot: usize,
        round: u32,
        bytes: u64,
    ) {
    }

    /// A migration executed its dark window (`start..finish` is the
    /// downtime); `record` carries the full per-mode accounting.
    fn on_stop_copy(&mut self, start: u64, finish: u64, slot: usize, record: &MigrationRecord) {}

    /// A requested migration was refused (destination capacity raced away or
    /// the placement went stale).
    fn on_migration_rejected(&mut self, now: u64, slot: usize) {}

    /// The control plane issued (or the operator scheduled) `action`.
    fn on_control(&mut self, now: u64, action: &ControlAction) {}

    /// A telemetry tick fired with the settled `frame`; `counters` is only
    /// gathered when [`active`](ObsSink::active) is `true`.
    fn on_tick(&mut self, now: u64, frame: &TelemetryFrame, counters: &FleetCounters) {}

    /// The SLO burn-rate engine emitted an alert edge (fire or resolve).
    /// Only fires when the run was configured with
    /// [`ServingOptions::with_slo`](crate::ServingOptions::with_slo).
    fn on_alert(&mut self, now: u64, alert: &AlertTransition) {}

    /// A scheduled fault was injected. Only fires when the run was
    /// configured with
    /// [`ServingOptions::with_faults`](crate::ServingOptions::with_faults).
    fn on_fault(&mut self, now: u64, fault: &FaultEvent) {}

    /// The missed-frame detector declared `node` dead and failed it over:
    /// `replicas_failed` replicas were fenced and retired,
    /// `redispatched` orphaned requests moved to surviving replicas, and the
    /// fault went undetected for `detect_cycles`.
    fn on_failover(
        &mut self,
        now: u64,
        node: NodeId,
        replicas_failed: u64,
        redispatched: u64,
        detect_cycles: u64,
    ) {
    }

    /// Failover re-placed a replacement replica at `slot` on `node`; its
    /// state restore occupies the interconnect for `restore_cycles`.
    fn on_replica_restored(&mut self, now: u64, node: NodeId, slot: usize, restore_cycles: u64) {}

    /// An admitted request was lost to a fault (no surviving replica could
    /// take it, or it was still marooned on an undetected dead board at run
    /// end). `node` is the board the request died on.
    fn on_lost(&mut self, now: u64, sequence: u64, model: ModelId, node: NodeId) {}
}

/// The disabled sink: every hook is the empty default, so the event loop
/// monomorphized against it is the uninstrumented loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {}
