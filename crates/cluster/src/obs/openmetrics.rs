//! OpenMetrics / Prometheus text-exposition export and validation.
//!
//! [`export_openmetrics`] renders a [`MetricsRegistry`] and
//! [`export_timeseries_openmetrics`] renders a [`TimeSeriesRecorder`] in the
//! OpenMetrics text format: `# TYPE` metadata per family, counter samples
//! with the `_total` suffix, summaries as `{quantile="…"}` samples plus
//! `_count`/`_sum`, label sets rendered `{key="value",…}` with the standard
//! escapes, and the mandatory `# EOF` terminator. Metric names translate
//! from the registry's dotted taxonomy by replacing `.` with `_`
//! (`serving.latency_cycles` → `serving_latency_cycles`), staying inside
//! OpenMetrics' `[a-zA-Z_:][a-zA-Z0-9_:]*` name alphabet. Time-series
//! samples carry their window index as the explicit OpenMetrics timestamp,
//! so one exposition transports the whole retained history of every series.
//!
//! Both exporters iterate `BTreeMap`-ordered state and number cycles, never
//! the wall clock — the same run exports **byte-identical** text however
//! many times it is rendered, which the golden tests lock.
//!
//! [`validate_openmetrics`] is the strict dependency-free parser mirroring
//! [`validate_chrome_trace`](crate::obs::validate_chrome_trace): it checks
//! name/label/escape syntax, `# TYPE`-before-samples ordering, per-type
//! suffix discipline (`_total` for counters, quantile/`_count`/`_sum` for
//! summaries), family contiguity, duplicate metadata and the trailing
//! `# EOF`, returning family/sample counts for harness assertions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::obs::registry::MetricsRegistry;
use crate::obs::timeseries::{SeriesLabels, TimeSeriesRecorder};

/// The three quantiles a summary family exposes, matching the registry's
/// [`LatencySummary`](neu10::LatencySummary) percentiles.
const QUANTILES: &[(&str, f64)] = &[("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)];

/// Renders `registry` as one OpenMetrics text exposition.
///
/// Counters export as `<name>_total`, gauges as plain samples, histograms as
/// summaries (three quantile samples plus `_count` and `_sum`). Deterministic
/// and byte-identical across re-exports of the same registry.
pub fn export_openmetrics(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let family = sanitize(name);
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family}_total {value}");
    }
    for (name, value) in registry.gauges() {
        let family = sanitize(name);
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {}", number(value));
    }
    for (name, sketch) in registry.histograms_iter() {
        let family = sanitize(name);
        let _ = writeln!(out, "# TYPE {family} summary");
        for (label, percentile) in QUANTILES {
            let _ = writeln!(
                out,
                "{family}{{quantile=\"{label}\"}} {}",
                sketch.percentile(*percentile)
            );
        }
        let _ = writeln!(out, "{family}_count {}", sketch.count());
        let _ = writeln!(out, "{family}_sum {}", sketch.sum());
    }
    out.push_str("# EOF\n");
    out
}

/// Renders `recorder`'s retained windows as one OpenMetrics text exposition.
///
/// Every sample carries its window index as the OpenMetrics timestamp, so
/// the exposition is the full retained history: one `_total` sample per
/// (counter series, window), one sample per (gauge series, window), and
/// per-window quantile/`_count`/`_sum` samples per summary series. The
/// recorder's own bookkeeping is appended as the `timeseries.*`
/// meta-metrics. Deterministic and byte-identical across re-exports.
pub fn export_timeseries_openmetrics(recorder: &TimeSeriesRecorder) -> String {
    let mut out = String::new();
    let mut family = "";
    for (name, labels) in recorder.counter_series() {
        if family != name {
            family = name;
            let _ = writeln!(out, "# TYPE {} counter", sanitize(name));
        }
        for (window, value) in recorder.counter_windows(name, labels) {
            let _ = writeln!(
                out,
                "{}_total{} {value} {window}",
                sanitize(name),
                render_labels(&labels, None)
            );
        }
    }
    family = "";
    for (name, labels) in recorder.gauge_series() {
        if family != name {
            family = name;
            let _ = writeln!(out, "# TYPE {} gauge", sanitize(name));
        }
        for (window, value) in recorder.gauge_windows(name, labels) {
            let _ = writeln!(
                out,
                "{}{} {} {window}",
                sanitize(name),
                render_labels(&labels, None),
                number(value)
            );
        }
    }
    family = "";
    for (name, labels) in recorder.summary_series() {
        if family != name {
            family = name;
            let _ = writeln!(out, "# TYPE {} summary", sanitize(name));
        }
        for (window, sketch) in recorder.summary_sketches(name, labels) {
            for (label, percentile) in QUANTILES {
                let _ = writeln!(
                    out,
                    "{}{} {} {window}",
                    sanitize(name),
                    render_labels(&labels, Some(label)),
                    sketch.percentile(*percentile)
                );
            }
            let _ = writeln!(
                out,
                "{}_count{} {} {window}",
                sanitize(name),
                render_labels(&labels, None),
                sketch.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {} {window}",
                sanitize(name),
                render_labels(&labels, None),
                sketch.sum()
            );
        }
    }
    let stats = recorder.stats();
    let meta_samples = sanitize("timeseries.samples");
    let _ = writeln!(out, "# TYPE {meta_samples} counter");
    let _ = writeln!(out, "{meta_samples}_total {}", stats.samples);
    let meta_series = sanitize("timeseries.series");
    let _ = writeln!(out, "# TYPE {meta_series} gauge");
    let _ = writeln!(out, "{meta_series} {}", recorder.series_count());
    let meta_evicted = sanitize("timeseries.windows_evicted");
    let _ = writeln!(out, "# TYPE {meta_evicted} counter");
    let _ = writeln!(out, "{meta_evicted}_total {}", stats.windows_evicted);
    out.push_str("# EOF\n");
    out
}

/// Translates a dotted taxonomy name into the OpenMetrics name alphabet.
fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

/// A finite exposition number (`NaN`/`±inf` degrade to 0, which the format
/// technically allows but no sane scraper wants).
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

/// Renders a [`SeriesLabels`] set (plus an optional `quantile`) as an
/// OpenMetrics label block, empty string when there are no labels.
fn render_labels(labels: &SeriesLabels, quantile: Option<&str>) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(model) = labels.model {
        parts.push(format!("model=\"{}\"", escape_label(model.name())));
    }
    if let Some(node) = labels.node {
        parts.push(format!("node=\"{}\"", node.0));
    }
    if let Some(priority) = labels.priority {
        parts.push(format!("priority=\"{}\"", escape_label(priority.label())));
    }
    if let Some(quantile) = quantile {
        parts.push(format!("quantile=\"{quantile}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// The OpenMetrics label-value escapes: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// What [`validate_openmetrics`] counted while parsing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenMetricsSummary {
    /// Metric families declared by `# TYPE` lines.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
    /// Families per declared type (`counter`, `gauge`, `summary`, …).
    pub families_by_type: BTreeMap<String, usize>,
}

impl OpenMetricsSummary {
    /// Families declared with the given type.
    pub fn families_of(&self, kind: &str) -> usize {
        self.families_by_type.get(kind).copied().unwrap_or(0)
    }
}

/// Strictly parses an OpenMetrics text exposition, mirroring
/// [`validate_chrome_trace`](crate::obs::validate_chrome_trace) for the
/// Perfetto export: no dependencies, hard errors with line numbers.
///
/// Enforced: every non-comment line parses as `name[{labels}] value
/// [timestamp]`; names stay in `[a-zA-Z_:][a-zA-Z0-9_:]*`; label blocks are
/// `key="value"` lists with valid escapes; `# TYPE` precedes its family's
/// samples, is not duplicated, and carries a known type; samples belong to
/// the family most recently declared (family contiguity) with the type's
/// suffix discipline — counters only `<family>_total`, gauges only
/// `<family>`, summaries `<family>{quantile=…}` / `_count` / `_sum`; the
/// final line is `# EOF` and nothing follows it.
pub fn validate_openmetrics(text: &str) -> Result<OpenMetricsSummary, String> {
    let mut summary = OpenMetricsSummary::default();
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    let mut current: Option<(String, String)> = None;
    let mut saw_eof = false;
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if saw_eof {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.strip_prefix(' ').ok_or_else(|| {
                format!("line {lineno}: comment must be `# <keyword> …`, got {line:?}")
            })?;
            if comment == "EOF" {
                saw_eof = true;
                continue;
            }
            let mut words = comment.splitn(3, ' ');
            let keyword = words.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let family = words
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a family name"))?;
                    check_name(family, lineno)?;
                    let kind = words
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "unknown"
                    ) {
                        return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                    }
                    if declared
                        .insert(family.to_string(), kind.to_string())
                        .is_some()
                    {
                        return Err(format!("line {lineno}: duplicate TYPE for {family:?}"));
                    }
                    summary.families += 1;
                    *summary
                        .families_by_type
                        .entry(kind.to_string())
                        .or_insert(0) += 1;
                    current = Some((family.to_string(), kind.to_string()));
                }
                "HELP" | "UNIT" => {
                    let family = words
                        .next()
                        .ok_or_else(|| format!("line {lineno}: {keyword} without a family"))?;
                    check_name(family, lineno)?;
                }
                other => {
                    return Err(format!("line {lineno}: unknown comment keyword {other:?}"));
                }
            }
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let (family, kind) = current
            .as_ref()
            .ok_or_else(|| format!("line {lineno}: sample before any # TYPE"))?;
        check_suffix(&sample, family, kind, lineno)?;
        summary.samples += 1;
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(summary)
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
}

/// Validates the OpenMetrics name alphabet `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("line {lineno}: invalid metric name {name:?}"));
    }
    Ok(())
}

/// Parses `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("line {lineno}: sample without a value: {line:?}"))?;
    let name = &line[..name_end];
    check_name(name, lineno)?;
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(block) = rest.strip_prefix('{') {
        let close = find_label_block_end(block)
            .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
        parse_labels(&block[..close], &mut labels, lineno)?;
        rest = &block[close + 1..];
    }
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("line {lineno}: expected ` value` after name/labels"))?;
    let mut fields = rest.split(' ');
    let value = fields
        .next()
        .ok_or_else(|| format!("line {lineno}: missing sample value"))?;
    if value.parse::<f64>().is_err() {
        return Err(format!("line {lineno}: unparseable value {value:?}"));
    }
    if let Some(timestamp) = fields.next() {
        if timestamp.parse::<f64>().is_err() {
            return Err(format!(
                "line {lineno}: unparseable timestamp {timestamp:?}"
            ));
        }
    }
    if fields.next().is_some() {
        return Err(format!("line {lineno}: trailing tokens after timestamp"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
    })
}

/// The index of the unquoted `}` closing a label block (the block's opening
/// `{` already stripped), honoring escapes inside quoted values.
fn find_label_block_end(block: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (index, c) in block.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(index),
            _ => {}
        }
    }
    None
}

/// Parses a `key="value",key="value"` list.
fn parse_labels(
    block: &str,
    labels: &mut Vec<(String, String)>,
    lineno: usize,
) -> Result<(), String> {
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without `=`"))?;
        let key = &rest[..eq];
        check_name(key, lineno)?;
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: label value must be quoted"))?;
        let mut value = String::new();
        let mut escaped = false;
        let mut consumed = None;
        for (index, c) in after.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => {
                        return Err(format!("line {lineno}: invalid escape `\\{other}`"));
                    }
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    consumed = Some(index);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = consumed.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = &after[end + 1..];
        if let Some(more) = rest.strip_prefix(',') {
            rest = more;
            if more.is_empty() {
                return Err(format!("line {lineno}: trailing comma in label block"));
            }
        } else if !rest.is_empty() {
            return Err(format!("line {lineno}: expected `,` between labels"));
        }
    }
    Ok(())
}

/// Per-type suffix discipline: which sample names a family of `kind` owns.
fn check_suffix(sample: &Sample, family: &str, kind: &str, lineno: usize) -> Result<(), String> {
    let name = sample.name.as_str();
    let suffix = name.strip_prefix(family).ok_or_else(|| {
        format!(
            "line {lineno}: sample {name:?} outside the current family {family:?} \
             (families must be contiguous)"
        )
    })?;
    let has_quantile = sample.labels.iter().any(|(k, _)| k == "quantile");
    let ok = match kind {
        "counter" => suffix == "_total" || suffix == "_created",
        "gauge" => suffix.is_empty(),
        "summary" => (suffix.is_empty() && has_quantile) || suffix == "_count" || suffix == "_sum",
        "histogram" => suffix == "_bucket" || suffix == "_count" || suffix == "_sum",
        _ => true, // unknown: anything in the family goes
    };
    if !ok {
        return Err(format!(
            "line {lineno}: sample {name:?} has an invalid suffix for {kind} family {family:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::timeseries::TimeSeriesConfig;
    use crate::obs::ObsSink;
    use workloads::ModelId;

    #[test]
    fn registry_export_is_valid_and_byte_stable() {
        let mut registry = MetricsRegistry::new();
        registry.inc("serving.completed");
        registry.add("serving.completed", 2);
        registry.set_gauge("fleet.queued", 5.0);
        registry.observe("serving.latency_cycles", 100);
        registry.observe("serving.latency_cycles", 300);
        let text = export_openmetrics(&registry);
        assert_eq!(
            text,
            export_openmetrics(&registry),
            "byte-identical re-export"
        );
        let summary = validate_openmetrics(&text).expect("export must validate");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.families_of("counter"), 1);
        assert_eq!(summary.families_of("gauge"), 1);
        assert_eq!(summary.families_of("summary"), 1);
        assert!(text.contains("serving_completed_total 3\n"));
        assert!(text.contains("fleet_queued 5\n"));
        assert!(text.contains("serving_latency_cycles{quantile=\"0.99\"} 300\n"));
        assert!(text.contains("serving_latency_cycles_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn timeseries_export_carries_windows_and_labels() {
        let mut ts = TimeSeriesRecorder::new(TimeSeriesConfig::new(1_000));
        ts.on_arrival(100, 0, ModelId::Mnist);
        ts.on_arrival(1_200, 1, ModelId::Mnist);
        ts.observe(
            100,
            "serving.latency_cycles",
            SeriesLabels::model(ModelId::Mnist),
            40,
        );
        let text = export_timeseries_openmetrics(&ts);
        assert_eq!(text, export_timeseries_openmetrics(&ts));
        let summary = validate_openmetrics(&text).expect("export must validate");
        assert!(text.contains("serving_arrivals_total{model=\"MNIST\"} 1 0\n"));
        assert!(text.contains("serving_arrivals_total{model=\"MNIST\"} 1 1\n"));
        assert!(text.contains("serving_latency_cycles{model=\"MNIST\",quantile=\"0.5\"} 40 0\n"));
        assert!(text.contains("timeseries_samples_total 3\n"));
        assert!(text.contains("timeseries_series 2\n"));
        assert!(summary.samples > 0);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (text, why) in [
            ("serving_total 1\n# EOF\n", "sample before TYPE"),
            ("# TYPE a counter\na_total 1\n", "missing EOF"),
            (
                "# TYPE a counter\na_total 1\n# EOF\nx 1\n",
                "content after EOF",
            ),
            ("# TYPE a counter\na 1\n# EOF\n", "counter without _total"),
            ("# TYPE a gauge\na_total 1\n# EOF\n", "gauge with suffix"),
            ("# TYPE a summary\na 1\n# EOF\n", "summary without quantile"),
            (
                "# TYPE a counter\n# TYPE a counter\n# EOF\n",
                "duplicate TYPE",
            ),
            ("# TYPE a counter\nb_total 1\n# EOF\n", "family mismatch"),
            ("# TYPE a widget\n# EOF\n", "unknown type"),
            ("# TYPE 9bad counter\n# EOF\n", "invalid name"),
            (
                "# TYPE a gauge\na{x=\"y\" 1\n# EOF\n",
                "unterminated labels",
            ),
            ("# TYPE a gauge\na{x=\"y\"} nope\n# EOF\n", "bad value"),
            ("# TYPE a gauge\na{x=\"y\"} 1 t\n# EOF\n", "bad timestamp"),
            ("# TYPE a gauge\na{x=\"\\q\"} 1\n# EOF\n", "bad escape"),
        ] {
            assert!(
                validate_openmetrics(text).is_err(),
                "validator accepted {why}: {text:?}"
            );
        }
    }

    #[test]
    fn validator_accepts_escapes_and_timestamps() {
        let text = "# TYPE a gauge\na{x=\"a\\\\b\\\"c\\nd\",y=\"z\"} 1.5 12345\n# EOF\n";
        let summary = validate_openmetrics(text).expect("escaped labels are valid");
        assert_eq!(summary.samples, 1);
        assert_eq!(summary.families, 1);
    }

    #[test]
    fn empty_registry_exports_just_eof() {
        let text = export_openmetrics(&MetricsRegistry::new());
        assert_eq!(text, "# EOF\n");
        let summary = validate_openmetrics(&text).expect("empty exposition is valid");
        assert_eq!(summary.families, 0);
        assert_eq!(summary.samples, 0);
    }
}
