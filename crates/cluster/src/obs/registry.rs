//! The metrics registry: named counters, gauges and sketch-backed
//! histograms.
//!
//! Names are `&'static str` dotted paths, `subsystem.metric[_unit]` —
//! `serving.latency_cycles`, `migration.copy_bytes`, `fleet.queued` — held
//! in `BTreeMap`s so every iteration (and therefore every export) is in a
//! deterministic order. Histograms are [`QuantileSketch`]es: exact up to the
//! sketch's cap, `α`-bounded streaming quantiles beyond it, never a retained
//! per-sample vector.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use neu10::{LatencySummary, QuantileSketch};

/// The declared metric-name taxonomy: every name an [`ObsSink`] impl may
/// emit, in name order.
///
/// This is the contract dashboards and exporters are built against, and
/// the `simlint` `X1` rule cross-checks it: a `serving.*` / `migration.*` /
/// `control.*` / `fault.*` / `recovery.*` literal anywhere in library code
/// that is missing here fails
/// the static-analysis CI gate. Adding a metric therefore means declaring
/// it in this table first — which is exactly the point: no invisible
/// metrics, no silent typos splitting one counter into two.
///
/// [`ObsSink`]: crate::obs::ObsSink
pub const METRIC_NAMES: &[&str] = &[
    // Control plane: one counter per applied action kind.
    "control.migrations",
    "control.scale_downs",
    "control.scale_ups",
    // Fault injection: one counter per injected fault kind.
    "fault.board_crashes",
    "fault.board_hangs",
    "fault.injected",
    "fault.link_degrades",
    "fault.stragglers",
    "fault.telemetry_dropouts",
    // Fleet-wide gauges, sampled at each telemetry tick.
    "fleet.in_flight",
    "fleet.live_replicas",
    "fleet.migrations_in_flight",
    "fleet.queued",
    "fleet.resident_bytes",
    // Migration lifecycle: per-mode completions, pre-copy round/byte
    // accounting, downtime distribution.
    "migration.cold",
    "migration.copy_bytes",
    "migration.copy_rounds",
    "migration.downtime_cycles",
    "migration.precopy",
    "migration.precopy_fallbacks",
    "migration.rejected",
    // Failure detection and failover: declarations, re-placements,
    // re-dispatches, losses, and the detect/restore latency histograms.
    "recovery.detect_cycles",
    "recovery.failovers",
    "recovery.lost_requests",
    "recovery.redispatched",
    "recovery.replicas_restored",
    "recovery.restore_cycles",
    "recovery.restore_rejected",
    // Serving hot path: request lifecycle counters and latency histograms.
    "serving.arrivals",
    "serving.batch_size",
    "serving.batches",
    "serving.completed",
    "serving.deadline_met",
    "serving.deadline_missed",
    "serving.dispatched",
    "serving.expired",
    "serving.expired_wait_cycles",
    "serving.latency_cycles",
    "serving.rejected_no_replica",
    "serving.rejected_overload",
    // SLO burn-rate engine: one counter per alert edge kind.
    "slo.alerts_fired",
    "slo.alerts_resolved",
    // Telemetry bus heartbeat.
    "telemetry.ticks",
    // Time-series recorder bookkeeping (exported as OpenMetrics
    // meta-metrics).
    "timeseries.samples",
    "timeseries.series",
    "timeseries.windows_evicted",
];

/// Named counters, gauges and streaming-quantile histograms.
///
/// The registry accumulates **exact** aggregates: unlike the span ring it is
/// not subject to head-sampling, so `serving.completed` is the true fleet
/// count however small the trace sample rate was.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, QuantileSketch>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `by` to the counter `name`.
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets the gauge `name` to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records one sample into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The counter's current value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge's latest value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram sketch behind `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&QuantileSketch> {
        self.histograms.get(name)
    }

    /// Every counter, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(name, value)| (*name, *value))
    }

    /// Every gauge, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(name, value)| (*name, *value))
    }

    /// Every histogram summarized, in name order.
    pub fn histogram_summaries(&self) -> impl Iterator<Item = (&'static str, LatencySummary)> + '_ {
        self.histograms
            .iter()
            .map(|(name, sketch)| (*name, sketch.summary()))
    }

    /// Every histogram's backing sketch, in name order.
    pub(crate) fn histograms_iter(&self) -> impl Iterator<Item = (&'static str, &QuantileSketch)> {
        self.histograms.iter().map(|(name, sketch)| (*name, sketch))
    }

    /// Folds `other` into `self`: counters add, gauges keep `other`'s value
    /// where set (last-write-wins, matching [`set_gauge`](Self::set_gauge)),
    /// histograms merge sketch-to-sketch. This is the combination step for
    /// per-partition registries in a sharded event loop: merging the shards
    /// yields the same exact totals a single fleet-wide registry would have
    /// accumulated.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.add(name, value);
        }
        for (name, value) in other.gauges() {
            self.set_gauge(name, value);
        }
        for (name, sketch) in other.histograms_iter() {
            self.histograms.entry(name).or_default().merge(sketch);
        }
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry as one JSON object
    /// (`{"counters":{…},"gauges":{…},"histograms":{…}}`), appended to
    /// `out`. Deterministic: names are emitted in `BTreeMap` order.
    pub fn render_json(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", json_f64(*value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, sketch)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = sketch.summary();
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.count,
                json_f64(s.mean),
                s.p50,
                s.p95,
                s.p99,
                s.max
            );
        }
        out.push_str("}}");
    }
}

/// A finite JSON number for `value` (`NaN`/`±inf` degrade to 0, which JSON
/// cannot represent).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_and_renders_deterministically() {
        let mut registry = MetricsRegistry::new();
        registry.inc("serving.completed");
        registry.add("serving.completed", 2);
        registry.set_gauge("fleet.queued", 5.0);
        registry.observe("serving.latency_cycles", 100);
        registry.observe("serving.latency_cycles", 300);
        assert_eq!(registry.counter("serving.completed"), 3);
        assert_eq!(registry.gauge("fleet.queued"), Some(5.0));
        let sketch = registry.histogram("serving.latency_cycles").unwrap();
        assert_eq!(sketch.count(), 2);
        assert_eq!(sketch.max(), 300);
        let mut a = String::new();
        registry.render_json(&mut a);
        let mut b = String::new();
        registry.render_json(&mut b);
        assert_eq!(a, b, "rendering is deterministic");
        assert!(a.contains("\"serving.completed\":3"));
        assert!(a.contains("\"fleet.queued\":5"));
        assert!(a.contains("\"p99\":300"));
    }

    #[test]
    fn taxonomy_is_sorted_and_duplicate_free() {
        assert!(
            METRIC_NAMES.windows(2).all(|w| w[0] < w[1]),
            "METRIC_NAMES must be strictly sorted so the taxonomy is \
             greppable and duplicate-free"
        );
    }

    #[test]
    fn merge_combines_partitions_exactly() {
        let mut a = MetricsRegistry::new();
        a.add("serving.completed", 3);
        a.set_gauge("fleet.queued", 1.0);
        a.observe("serving.latency_cycles", 100);
        let mut b = MetricsRegistry::new();
        b.add("serving.completed", 4);
        b.inc("serving.expired");
        b.set_gauge("fleet.queued", 7.0);
        b.observe("serving.latency_cycles", 300);
        a.merge(&b);
        assert_eq!(a.counter("serving.completed"), 7);
        assert_eq!(a.counter("serving.expired"), 1);
        assert_eq!(a.gauge("fleet.queued"), Some(7.0), "gauges last-write-win");
        let sketch = a.histogram("serving.latency_cycles").unwrap();
        assert_eq!(sketch.count(), 2);
        assert_eq!(sketch.max(), 300);
    }

    #[test]
    fn untouched_names_read_as_empty() {
        let registry = MetricsRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.counter("nope"), 0);
        assert_eq!(registry.gauge("nope"), None);
        assert!(registry.histogram("nope").is_none());
    }
}
