//! Windowed time series over the serving event stream.
//!
//! The [`TraceRecorder`](crate::obs::TraceRecorder)'s registry answers "what
//! happened over the whole run" — exact totals, one quantile sketch per
//! metric. The [`TimeSeriesRecorder`] answers the *temporal* questions those
//! totals erase: *when* did p99 start climbing, which priority class was
//! burning, how fast did the autoscaler's capacity catch the ramp. It is an
//! [`ObsSink`] that aggregates every hook into fixed-width, cycle-aligned
//! windows (`window = now / width`), keyed by metric name plus a small label
//! set ([`SeriesLabels`]: model, board, priority class), and holds each
//! series in a bounded overwrite-oldest ring of windows — memory is
//! O(series × ring) at any arrival count, and everything is deterministic
//! (cycle timestamps only, `BTreeMap` iteration, no wall clock).
//!
//! Per-window values come in three kinds, mirroring the registry:
//! **counters** (events in the window), **gauges** (last value seen in the
//! window) and **latency summaries** ([`QuantileSketch`] per window). Series
//! reuse the registry's declared [`METRIC_NAMES`](crate::obs::METRIC_NAMES)
//! taxonomy — a `timeseries.*`-prefixed meta-series would tell you about the
//! recorder, not the fleet, so recorder bookkeeping lives in
//! [`TimeSeriesStats`] instead and is exported under the declared
//! `timeseries.*` names by the OpenMetrics exporter.

use std::collections::BTreeMap;

use neu10::{LatencySummary, QuantileSketch};
use workloads::{ModelId, PriorityClass};

use crate::fault::{FaultEvent, FaultKind};
use crate::migration::{MigrationMode, MigrationRecord};
use crate::obs::slo::{AlertKind, AlertTransition};
use crate::obs::{FleetCounters, ObsSink, RejectReason};
use crate::telemetry::{ControlAction, TelemetryFrame};
use crate::NodeId;

/// Window width and retention of a [`TimeSeriesRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeSeriesConfig {
    /// Window width in cycles; events at `now` land in window `now / width`.
    pub width: u64,
    /// Windows retained per series; older windows are overwritten in place.
    pub ring: usize,
}

impl Default for TimeSeriesConfig {
    /// 65 536-cycle windows, 64 retained per series.
    fn default() -> Self {
        TimeSeriesConfig {
            width: 65_536,
            ring: 64,
        }
    }
}

impl TimeSeriesConfig {
    /// Windows of `width` cycles with the default retention.
    pub fn new(width: u64) -> Self {
        TimeSeriesConfig {
            width: width.max(1),
            ..TimeSeriesConfig::default()
        }
    }

    /// Overrides the per-series window retention.
    pub fn with_ring(mut self, ring: usize) -> Self {
        self.ring = ring.max(1);
        self
    }
}

/// The label set of one series: each dimension is optional, so one metric
/// name fans out only as far as its hook can attribute.
///
/// Labels order as (model, node, priority) with `None` first, giving every
/// export a stable, deterministic series order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesLabels {
    /// The model, for per-tenant series.
    pub model: Option<ModelId>,
    /// The board, for per-node series.
    pub node: Option<NodeId>,
    /// The priority class, for per-QoS series.
    pub priority: Option<PriorityClass>,
}

impl SeriesLabels {
    /// The empty label set (fleet-wide series).
    pub fn none() -> Self {
        SeriesLabels::default()
    }

    /// Labels carrying only the model.
    pub fn model(model: ModelId) -> Self {
        SeriesLabels {
            model: Some(model),
            ..SeriesLabels::default()
        }
    }

    /// Adds the board dimension.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Adds the priority-class dimension.
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Whether no dimension is set.
    pub fn is_empty(&self) -> bool {
        self.model.is_none() && self.node.is_none() && self.priority.is_none()
    }
}

/// Recorder bookkeeping, exported as the `timeseries.*` meta-metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeSeriesStats {
    /// Points recorded across all series (counter increments, gauge sets,
    /// summary observations).
    pub samples: u64,
    /// Windows evicted ring-wide because a newer window claimed their slot.
    pub windows_evicted: u64,
}

/// Sentinel for a ring cell no window has claimed yet.
const EMPTY_WINDOW: u64 = u64::MAX;

/// One bounded overwrite-oldest ring of per-window values.
#[derive(Debug, Clone)]
struct Ring<T> {
    /// `(window index, value)` cells, slot = `window % len`.
    cells: Vec<(u64, T)>,
}

impl<T: Default> Ring<T> {
    fn new(len: usize) -> Self {
        Ring {
            cells: (0..len).map(|_| (EMPTY_WINDOW, T::default())).collect(),
        }
    }

    /// The cell of `window`, evicting an older occupant; `evicted` counts
    /// the displacement. The value of a reclaimed cell is reset by `reset`
    /// (which may reuse its allocations).
    fn cell(&mut self, window: u64, evicted: &mut u64, reset: impl Fn(&mut T)) -> &mut T {
        let len = self.cells.len() as u64;
        let slot = (window % len) as usize;
        let (stored, value) = &mut self.cells[slot];
        if *stored != window {
            if *stored != EMPTY_WINDOW {
                *evicted += 1;
            }
            *stored = window;
            reset(value);
        }
        value
    }

    /// Live `(window, value)` pairs, oldest window first.
    fn windows(&self) -> Vec<(u64, &T)> {
        let mut live: Vec<(u64, &T)> = self
            .cells
            .iter()
            .filter(|(window, _)| *window != EMPTY_WINDOW)
            .map(|(window, value)| (*window, value))
            .collect();
        live.sort_by_key(|(window, _)| *window);
        live
    }
}

/// The key of one series: metric name plus labels.
type SeriesKey = (&'static str, SeriesLabels);

/// The windowed time-series [`ObsSink`]: every hook lands in the window of
/// its cycle timestamp, keyed by name + labels, in bounded memory.
///
/// Attach one via
/// [`ClusterServingSim::run_observed`](crate::ClusterServingSim::run_observed)
/// (or `run_observed_with_controller`), then query windows directly or export
/// with [`export_timeseries_openmetrics`](crate::obs::export_timeseries_openmetrics).
#[derive(Debug, Clone)]
pub struct TimeSeriesRecorder {
    config: TimeSeriesConfig,
    counters: BTreeMap<SeriesKey, Ring<u64>>,
    gauges: BTreeMap<SeriesKey, Ring<f64>>,
    summaries: BTreeMap<SeriesKey, Ring<QuantileSketch>>,
    stats: TimeSeriesStats,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        TimeSeriesRecorder::new(TimeSeriesConfig::default())
    }
}

impl TimeSeriesRecorder {
    /// A recorder with the given window width and retention.
    pub fn new(config: TimeSeriesConfig) -> Self {
        TimeSeriesRecorder {
            config: TimeSeriesConfig {
                width: config.width.max(1),
                ring: config.ring.max(1),
            },
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            summaries: BTreeMap::new(),
            stats: TimeSeriesStats::default(),
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> TimeSeriesConfig {
        self.config
    }

    /// Recorder bookkeeping (points recorded, windows evicted).
    pub fn stats(&self) -> TimeSeriesStats {
        self.stats
    }

    /// Distinct (name, labels) series across all kinds.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.summaries.len()
    }

    /// The window index of cycle `now`.
    pub fn window_of(&self, now: u64) -> u64 {
        now / self.config.width
    }

    /// Adds `by` to the counter series' window at `now`.
    pub fn inc(&mut self, now: u64, name: &'static str, labels: SeriesLabels, by: u64) {
        self.stats.samples += 1;
        let window = now / self.config.width;
        let ring = self
            .counters
            .entry((name, labels))
            .or_insert_with(|| Ring::new(self.config.ring));
        *ring.cell(window, &mut self.stats.windows_evicted, |v| *v = 0) += by;
    }

    /// Sets the gauge series' window at `now` to its latest value.
    pub fn set(&mut self, now: u64, name: &'static str, labels: SeriesLabels, value: f64) {
        self.stats.samples += 1;
        let window = now / self.config.width;
        let ring = self
            .gauges
            .entry((name, labels))
            .or_insert_with(|| Ring::new(self.config.ring));
        *ring.cell(window, &mut self.stats.windows_evicted, |v| *v = 0.0) = value;
    }

    /// Records one sample into the summary series' window at `now`.
    pub fn observe(&mut self, now: u64, name: &'static str, labels: SeriesLabels, value: u64) {
        self.stats.samples += 1;
        let window = now / self.config.width;
        let ring = self
            .summaries
            .entry((name, labels))
            .or_insert_with(|| Ring::new(self.config.ring));
        ring.cell(
            window,
            &mut self.stats.windows_evicted,
            QuantileSketch::clear,
        )
        .record(value);
    }

    /// The retained `(window, count)` pairs of one counter series, oldest
    /// window first; empty if the series was never touched.
    pub fn counter_windows(&self, name: &str, labels: SeriesLabels) -> Vec<(u64, u64)> {
        self.counters
            .get(&(lookup(name), labels))
            .map(|ring| ring.windows().into_iter().map(|(w, v)| (w, *v)).collect())
            .unwrap_or_default()
    }

    /// The retained `(window, value)` pairs of one gauge series.
    pub fn gauge_windows(&self, name: &str, labels: SeriesLabels) -> Vec<(u64, f64)> {
        self.gauges
            .get(&(lookup(name), labels))
            .map(|ring| ring.windows().into_iter().map(|(w, v)| (w, *v)).collect())
            .unwrap_or_default()
    }

    /// The retained `(window, summary)` pairs of one latency-summary series.
    pub fn summary_windows(&self, name: &str, labels: SeriesLabels) -> Vec<(u64, LatencySummary)> {
        self.summaries
            .get(&(lookup(name), labels))
            .map(|ring| {
                ring.windows()
                    .into_iter()
                    .map(|(w, sketch)| (w, sketch.summary()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every counter series key, in (name, labels) order.
    pub fn counter_series(&self) -> impl Iterator<Item = (&'static str, SeriesLabels)> + '_ {
        self.counters.keys().map(|(name, labels)| (*name, *labels))
    }

    /// Every gauge series key, in (name, labels) order.
    pub fn gauge_series(&self) -> impl Iterator<Item = (&'static str, SeriesLabels)> + '_ {
        self.gauges.keys().map(|(name, labels)| (*name, *labels))
    }

    /// Every summary series key, in (name, labels) order.
    pub fn summary_series(&self) -> impl Iterator<Item = (&'static str, SeriesLabels)> + '_ {
        self.summaries.keys().map(|(name, labels)| (*name, *labels))
    }

    /// The `(window, sketch count/sum)` pairs of one summary series —
    /// the exporter needs the raw totals, not just the summary.
    pub(crate) fn summary_sketches(
        &self,
        name: &'static str,
        labels: SeriesLabels,
    ) -> Vec<(u64, &QuantileSketch)> {
        self.summaries
            .get(&(name, labels))
            .map(|ring| ring.windows())
            .unwrap_or_default()
    }

    /// Merges another recorder's windows into this one (per-partition
    /// recorders combined at a barrier): counters add, gauges keep the
    /// other's value (partitions own disjoint label sets, so overlap means
    /// the same series and last-write-wins is as good as any), summaries
    /// merge sketch-wise. Both recorders must share a configuration.
    ///
    /// Windows only one side retained survive; windows neither retained are
    /// gone on both and stay gone — merging cannot resurrect evicted data.
    pub fn merge(&mut self, other: &TimeSeriesRecorder) {
        debug_assert_eq!(
            self.config, other.config,
            "merging recorders with different window/ring configurations"
        );
        let width = self.config.width;
        for ((name, labels), ring) in &other.counters {
            for (window, value) in ring.windows() {
                self.inc(window * width, name, *labels, *value);
                self.stats.samples -= 1;
            }
        }
        for ((name, labels), ring) in &other.gauges {
            for (window, value) in ring.windows() {
                self.set(window * width, name, *labels, *value);
                self.stats.samples -= 1;
            }
        }
        for ((name, labels), ring) in &other.summaries {
            for (window, sketch) in ring.windows() {
                let target = self
                    .summaries
                    .entry((*name, *labels))
                    .or_insert_with(|| Ring::new(self.config.ring));
                target
                    .cell(
                        window,
                        &mut self.stats.windows_evicted,
                        QuantileSketch::clear,
                    )
                    .merge(sketch);
            }
        }
        self.stats.samples += other.stats.samples;
    }
}

/// Interns a runtime name against the declared taxonomy so query methods can
/// take `&str` while the map keys stay `&'static str`.
fn lookup(name: &str) -> &'static str {
    crate::obs::METRIC_NAMES
        .iter()
        .find(|declared| **declared == name)
        .copied()
        .unwrap_or("")
}

impl ObsSink for TimeSeriesRecorder {
    fn active(&self) -> bool {
        true
    }

    fn on_arrival(&mut self, now: u64, _sequence: u64, model: ModelId) {
        self.inc(now, "serving.arrivals", SeriesLabels::model(model), 1);
    }

    fn on_dispatch(
        &mut self,
        now: u64,
        _sequence: u64,
        model: ModelId,
        node: NodeId,
        _slot: usize,
    ) {
        self.inc(
            now,
            "serving.dispatched",
            SeriesLabels::model(model).with_node(node),
            1,
        );
    }

    fn on_reject(&mut self, now: u64, _sequence: u64, model: ModelId, reason: RejectReason) {
        let name = match reason {
            RejectReason::NoReplica => "serving.rejected_no_replica",
            RejectReason::Overload => "serving.rejected_overload",
        };
        self.inc(now, name, SeriesLabels::model(model), 1);
    }

    fn on_service_batch(
        &mut self,
        start: u64,
        _finish: u64,
        model: ModelId,
        node: NodeId,
        _slot: usize,
        batch: usize,
    ) {
        let labels = SeriesLabels::model(model).with_node(node);
        self.inc(start, "serving.batches", labels, 1);
        self.observe(start, "serving.batch_size", labels, batch as u64);
    }

    fn on_complete(
        &mut self,
        now: u64,
        _sequence: u64,
        model: ModelId,
        priority: PriorityClass,
        arrived: u64,
        node: NodeId,
        _slot: usize,
        deadline_met: Option<bool>,
    ) {
        let qos = SeriesLabels::model(model).with_priority(priority);
        self.inc(now, "serving.completed", qos.with_node(node), 1);
        self.observe(
            now,
            "serving.latency_cycles",
            qos,
            now.saturating_sub(arrived),
        );
        if let Some(met) = deadline_met {
            let name = if met {
                "serving.deadline_met"
            } else {
                "serving.deadline_missed"
            };
            self.inc(now, name, qos, 1);
        }
    }

    fn on_expire(
        &mut self,
        now: u64,
        _sequence: u64,
        model: ModelId,
        arrived: u64,
        node: NodeId,
        _slot: usize,
    ) {
        let labels = SeriesLabels::model(model).with_node(node);
        self.inc(now, "serving.expired", labels, 1);
        self.observe(
            now,
            "serving.expired_wait_cycles",
            labels,
            now.saturating_sub(arrived),
        );
    }

    fn on_copy_round(
        &mut self,
        start: u64,
        _finish: u64,
        from: NodeId,
        _to: NodeId,
        _slot: usize,
        _round: u32,
        bytes: u64,
    ) {
        let labels = SeriesLabels::none().with_node(from);
        self.inc(start, "migration.copy_rounds", labels, 1);
        self.inc(start, "migration.copy_bytes", labels, bytes);
    }

    fn on_stop_copy(&mut self, start: u64, _finish: u64, _slot: usize, record: &MigrationRecord) {
        let labels = SeriesLabels::none().with_node(record.from);
        let name = match record.mode {
            MigrationMode::Cold => "migration.cold",
            MigrationMode::PreCopy => "migration.precopy",
        };
        self.inc(start, name, labels, 1);
        if record.mode == MigrationMode::PreCopy && !record.converged {
            self.inc(start, "migration.precopy_fallbacks", labels, 1);
        }
        self.observe(
            start,
            "migration.downtime_cycles",
            labels,
            record.downtime().get(),
        );
    }

    fn on_migration_rejected(&mut self, now: u64, _slot: usize) {
        self.inc(now, "migration.rejected", SeriesLabels::none(), 1);
    }

    fn on_control(&mut self, now: u64, action: &ControlAction) {
        let (name, labels) = match action {
            ControlAction::ScaleUp { spec, .. } => {
                ("control.scale_ups", SeriesLabels::model(spec.model))
            }
            ControlAction::ScaleDown { handle } => (
                "control.scale_downs",
                SeriesLabels::none().with_node(handle.node),
            ),
            ControlAction::Migrate { handle, .. } => (
                "control.migrations",
                SeriesLabels::none().with_node(handle.node),
            ),
        };
        self.inc(now, name, labels, 1);
    }

    fn on_tick(&mut self, now: u64, _frame: &TelemetryFrame, counters: &FleetCounters) {
        let fleet = SeriesLabels::none();
        self.inc(now, "telemetry.ticks", fleet, 1);
        self.set(now, "fleet.queued", fleet, counters.queued as f64);
        self.set(now, "fleet.in_flight", fleet, counters.in_flight as f64);
        self.set(
            now,
            "fleet.live_replicas",
            fleet,
            counters.live_replicas as f64,
        );
        self.set(
            now,
            "fleet.migrations_in_flight",
            fleet,
            counters.migrations_in_flight as f64,
        );
        self.set(
            now,
            "fleet.resident_bytes",
            fleet,
            counters.resident_bytes as f64,
        );
    }

    fn on_alert(&mut self, now: u64, alert: &AlertTransition) {
        let mut labels = SeriesLabels::model(alert.model);
        if let Some(priority) = alert.priority {
            labels = labels.with_priority(priority);
        }
        let name = match alert.kind {
            AlertKind::Fired => "slo.alerts_fired",
            AlertKind::Resolved => "slo.alerts_resolved",
        };
        self.inc(now, name, labels, 1);
    }

    fn on_fault(&mut self, now: u64, fault: &FaultEvent) {
        let labels = SeriesLabels::none().with_node(fault.kind.node());
        self.inc(now, "fault.injected", labels, 1);
        let name = match fault.kind {
            FaultKind::BoardCrash { .. } => "fault.board_crashes",
            FaultKind::BoardHang { .. } => "fault.board_hangs",
            FaultKind::LinkDegrade { .. } => "fault.link_degrades",
            FaultKind::Straggler { .. } => "fault.stragglers",
            FaultKind::TelemetryDropout { .. } => "fault.telemetry_dropouts",
        };
        self.inc(now, name, labels, 1);
    }

    fn on_failover(
        &mut self,
        now: u64,
        node: NodeId,
        _replicas_failed: u64,
        redispatched: u64,
        detect_cycles: u64,
    ) {
        let labels = SeriesLabels::none().with_node(node);
        self.inc(now, "recovery.failovers", labels, 1);
        self.inc(now, "recovery.redispatched", labels, redispatched);
        self.observe(now, "recovery.detect_cycles", labels, detect_cycles);
    }

    fn on_replica_restored(&mut self, now: u64, node: NodeId, _slot: usize, restore_cycles: u64) {
        let labels = SeriesLabels::none().with_node(node);
        self.inc(now, "recovery.replicas_restored", labels, 1);
        self.observe(now, "recovery.restore_cycles", labels, restore_cycles);
    }

    fn on_lost(&mut self, now: u64, _sequence: u64, model: ModelId, node: NodeId) {
        self.inc(
            now,
            "recovery.lost_requests",
            SeriesLabels::model(model).with_node(node),
            1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_align_and_accumulate_by_label() {
        let mut ts = TimeSeriesRecorder::new(TimeSeriesConfig::new(1_000));
        ts.on_arrival(10, 0, ModelId::Mnist);
        ts.on_arrival(999, 1, ModelId::Mnist);
        ts.on_arrival(1_000, 2, ModelId::Mnist);
        ts.on_arrival(500, 3, ModelId::Bert);
        let mnist = ts.counter_windows("serving.arrivals", SeriesLabels::model(ModelId::Mnist));
        assert_eq!(mnist, vec![(0, 2), (1, 1)]);
        let bert = ts.counter_windows("serving.arrivals", SeriesLabels::model(ModelId::Bert));
        assert_eq!(bert, vec![(0, 1)]);
        assert_eq!(ts.series_count(), 2);
        assert_eq!(ts.stats().samples, 4);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_evictions() {
        let mut ts = TimeSeriesRecorder::new(TimeSeriesConfig::new(100).with_ring(4));
        for window in 0..10u64 {
            ts.inc(window * 100, "serving.arrivals", SeriesLabels::none(), 1);
        }
        let windows = ts.counter_windows("serving.arrivals", SeriesLabels::none());
        assert_eq!(
            windows,
            vec![(6, 1), (7, 1), (8, 1), (9, 1)],
            "only the newest `ring` windows survive"
        );
        assert_eq!(ts.stats().windows_evicted, 6);
    }

    #[test]
    fn latency_summaries_are_per_window_and_per_priority() {
        let mut ts = TimeSeriesRecorder::new(TimeSeriesConfig::new(1_000));
        ts.on_complete(
            100,
            0,
            ModelId::Mnist,
            PriorityClass::Interactive,
            0,
            NodeId(0),
            0,
            Some(true),
        );
        ts.on_complete(
            1_500,
            1,
            ModelId::Mnist,
            PriorityClass::Interactive,
            500,
            NodeId(0),
            0,
            Some(false),
        );
        ts.on_complete(
            1_600,
            2,
            ModelId::Mnist,
            PriorityClass::Batch,
            0,
            NodeId(1),
            0,
            None,
        );
        let interactive =
            SeriesLabels::model(ModelId::Mnist).with_priority(PriorityClass::Interactive);
        let summaries = ts.summary_windows("serving.latency_cycles", interactive);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].0, 0);
        assert_eq!(summaries[0].1.max, 100);
        assert_eq!(summaries[1].1.max, 1_000);
        assert_eq!(
            ts.counter_windows("serving.deadline_met", interactive),
            vec![(0, 1)]
        );
        assert_eq!(
            ts.counter_windows("serving.deadline_missed", interactive),
            vec![(1, 1)]
        );
        let batch = SeriesLabels::model(ModelId::Mnist).with_priority(PriorityClass::Batch);
        assert_eq!(ts.summary_windows("serving.latency_cycles", batch).len(), 1);
    }

    #[test]
    fn gauges_keep_the_last_value_per_window() {
        let mut ts = TimeSeriesRecorder::new(TimeSeriesConfig::new(1_000));
        let frame = TelemetryFrame {
            at: npu_sim::Cycles::ZERO,
            window: npu_sim::Cycles::ZERO,
            replicas: Vec::new(),
            models: BTreeMap::new(),
        };
        let mut counters = FleetCounters {
            queued: 5,
            ..FleetCounters::default()
        };
        ts.on_tick(100, &frame, &counters);
        counters.queued = 9;
        ts.on_tick(900, &frame, &counters);
        counters.queued = 2;
        ts.on_tick(1_100, &frame, &counters);
        assert_eq!(
            ts.gauge_windows("fleet.queued", SeriesLabels::none()),
            vec![(0, 9.0), (1, 2.0)]
        );
        assert_eq!(
            ts.counter_windows("telemetry.ticks", SeriesLabels::none()),
            vec![(0, 2), (1, 1)]
        );
    }

    #[test]
    fn merge_combines_partition_recorders() {
        let config = TimeSeriesConfig::new(1_000).with_ring(8);
        let mut a = TimeSeriesRecorder::new(config);
        let mut b = TimeSeriesRecorder::new(config);
        a.on_arrival(100, 0, ModelId::Mnist);
        b.on_arrival(150, 1, ModelId::Mnist);
        b.on_arrival(1_200, 2, ModelId::Bert);
        a.observe(
            100,
            "serving.latency_cycles",
            SeriesLabels::model(ModelId::Mnist),
            10,
        );
        b.observe(
            200,
            "serving.latency_cycles",
            SeriesLabels::model(ModelId::Mnist),
            30,
        );
        a.merge(&b);
        assert_eq!(
            a.counter_windows("serving.arrivals", SeriesLabels::model(ModelId::Mnist)),
            vec![(0, 2)]
        );
        assert_eq!(
            a.counter_windows("serving.arrivals", SeriesLabels::model(ModelId::Bert)),
            vec![(1, 1)]
        );
        let merged = a.summary_windows(
            "serving.latency_cycles",
            SeriesLabels::model(ModelId::Mnist),
        );
        assert_eq!(merged[0].1.count, 2);
        assert_eq!(merged[0].1.max, 30);
        assert_eq!(
            a.stats().samples,
            5,
            "merge folds the other side's samples in"
        );
    }

    #[test]
    fn unknown_series_read_as_empty() {
        let ts = TimeSeriesRecorder::default();
        assert!(ts
            .counter_windows("serving.arrivals", SeriesLabels::none())
            .is_empty());
        assert!(ts
            .gauge_windows("fleet.queued", SeriesLabels::none())
            .is_empty());
        assert!(ts
            .summary_windows("serving.latency_cycles", SeriesLabels::none())
            .is_empty());
        assert!(ts
            .counter_windows("not.a.metric", SeriesLabels::none())
            .is_empty());
    }
}
