//! Deterministic fault injection and availability accounting.
//!
//! Cloud NPU fleets lose boards, links and telemetry as a matter of course;
//! a serving stack that has never been exercised against failure proves
//! nothing about availability. This module makes failure a first-class,
//! *seeded* input to the serving simulator:
//!
//! * a [`FaultSchedule`] lists [`FaultEvent`]s — board crashes, transient
//!   hangs, link degradation, straggler boards (service-time inflation) and
//!   telemetry dropouts — either hand-written or drawn from a seeded
//!   [`FaultProfile`] generator, and is injected into the event loop as a
//!   dedicated deterministic event kind
//!   ([`ServingOptions::with_faults`](crate::ServingOptions::with_faults));
//! * a [`RecoveryPolicy`] arms the recovery machinery: failure detection by
//!   a phi-style **missed-telemetry-frame counter** (no wall clock — a node
//!   that misses `k` consecutive telemetry frames is declared dead), replica
//!   **failover** with topology-aware re-placement through the placement
//!   engine, and **re-dispatch** of the dead board's queued and in-flight
//!   requests within their remaining deadline budget
//!   ([`ServingOptions::with_recovery`](crate::ServingOptions::with_recovery));
//! * [`AvailabilityStats`] on the [`ServingReport`](crate::ServingReport)
//!   accounts for every admitted request under chaos: completed, expired,
//!   shed, re-dispatched or **lost with a fault attribution** — nothing is
//!   silently dropped — plus time-to-detect and time-to-recover
//!   distributions and per-model availability.
//!
//! Everything is a pure function of the schedule, the trace and the seed:
//! the same inputs give a byte-identical report, faults included.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::ModelId;

use crate::placement::PlacementPolicy;
use crate::NodeId;

/// One injected fault.
///
/// Durations are in cycles; factors are multiplicative slowdowns (`2.0` =
/// twice as slow). Faults target *nodes* (boards) or node pairs (links):
/// every replica hosted on an affected board feels the fault, which is how
/// real board-level failures behave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The board dies permanently: in-flight batches never complete, queued
    /// requests black-hole until detection, heartbeats stop immediately.
    BoardCrash {
        /// The board that dies.
        node: NodeId,
    },
    /// The board freezes for `for_cycles`, then recovers by itself:
    /// no new batches start and heartbeats are suppressed for the window,
    /// but work already on the device completes. A hang longer than the
    /// detection threshold is indistinguishable from a crash and is failed
    /// over; the recovered board then rejoins as spare capacity.
    BoardHang {
        /// The board that hangs.
        node: NodeId,
        /// Length of the freeze, in cycles.
        for_cycles: u64,
    },
    /// The interconnect between two boards degrades: migration and failover
    /// state transfers crossing the pair take `factor` times as long for the
    /// window. A very large factor models a partition.
    LinkDegrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Multiplicative transfer-time inflation (≥ 1).
        factor: f64,
        /// Length of the degradation, in cycles.
        for_cycles: u64,
    },
    /// The board straggles: every batch *started* on it during the window
    /// takes `factor` times its nominal service time.
    Straggler {
        /// The straggling board.
        node: NodeId,
        /// Multiplicative service-time inflation (≥ 1).
        factor: f64,
        /// Length of the straggle, in cycles.
        for_cycles: u64,
    },
    /// The board's telemetry agent goes quiet for the window while serving
    /// continues unaffected. Long dropouts trigger *false* failovers — the
    /// price of detection without a wall clock — and exercise the SLO
    /// engine's no-flap behaviour under missing frames.
    TelemetryDropout {
        /// The board whose heartbeats vanish.
        node: NodeId,
        /// Length of the dropout, in cycles.
        for_cycles: u64,
    },
}

impl FaultKind {
    /// The primary node this fault targets (`a` for link faults).
    pub fn node(&self) -> NodeId {
        match *self {
            FaultKind::BoardCrash { node }
            | FaultKind::BoardHang { node, .. }
            | FaultKind::Straggler { node, .. }
            | FaultKind::TelemetryDropout { node, .. } => node,
            FaultKind::LinkDegrade { a, .. } => a,
        }
    }

    /// A short stable label for metrics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BoardCrash { .. } => "board_crash",
            FaultKind::BoardHang { .. } => "board_hang",
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::TelemetryDropout { .. } => "telemetry_dropout",
        }
    }
}

/// One fault at one injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection time, in cycles.
    pub at: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A time-ordered list of faults to inject into one serving run.
///
/// Build one by hand with [`FaultSchedule::with_fault`] for targeted
/// scenarios, or draw one from a seeded [`FaultProfile`] for randomized
/// chaos runs. The schedule is part of the run's deterministic input: the
/// same schedule and seed reproduce the same report byte for byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds one fault, keeping the schedule time-ordered (stable for ties).
    pub fn with_fault(mut self, at: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Draws a schedule from `profile` over `[0, horizon)` across `nodes`
    /// boards, seeded. Injection times land in the middle 80% of the horizon
    /// so faults hit a warmed-up fleet rather than an empty one.
    pub fn generate(seed: u64, horizon: u64, nodes: u32, profile: &FaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = nodes.max(1);
        let mut events = Vec::new();
        let lo = horizon / 10;
        let hi = horizon.max(lo + 1);
        let at = |rng: &mut StdRng| rng.gen_range(lo..hi);
        let node = |rng: &mut StdRng| NodeId(rng.gen_range(0..nodes));
        for _ in 0..profile.crashes {
            let (when, who) = (at(&mut rng), node(&mut rng));
            events.push(FaultEvent {
                at: when,
                kind: FaultKind::BoardCrash { node: who },
            });
        }
        for _ in 0..profile.hangs {
            let (when, who) = (at(&mut rng), node(&mut rng));
            events.push(FaultEvent {
                at: when,
                kind: FaultKind::BoardHang {
                    node: who,
                    for_cycles: profile.hang_cycles,
                },
            });
        }
        for _ in 0..profile.link_degrades {
            let when = at(&mut rng);
            let a = node(&mut rng);
            let b = NodeId((a.0 + 1 + rng.gen_range(0..nodes.max(2) - 1)) % nodes.max(2));
            events.push(FaultEvent {
                at: when,
                kind: FaultKind::LinkDegrade {
                    a,
                    b,
                    factor: profile.link_factor,
                    for_cycles: profile.link_cycles,
                },
            });
        }
        for _ in 0..profile.stragglers {
            let (when, who) = (at(&mut rng), node(&mut rng));
            events.push(FaultEvent {
                at: when,
                kind: FaultKind::Straggler {
                    node: who,
                    factor: profile.straggle_factor,
                    for_cycles: profile.straggle_cycles,
                },
            });
        }
        for _ in 0..profile.dropouts {
            let (when, who) = (at(&mut rng), node(&mut rng));
            events.push(FaultEvent {
                at: when,
                kind: FaultKind::TelemetryDropout {
                    node: who,
                    for_cycles: profile.dropout_cycles,
                },
            });
        }
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// The faults, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-kind fault counts and durations for [`FaultSchedule::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Permanent board crashes to inject.
    pub crashes: usize,
    /// Transient board hangs to inject.
    pub hangs: usize,
    /// Hang duration, in cycles.
    pub hang_cycles: u64,
    /// Link degradations to inject.
    pub link_degrades: usize,
    /// Link transfer-time inflation factor.
    pub link_factor: f64,
    /// Link degradation duration, in cycles.
    pub link_cycles: u64,
    /// Straggler windows to inject.
    pub stragglers: usize,
    /// Straggler service-time inflation factor.
    pub straggle_factor: f64,
    /// Straggler window duration, in cycles.
    pub straggle_cycles: u64,
    /// Telemetry dropouts to inject.
    pub dropouts: usize,
    /// Dropout duration, in cycles.
    pub dropout_cycles: u64,
}

impl Default for FaultProfile {
    /// One crash, one hang, one straggler window and one dropout with
    /// moderate durations — a light but representative chaos mix.
    fn default() -> Self {
        FaultProfile {
            crashes: 1,
            hangs: 1,
            hang_cycles: 400_000,
            link_degrades: 1,
            link_factor: 8.0,
            link_cycles: 500_000,
            stragglers: 1,
            straggle_factor: 4.0,
            straggle_cycles: 400_000,
            dropouts: 1,
            dropout_cycles: 300_000,
        }
    }
}

/// How the fleet detects and survives board loss.
///
/// Detection is clockless: every telemetry tick, each board hosting live
/// replicas either heartbeats (its telemetry arrived) or misses. A board at
/// `missed_frame_threshold` consecutive misses is declared dead: its
/// replicas are fenced and retired, their requests re-dispatched, and
/// replacement replicas are re-placed through the placement engine on the
/// surviving boards. Recovery requires telemetry
/// ([`ServingOptions::with_telemetry`](crate::ServingOptions::with_telemetry));
/// without a telemetry bus no frame is ever missed and nothing is detected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Consecutive missed telemetry frames before a board is declared dead.
    pub missed_frame_threshold: u32,
    /// Placement policy for failover re-placement.
    pub placement: PlacementPolicy,
}

impl RecoveryPolicy {
    /// Declares a board dead after `missed_frame_threshold` consecutive
    /// missed frames and re-places topology-aware.
    pub fn new(missed_frame_threshold: u32) -> Self {
        RecoveryPolicy {
            missed_frame_threshold: missed_frame_threshold.max(1),
            placement: PlacementPolicy::TopologyAware,
        }
    }

    /// Overrides the failover re-placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }
}

/// Availability accounting of one model under chaos.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelAvailability {
    /// Requests admitted (dispatched or queued) for the model.
    pub admitted: u64,
    /// Requests that eventually completed.
    pub completed: u64,
    /// Requests lost to a fault (attributed, never silent).
    pub lost: u64,
}

impl ModelAvailability {
    /// Completed fraction of admitted requests (1.0 with no traffic).
    pub fn availability(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.completed as f64 / self.admitted as f64
        }
    }

    /// Whether the model met an availability target such as `0.999`.
    pub fn attained(&self, target: f64) -> bool {
        self.availability() >= target
    }
}

/// What chaos did to the run and what recovery salvaged.
///
/// Attached to every [`ServingReport`](crate::ServingReport); all-zero when
/// no faults were injected. The conservation law the chaos property test
/// pins: every admitted request **completes**, **expires with a recorded
/// drop**, or is **counted in [`lost`](AvailabilityStats::lost) with a fault
/// attribution** — there is no fourth bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvailabilityStats {
    /// Board crashes injected.
    pub crashes: u64,
    /// Board hangs injected.
    pub hangs: u64,
    /// Link degradations injected.
    pub link_degrades: u64,
    /// Straggler windows injected.
    pub stragglers: u64,
    /// Telemetry dropouts injected.
    pub dropouts: u64,
    /// Boards declared dead by the missed-frame detector.
    pub failovers: u64,
    /// Replicas fenced and retired by failover.
    pub replicas_failed: u64,
    /// Replacement replicas successfully re-placed.
    pub replicas_restored: u64,
    /// Failover re-placements the placement engine had no room for.
    pub restore_rejected: u64,
    /// Requests orphaned on dead boards (queued or in flight at fencing).
    pub orphaned: u64,
    /// Orphans re-dispatched to surviving replicas.
    pub redispatched: u64,
    /// Orphans already past their deadline at failover, dropped with the
    /// normal expiry accounting.
    pub expired_in_failover: u64,
    /// Requests lost to a fault: orphans no surviving replica could accept,
    /// plus requests still marooned on undetected dead boards at run end.
    pub lost: u64,
    /// Total fault-to-declaration latency over all failovers, in cycles.
    pub detect_cycles_total: u64,
    /// Worst single fault-to-declaration latency, in cycles.
    pub detect_cycles_max: u64,
    /// Total fault-to-replica-restored latency over all restores, in cycles.
    pub restore_cycles_total: u64,
    /// Worst single fault-to-replica-restored latency, in cycles.
    pub restore_cycles_max: u64,
    /// Per-model admitted/completed/lost under chaos.
    pub per_model: BTreeMap<ModelId, ModelAvailability>,
}

impl AvailabilityStats {
    /// Folds another partition's availability accounting into this one.
    ///
    /// Counters and totals add, worst-case latencies take the max, and the
    /// per-model entries merge field-wise — the fold is commutative except
    /// for map insertion order, which `BTreeMap` keeps canonical, so a fixed
    /// partitioning merges to the same stats in any order.
    pub fn merge(&mut self, other: &AvailabilityStats) {
        self.crashes += other.crashes;
        self.hangs += other.hangs;
        self.link_degrades += other.link_degrades;
        self.stragglers += other.stragglers;
        self.dropouts += other.dropouts;
        self.failovers += other.failovers;
        self.replicas_failed += other.replicas_failed;
        self.replicas_restored += other.replicas_restored;
        self.restore_rejected += other.restore_rejected;
        self.orphaned += other.orphaned;
        self.redispatched += other.redispatched;
        self.expired_in_failover += other.expired_in_failover;
        self.lost += other.lost;
        self.detect_cycles_total += other.detect_cycles_total;
        self.detect_cycles_max = self.detect_cycles_max.max(other.detect_cycles_max);
        self.restore_cycles_total += other.restore_cycles_total;
        self.restore_cycles_max = self.restore_cycles_max.max(other.restore_cycles_max);
        for (model, theirs) in &other.per_model {
            let ours = self.per_model.entry(*model).or_default();
            ours.admitted += theirs.admitted;
            ours.completed += theirs.completed;
            ours.lost += theirs.lost;
        }
    }

    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.crashes + self.hangs + self.link_degrades + self.stragglers + self.dropouts
    }

    /// Mean fault-to-declaration latency, in cycles.
    pub fn mean_detect_cycles(&self) -> f64 {
        if self.failovers == 0 {
            0.0
        } else {
            self.detect_cycles_total as f64 / self.failovers as f64
        }
    }

    /// Mean fault-to-replica-restored latency, in cycles.
    pub fn mean_restore_cycles(&self) -> f64 {
        if self.replicas_restored == 0 {
            0.0
        } else {
            self.restore_cycles_total as f64 / self.replicas_restored as f64
        }
    }

    /// Fleet-wide availability: completed fraction of admitted requests
    /// across every model (1.0 with no traffic).
    pub fn availability(&self) -> f64 {
        let (admitted, completed) = self
            .per_model
            .values()
            .fold((0u64, 0u64), |(a, c), m| (a + m.admitted, c + m.completed));
        if admitted == 0 {
            1.0
        } else {
            completed as f64 / admitted as f64
        }
    }

    /// Models meeting an availability target such as `0.999`.
    pub fn models_attaining(&self, target: f64) -> usize {
        self.per_model
            .values()
            .filter(|m| m.attained(target))
            .count()
    }
}

/// Normalizes a node pair so `(a, b)` and `(b, a)` share one link record.
fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Live chaos bookkeeping inside one serving run: which boards are down,
/// which windows are open, how many frames each board has missed, and the
/// accumulating [`AvailabilityStats`].
#[derive(Debug, Clone)]
pub(crate) struct ChaosState {
    /// The schedule, indexed by the fault event payload.
    pub(crate) schedule: Vec<FaultEvent>,
    /// Recovery policy; `None` injects faults without detection or failover.
    pub(crate) recovery: Option<RecoveryPolicy>,
    /// Boards that crashed (permanent).
    pub(crate) crashed: BTreeSet<NodeId>,
    /// Boards declared dead by the detector (crashed or fenced-alive).
    pub(crate) declared: BTreeSet<NodeId>,
    /// Boards cordoned off from placement (crashed or hung); hung boards are
    /// re-onlined by the sample-tick sweep once their window closes.
    pub(crate) cordoned: BTreeSet<NodeId>,
    /// Open hang windows: node → end cycle.
    pub(crate) hung_until: BTreeMap<NodeId, u64>,
    /// Open telemetry-dropout windows: node → end cycle.
    pub(crate) dropout_until: BTreeMap<NodeId, u64>,
    /// Open link-degradation windows: pair → (end cycle, factor).
    pub(crate) link_slow: BTreeMap<(NodeId, NodeId), (u64, f64)>,
    /// Open straggler windows: node → (end cycle, factor).
    pub(crate) straggle: BTreeMap<NodeId, (u64, f64)>,
    /// Consecutive missed telemetry frames per monitored node.
    pub(crate) missed: BTreeMap<NodeId, u32>,
    /// First uncleared heartbeat-suppressing fault per node (detect latency).
    pub(crate) fault_since: BTreeMap<NodeId, u64>,
    /// The accumulating availability accounting.
    pub(crate) stats: AvailabilityStats,
}

impl ChaosState {
    pub(crate) fn new(schedule: &FaultSchedule, recovery: Option<RecoveryPolicy>) -> Self {
        ChaosState {
            schedule: schedule.events.clone(),
            recovery,
            crashed: BTreeSet::new(),
            declared: BTreeSet::new(),
            cordoned: BTreeSet::new(),
            hung_until: BTreeMap::new(),
            dropout_until: BTreeMap::new(),
            link_slow: BTreeMap::new(),
            straggle: BTreeMap::new(),
            missed: BTreeMap::new(),
            fault_since: BTreeMap::new(),
            stats: AvailabilityStats::default(),
        }
    }

    /// Whether the board's heartbeats are suppressed at `now`.
    pub(crate) fn suppressed(&self, node: NodeId, now: u64) -> bool {
        self.crashed.contains(&node)
            || self.hung_until.get(&node).is_some_and(|&end| now < end)
            || self.dropout_until.get(&node).is_some_and(|&end| now < end)
    }

    /// Whether the board cannot start new batches at `now`.
    pub(crate) fn board_down(&self, node: NodeId, now: u64) -> bool {
        self.crashed.contains(&node) || self.hung_until.get(&node).is_some_and(|&end| now < end)
    }

    /// Transfer-time inflation for the `(a, b)` link at `now` (1.0 clean).
    pub(crate) fn link_factor(&self, a: NodeId, b: NodeId, now: u64) -> f64 {
        match self.link_slow.get(&link_key(a, b)) {
            Some(&(end, factor)) if now < end => factor.max(1.0),
            _ => 1.0,
        }
    }

    /// Service-time inflation for batches started on `node` at `now`.
    pub(crate) fn service_factor(&self, node: NodeId, now: u64) -> f64 {
        match self.straggle.get(&node) {
            Some(&(end, factor)) if now < end => factor.max(1.0),
            _ => 1.0,
        }
    }

    /// Applies one fault's state change (the serving loop handles replica
    /// fencing and event scheduling) and counts it.
    pub(crate) fn apply(&mut self, event: &FaultEvent) {
        let now = event.at;
        match event.kind {
            FaultKind::BoardCrash { node } => {
                self.stats.crashes += 1;
                self.crashed.insert(node);
                self.fault_since.entry(node).or_insert(now);
            }
            FaultKind::BoardHang { node, for_cycles } => {
                self.stats.hangs += 1;
                let end = now.saturating_add(for_cycles);
                let slot = self.hung_until.entry(node).or_insert(end);
                *slot = (*slot).max(end);
                self.fault_since.entry(node).or_insert(now);
            }
            FaultKind::LinkDegrade {
                a,
                b,
                factor,
                for_cycles,
            } => {
                self.stats.link_degrades += 1;
                let end = now.saturating_add(for_cycles);
                let slot = self
                    .link_slow
                    .entry(link_key(a, b))
                    .or_insert((end, factor));
                *slot = (slot.0.max(end), factor.max(slot.1));
            }
            FaultKind::Straggler {
                node,
                factor,
                for_cycles,
            } => {
                self.stats.stragglers += 1;
                let end = now.saturating_add(for_cycles);
                let slot = self.straggle.entry(node).or_insert((end, factor));
                *slot = (slot.0.max(end), factor.max(slot.1));
            }
            FaultKind::TelemetryDropout { node, for_cycles } => {
                self.stats.dropouts += 1;
                let end = now.saturating_add(for_cycles);
                let slot = self.dropout_until.entry(node).or_insert(end);
                *slot = (*slot).max(end);
                self.fault_since.entry(node).or_insert(now);
            }
        }
    }

    /// Counts one admitted request for per-model availability.
    pub(crate) fn note_admitted(&mut self, model: ModelId) {
        self.stats.per_model.entry(model).or_default().admitted += 1;
    }

    /// Counts one completed request for per-model availability.
    pub(crate) fn note_completed(&mut self, model: ModelId) {
        self.stats.per_model.entry(model).or_default().completed += 1;
    }

    /// Counts one lost request, attributed to a fault, for `model`.
    pub(crate) fn note_lost(&mut self, model: ModelId) {
        self.stats.lost += 1;
        self.stats.per_model.entry(model).or_default().lost += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_generation_is_seeded_and_sorted() {
        let profile = FaultProfile::default();
        let a = FaultSchedule::generate(7, 1_000_000, 4, &profile);
        let b = FaultSchedule::generate(7, 1_000_000, 4, &profile);
        let c = FaultSchedule::generate(8, 1_000_000, 4, &profile);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.len(), 5, "default profile injects one fault per kind");
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events().iter().all(|e| e.at < 1_000_000));
    }

    #[test]
    fn manual_schedule_stays_time_ordered() {
        let schedule = FaultSchedule::new()
            .with_fault(500, FaultKind::BoardCrash { node: NodeId(1) })
            .with_fault(
                100,
                FaultKind::TelemetryDropout {
                    node: NodeId(0),
                    for_cycles: 50,
                },
            );
        assert_eq!(schedule.events()[0].at, 100);
        assert_eq!(schedule.events()[1].at, 500);
        assert!(!schedule.is_empty());
    }

    #[test]
    fn chaos_windows_open_and_close() {
        let mut chaos = ChaosState::new(&FaultSchedule::new(), None);
        chaos.apply(&FaultEvent {
            at: 100,
            kind: FaultKind::BoardHang {
                node: NodeId(2),
                for_cycles: 400,
            },
        });
        chaos.apply(&FaultEvent {
            at: 150,
            kind: FaultKind::Straggler {
                node: NodeId(1),
                factor: 3.0,
                for_cycles: 100,
            },
        });
        chaos.apply(&FaultEvent {
            at: 200,
            kind: FaultKind::LinkDegrade {
                a: NodeId(3),
                b: NodeId(0),
                factor: 5.0,
                for_cycles: 100,
            },
        });
        assert!(chaos.board_down(NodeId(2), 400));
        assert!(!chaos.board_down(NodeId(2), 500), "hang window closes");
        assert!(chaos.suppressed(NodeId(2), 400));
        assert_eq!(chaos.service_factor(NodeId(1), 200), 3.0);
        assert_eq!(chaos.service_factor(NodeId(1), 250), 1.0);
        // Link lookup is direction-agnostic.
        assert_eq!(chaos.link_factor(NodeId(0), NodeId(3), 250), 5.0);
        assert_eq!(chaos.link_factor(NodeId(3), NodeId(0), 250), 5.0);
        assert_eq!(chaos.link_factor(NodeId(3), NodeId(0), 300), 1.0);
        assert_eq!(chaos.stats.injected(), 3);
    }

    #[test]
    fn crash_suppression_is_permanent() {
        let mut chaos = ChaosState::new(&FaultSchedule::new(), Some(RecoveryPolicy::new(3)));
        chaos.apply(&FaultEvent {
            at: 100,
            kind: FaultKind::BoardCrash { node: NodeId(0) },
        });
        assert!(chaos.board_down(NodeId(0), u64::MAX));
        assert!(chaos.suppressed(NodeId(0), u64::MAX));
        assert!(chaos.recovery.is_some());
        assert_eq!(chaos.fault_since.get(&NodeId(0)), Some(&100));
    }

    #[test]
    fn availability_math() {
        let mut stats = AvailabilityStats::default();
        stats.per_model.insert(
            ModelId::Mnist,
            ModelAvailability {
                admitted: 1000,
                completed: 999,
                lost: 1,
            },
        );
        stats.per_model.insert(
            ModelId::Bert,
            ModelAvailability {
                admitted: 100,
                completed: 90,
                lost: 10,
            },
        );
        assert_eq!(stats.models_attaining(0.999), 1);
        let fleet = stats.availability();
        assert!((fleet - 1089.0 / 1100.0).abs() < 1e-12);
        assert_eq!(ModelAvailability::default().availability(), 1.0);
    }
}
