//! One cluster node: a board-owning `VnpuManager` plus the node identity and
//! inventory reporting the fleet layer needs.

use neu10::VnpuManager;
use npu_sim::NpuConfig;

use crate::inventory::NodeInventory;
use crate::NodeId;

/// A node of the cluster: one host driving one NPU board.
#[derive(Debug)]
pub struct ClusterNode {
    id: NodeId,
    manager: VnpuManager,
}

impl ClusterNode {
    /// Brings up a node with a freshly initialized board.
    pub fn new(id: NodeId, npu: &NpuConfig) -> Self {
        ClusterNode {
            id,
            manager: VnpuManager::new(npu),
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's vNPU manager.
    pub fn manager(&self) -> &VnpuManager {
        &self.manager
    }

    /// Mutable access to the node's vNPU manager.
    pub fn manager_mut(&mut self) -> &mut VnpuManager {
        &mut self.manager
    }

    /// The node's board configuration.
    pub fn npu_config(&self) -> &NpuConfig {
        self.manager.npu_config()
    }

    /// A snapshot of the node's free and total capacity.
    pub fn inventory(&self) -> NodeInventory {
        let npu = self.manager.npu_config();
        let cores = npu.total_cores();
        NodeInventory {
            node: self.id,
            total_mes: npu.mes_per_core * cores,
            free_mes: self.manager.free_mes(),
            total_ves: npu.ves_per_core * cores,
            free_ves: self.manager.free_ves(),
            total_sram_segments: npu.sram_segments_per_core() * cores as u32,
            free_sram_segments: self.manager.free_sram_segments(),
            total_hbm_segments: npu.hbm_segments_per_core() * cores as u32,
            free_hbm_segments: self.manager.free_hbm_segments(),
            resident_vnpus: self.manager.vnpu_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neu10::{MappingMode, VnpuConfig};

    #[test]
    fn inventory_tracks_manager_state() {
        let npu = NpuConfig::single_core();
        let mut node = ClusterNode::new(NodeId(3), &npu);
        let empty = node.inventory();
        assert_eq!(empty.node, NodeId(3));
        assert_eq!(empty.free_mes, 4);
        assert_eq!(empty.resident_vnpus, 0);
        assert_eq!(empty.free_hbm_segments, empty.total_hbm_segments);

        let config = VnpuConfig::single_core(2, 2, npu.sram_bytes_per_core / 2, 8 << 30);
        let id = node
            .manager_mut()
            .create_vnpu(config, MappingMode::HardwareIsolated, 1)
            .unwrap();
        let loaded = node.inventory();
        assert_eq!(loaded.free_mes, 2);
        assert_eq!(loaded.resident_vnpus, 1);
        assert!(loaded.free_hbm_segments < loaded.total_hbm_segments);

        node.manager_mut().destroy_vnpu(id).unwrap();
        assert_eq!(node.inventory(), empty);
    }
}
