//! The cluster-level placement engine.
//!
//! Scores candidate nodes by their free ME/VE/SRAM/HBM inventory and picks
//! where a new vNPU should live. Per-core packing on the chosen board is then
//! delegated to that node's `neu10::PnpuMapper`, so the engine only decides
//! *which board*, never *which core*.

use crate::inventory::{NodeInventory, ResourceDemand};
use crate::NodeId;

/// How the cluster picks the node hosting a new vNPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Pack tightly: the admissible node left with the *least* free capacity
    /// after placement wins. Minimizes fragmentation and keeps whole boards
    /// free for large vNPUs.
    BestFit,
    /// Spread: the admissible node left with the *most* free capacity after
    /// placement wins. Minimizes interference between collocated tenants.
    WorstFit,
    /// Locality- and balance-aware: prefers nodes already hosting replicas of
    /// the same model (weight reuse, §locality of arXiv 2506.11446) and
    /// penalizes committed-EU vs committed-memory imbalance.
    TopologyAware,
}

impl PlacementPolicy {
    /// Every placement policy, for sweeps.
    pub fn all() -> [PlacementPolicy; 3] {
        [
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::TopologyAware,
        ]
    }

    /// A short stable label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::BestFit => "best-fit",
            PlacementPolicy::WorstFit => "worst-fit",
            PlacementPolicy::TopologyAware => "topology",
        }
    }
}

/// One node the engine may choose, with the placement-relevant context the
/// cluster computed for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementCandidate {
    /// The node's free/total capacity.
    pub inventory: NodeInventory,
    /// Replicas of the to-be-placed model already resident on the node.
    pub model_replicas: usize,
}

/// Free-capacity fraction remaining on the node after hosting `demand`
/// (mean over the engine, SRAM and HBM dimensions).
fn free_after_fraction(inventory: &NodeInventory, demand: &ResourceDemand) -> f64 {
    let eu_total = (inventory.total_mes + inventory.total_ves).max(1) as f64;
    let eu_free = (inventory.free_mes.saturating_sub(demand.mes)
        + inventory.free_ves.saturating_sub(demand.ves)) as f64;
    let sram_total = inventory.total_sram_segments.max(1) as f64;
    let sram_free = inventory
        .free_sram_segments
        .saturating_sub(demand.sram_segments) as f64;
    let mem_total = inventory.total_hbm_segments.max(1) as f64;
    let mem_free = inventory
        .free_hbm_segments
        .saturating_sub(demand.hbm_segments) as f64;
    (eu_free / eu_total + sram_free / sram_total + mem_free / mem_total) / 3.0
}

/// Scores one candidate under `policy`; lower is better.
pub fn score(
    policy: PlacementPolicy,
    candidate: &PlacementCandidate,
    demand: &ResourceDemand,
) -> f64 {
    let free_after = free_after_fraction(&candidate.inventory, demand);
    match policy {
        PlacementPolicy::BestFit => free_after,
        PlacementPolicy::WorstFit => -free_after,
        PlacementPolicy::TopologyAware => {
            // Locality dominates, then balance, then packing. The locality
            // term saturates so one node never accumulates every replica.
            let locality = -(candidate.model_replicas.min(4) as f64) * 0.25;
            let imbalance = candidate.inventory.imbalance_after(demand);
            locality + imbalance + 0.1 * free_after
        }
    }
}

/// Ranks the admissible nodes best-first under `policy`; each candidate is
/// paired with its own demand (segment rounding differs across heterogeneous
/// board types). Ties break towards the lowest node id, keeping placement
/// deterministic. Board-level admission (`can_host`) is necessary but not
/// sufficient — per-core packing can still refuse — so callers should try
/// the ranked nodes in order.
pub fn rank_nodes(
    policy: PlacementPolicy,
    candidates: &[(PlacementCandidate, ResourceDemand)],
) -> Vec<NodeId> {
    let mut admissible: Vec<(f64, NodeId)> = candidates
        .iter()
        .filter(|(candidate, demand)| candidate.inventory.can_host(demand))
        .map(|(candidate, demand)| (score(policy, candidate, demand), candidate.inventory.node))
        .collect();
    admissible.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    admissible.into_iter().map(|(_, node)| node).collect()
}

/// Picks the best node for a uniform demand, or `None` when no candidate has
/// the capacity. Convenience wrapper over [`rank_nodes`].
pub fn select_node(
    policy: PlacementPolicy,
    candidates: &[PlacementCandidate],
    demand: &ResourceDemand,
) -> Option<NodeId> {
    let paired: Vec<(PlacementCandidate, ResourceDemand)> =
        candidates.iter().map(|c| (*c, *demand)).collect();
    rank_nodes(policy, &paired).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(node: u32, free_mes: usize, free_hbm: u32, replicas: usize) -> PlacementCandidate {
        PlacementCandidate {
            inventory: NodeInventory {
                node: NodeId(node),
                total_mes: 8,
                free_mes,
                total_ves: 8,
                free_ves: free_mes,
                total_sram_segments: 64,
                free_sram_segments: 64,
                total_hbm_segments: 64,
                free_hbm_segments: free_hbm,
                resident_vnpus: (8 - free_mes) / 2,
            },
            model_replicas: replicas,
        }
    }

    fn demand() -> ResourceDemand {
        ResourceDemand {
            mes: 2,
            ves: 2,
            sram_segments: 2,
            hbm_segments: 8,
        }
    }

    #[test]
    fn best_fit_packs_and_worst_fit_spreads() {
        let candidates = [candidate(0, 8, 64, 0), candidate(1, 4, 32, 0)];
        assert_eq!(
            select_node(PlacementPolicy::BestFit, &candidates, &demand()),
            Some(NodeId(1)),
            "best-fit picks the fuller node"
        );
        assert_eq!(
            select_node(PlacementPolicy::WorstFit, &candidates, &demand()),
            Some(NodeId(0)),
            "worst-fit picks the emptier node"
        );
    }

    #[test]
    fn topology_aware_prefers_model_locality() {
        let candidates = [candidate(0, 8, 64, 0), candidate(1, 6, 48, 2)];
        assert_eq!(
            select_node(PlacementPolicy::TopologyAware, &candidates, &demand()),
            Some(NodeId(1)),
            "resident replicas attract new ones"
        );
    }

    #[test]
    fn full_nodes_are_skipped_and_empty_fleets_reject() {
        let candidates = [candidate(0, 1, 64, 0), candidate(1, 0, 2, 0)];
        assert_eq!(
            select_node(PlacementPolicy::BestFit, &candidates, &demand()),
            None
        );
        assert_eq!(select_node(PlacementPolicy::BestFit, &[], &demand()), None);
    }

    #[test]
    fn sram_breaks_ties_between_otherwise_equal_nodes() {
        // Regression: scoring documented free ME/VE/SRAM/HBM but ignored
        // SRAM, so two nodes with equal EUs/HBM and disparate free SRAM
        // scored identically and the tie broke to the lower node id.
        let drained = |node: u32, free_sram: u32| {
            let mut c = candidate(node, 6, 48, 0);
            c.inventory.free_sram_segments = free_sram;
            c
        };
        // Node 0 has plenty of SRAM free, node 1 is nearly drained: best-fit
        // must pack the drained node, worst-fit must spread to the roomy one.
        let candidates = [drained(0, 64), drained(1, 8)];
        assert_eq!(
            select_node(PlacementPolicy::BestFit, &candidates, &demand()),
            Some(NodeId(1)),
            "best-fit packs the SRAM-drained node"
        );
        assert_eq!(
            select_node(PlacementPolicy::WorstFit, &candidates, &demand()),
            Some(NodeId(0)),
            "worst-fit spreads to the SRAM-roomy node"
        );
    }

    #[test]
    fn ties_break_deterministically_to_the_lowest_node() {
        let candidates = [candidate(3, 8, 64, 0), candidate(1, 8, 64, 0)];
        assert_eq!(
            select_node(PlacementPolicy::WorstFit, &candidates, &demand()),
            Some(NodeId(1))
        );
    }
}
