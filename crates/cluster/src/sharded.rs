//! The sharded serving runner: a conservative parallel-discrete-event
//! coordinator over per-board-group [`PartitionSim`]s.
//!
//! # Partitioning model
//!
//! The fleet's boards are divided into `partitions` contiguous board-groups
//! in node-id order. Each partition owns its boards' replicas, event heap,
//! router and accumulators, and processes the arrivals a deterministic
//! [`ShardPlan`] assigns to it. The only cross-partition edges are:
//!
//! * **migration transfers** — a replica moving to a board another partition
//!   owns travels as a [`MigrationEnvelope`], priced source-side and
//!   delivered at a barrier;
//! * **telemetry / control** — the control plane runs fleet-wide at barrier
//!   ticks over the merged frame, and its actions are routed back to the
//!   owning partition.
//!
//! # Lookahead and rounds
//!
//! Partitions advance in bounded-window rounds. The window bound is the
//! minimum of: the next telemetry tick, the next scheduled migration (plus
//! one cycle, so the triggering event itself runs), and — whenever any
//! cross-partition transfer is pending — `now + lookahead`, where the
//! lookahead is the interconnect setup latency from
//! [`npu_sim::interconnect`](npu_sim::InterconnectConfig): no cross-edge
//! effect can land sooner than one link setup. When none of these bound the
//! future, the final round runs unbounded to completion.
//!
//! # Determinism
//!
//! Same seed, trace and partition count ⇒ bit-identical merged
//! [`ServingReport`] at **every** thread count: partitions are stepped by an
//! ownership-transfer worker pool ([`crate::par`]) whose results are
//! re-sorted by partition index, barriers merge in partition-index order,
//! and no decision anywhere reads the wall clock. `partitions = 1` delegates
//! to the sequential loop, so single-partition sharded runs are bit-identical
//! to [`ClusterServingSim::run`] by construction.

use std::collections::BTreeMap;

use workloads::{ClusterTrace, ModelId};

use crate::cluster::{NpuCluster, VnpuHandle};
use crate::fault::FaultSchedule;
use crate::obs::{NoopSink, ObsSink};
use crate::par::with_pool;
use crate::serving::{
    ClusterServingSim, MigrationEnvelope, PartitionOutcome, PartitionSim, ServingOptions,
    ServingReport, ShardContext,
};
use crate::telemetry::{ControlAction, ControlPlane, ModelSample, NoopControl, TelemetryFrame};
use crate::NodeId;
use neu10::LatencySummary;
use npu_sim::Cycles;

/// How a sharded run is laid out: board-group partitions and worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// Board-group partitions. Clamped to `[1, node_count]`; clamped to 1
    /// when an SLO engine is configured (alert evaluation is fleet-global).
    /// The partition count — not the thread count — is what changes the
    /// merged report: each count is its own deterministic schedule.
    pub partitions: usize,
    /// Worker threads driving the partitions. Clamped to `[1, partitions]`.
    /// Threads never change the report, only the wall-clock.
    pub threads: usize,
}

impl ShardOptions {
    /// `partitions` board-groups, one worker thread per partition.
    pub fn new(partitions: usize) -> Self {
        ShardOptions {
            partitions: partitions.max(1),
            threads: partitions.max(1),
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// The deterministic arrival-ownership plan: which partition admits which
/// arrival.
///
/// Per model, each partition is weighted by its dispatchable replica count
/// (live and not draining — the sequential router's candidate set); arrival
/// `sequence` belongs to the partition holding the `sequence % total`-th
/// replica. A model with no replica anywhere falls back to
/// `sequence % partitions`, so its rejections are spread (and counted)
/// deterministically. Rebuilt at every barrier, the plan tracks migrations,
/// scale-ups and failovers with one barrier of lag — load balance drifts,
/// correctness never does: ownership only decides *which* partition's router
/// admits or rejects an arrival against its local candidates.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardPlan {
    partitions: usize,
    weights: BTreeMap<ModelId, Vec<u64>>,
}

impl ShardPlan {
    /// A plan with no replica weights (everything falls back to
    /// `sequence % partitions`).
    pub(crate) fn empty(partitions: usize) -> Self {
        ShardPlan {
            partitions: partitions.max(1),
            weights: BTreeMap::new(),
        }
    }

    /// A plan over accumulated per-model, per-partition replica counts.
    pub(crate) fn new(partitions: usize, weights: BTreeMap<ModelId, Vec<u64>>) -> Self {
        ShardPlan {
            partitions: partitions.max(1),
            weights,
        }
    }

    /// The partition that admits arrival `sequence` of `model`.
    pub(crate) fn owner(&self, model: ModelId, sequence: u64) -> usize {
        let fallback = (sequence % self.partitions as u64) as usize;
        let Some(weights) = self.weights.get(&model) else {
            return fallback;
        };
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return fallback;
        }
        let mut k = sequence % total;
        for (partition, &count) in weights.iter().enumerate() {
            if k < count {
                return partition;
            }
            k -= count;
        }
        self.partitions - 1
    }
}

/// One round's unit of work: a partition with everything it mutates, moved
/// into a worker and moved back at the barrier — no shared state, nothing
/// for thread scheduling to race on.
struct ShardJob<'a, S> {
    sim: PartitionSim<'a>,
    cluster: NpuCluster,
    sink: S,
    bound: u64,
}

impl ClusterServingSim {
    /// [`ClusterServingSim::run`] over board-group partitions, optionally in
    /// parallel. Same seed and partition count ⇒ bit-identical report at any
    /// thread count; `partitions = 1` is bit-identical to the sequential run.
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::{ClusterServingSim, DeploySpec, DispatchPolicy, NodeId,
    ///               NpuCluster, ServingOptions, ShardOptions};
    /// use npu_sim::NpuConfig;
    /// use workloads::{ClusterTrace, ModelId};
    ///
    /// let npu = NpuConfig::single_core();
    /// let trace = ClusterTrace::poisson(&[(ModelId::Mnist, 20_000)], 48, 11);
    /// let run = |threads: usize| {
    ///     let mut fleet = NpuCluster::homogeneous(4, &npu);
    ///     for node in 0..4 {
    ///         fleet
    ///             .deploy_pinned(DeploySpec::replica(ModelId::Mnist, 2, 2), NodeId(node))
    ///             .expect("board capacity");
    ///     }
    ///     ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
    ///         .run_sharded(&mut fleet, &trace, ShardOptions::new(2).with_threads(threads))
    /// };
    /// // The thread count never changes the merged report.
    /// let single = run(1);
    /// assert_eq!(single, run(2));
    /// assert_eq!(single.stats.completed, 48);
    /// ```
    pub fn run_sharded(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        shard: ShardOptions,
    ) -> ServingReport {
        let mut sinks: Vec<NoopSink> = Vec::new();
        drive(self, cluster, trace, shard, &mut NoopControl, &mut sinks)
    }

    /// [`ClusterServingSim::run_sharded`] with per-partition observability.
    ///
    /// `sinks` is cleared and refilled with one default-constructed sink per
    /// effective partition; each partition's events land in its own sink, and
    /// the caller merges them afterwards (e.g.
    /// [`TraceRecorder::merge`](crate::obs::TraceRecorder::merge)). The
    /// simulation result is unaffected by observation.
    pub fn run_sharded_observed<S: ObsSink + Send + Default>(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        shard: ShardOptions,
        sinks: &mut Vec<S>,
    ) -> ServingReport {
        drive(self, cluster, trace, shard, &mut NoopControl, sinks)
    }

    /// [`ClusterServingSim::run_with_controller`] over board-group
    /// partitions: the control plane runs fleet-wide at every barrier tick,
    /// over the partitions' merged telemetry frame.
    ///
    /// # Panics
    ///
    /// Panics unless [`ServingOptions::with_telemetry`] was configured, for
    /// the same reason as [`ClusterServingSim::run_with_controller`].
    pub fn run_sharded_with_controller(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        shard: ShardOptions,
        controller: &mut dyn ControlPlane,
    ) -> ServingReport {
        assert!(
            self.options().telemetry_interval.is_some(),
            "run_sharded_with_controller requires ServingOptions::with_telemetry: \
             without a sampling interval the controller is never invoked"
        );
        let mut sinks: Vec<NoopSink> = Vec::new();
        drive(self, cluster, trace, shard, controller, &mut sinks)
    }

    /// [`ClusterServingSim::run_sharded_with_controller`] with per-partition
    /// observability (see [`ClusterServingSim::run_sharded_observed`]).
    ///
    /// # Panics
    ///
    /// Panics unless [`ServingOptions::with_telemetry`] was configured.
    pub fn run_sharded_observed_with_controller<S: ObsSink + Send + Default>(
        &self,
        cluster: &mut NpuCluster,
        trace: &ClusterTrace,
        shard: ShardOptions,
        controller: &mut dyn ControlPlane,
        sinks: &mut Vec<S>,
    ) -> ServingReport {
        assert!(
            self.options().telemetry_interval.is_some(),
            "run_sharded_observed_with_controller requires ServingOptions::with_telemetry: \
             without a sampling interval the controller is never invoked"
        );
        drive(self, cluster, trace, shard, controller, sinks)
    }
}

/// The coordinator: clamps the layout, splits the fleet, drives bounded
/// rounds through the worker pool, reconciles at barriers, and merges the
/// per-partition outcomes in index order.
fn drive<S: ObsSink + Send + Default>(
    sim: &ClusterServingSim,
    cluster: &mut NpuCluster,
    trace: &ClusterTrace,
    shard: ShardOptions,
    controller: &mut dyn ControlPlane,
    sinks: &mut Vec<S>,
) -> ServingReport {
    let options = sim.options();
    let mut partitions = shard.partitions.clamp(1, cluster.node_count().max(1));
    // SLO burn-rate evaluation is fleet-global state inside the event loop;
    // partitioning it would change alert edges. Such runs stay sequential.
    if options.slo.is_some() {
        partitions = 1;
    }
    if partitions <= 1 {
        sinks.clear();
        sinks.resize_with(1, S::default);
        return sim.run_loop(cluster, trace, controller, &mut sinks[0]);
    }
    let threads = shard.threads.clamp(1, partitions);

    // Contiguous board-groups in node-id order: group boundaries (and with
    // them the whole schedule) depend only on the fleet and the partition
    // count.
    let mut node_ids: Vec<NodeId> = cluster.nodes().iter().map(|node| node.id()).collect();
    node_ids.sort_unstable();
    let group = node_ids.len().div_ceil(partitions);
    let owners: BTreeMap<NodeId, usize> = node_ids
        .iter()
        .enumerate()
        .map(|(i, &node)| (node, (i / group).min(partitions - 1)))
        .collect();

    // Lookahead: no cross-partition effect lands sooner than one
    // interconnect setup.
    let lookahead = options.cost_model.interconnect.setup_cycles.max(1);
    let interval = options.telemetry_interval;

    // Scheduled cross- or intra-partition migrations bound the window so the
    // triggering event always runs before the barrier that would deliver its
    // envelope.
    let mut migration_times: Vec<u64> = options
        .migrations
        .iter()
        .map(|migration| migration.at.get())
        .collect();
    migration_times.sort_unstable();
    migration_times.dedup();

    // Per-partition options: each partition keeps the scheduled migrations
    // and faults of the boards it owns, and (for stochastic service) a seed
    // derived from its index — partition 0 keeps the base seed.
    let per_partition_options: Vec<ServingOptions> = (0..partitions)
        .map(|index| {
            let mut opts = options.clone();
            opts.migrations = options
                .migrations
                .iter()
                .filter(|migration| owners.get(&migration.handle.node) == Some(&index))
                .copied()
                .collect();
            opts.faults = options.faults.as_ref().map(|schedule| {
                schedule
                    .events()
                    .iter()
                    .filter(|event| owners.get(&event.kind.node()) == Some(&index))
                    .fold(FaultSchedule::new(), |acc, event| {
                        acc.with_fault(event.at, event.kind)
                    })
            });
            if index > 0 {
                if let Some(stochastic) = &mut opts.stochastic {
                    stochastic.seed = stochastic
                        .seed
                        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                }
            }
            opts
        })
        .collect();

    let mut clusters: Vec<NpuCluster> = cluster.take().split(&owners, partitions);
    sinks.clear();
    sinks.resize_with(partitions, S::default);
    let arrivals = trace.arrivals();
    let mut sims: Vec<PartitionSim> = per_partition_options
        .into_iter()
        .zip(clusters.iter_mut())
        .enumerate()
        .map(|(index, (opts, part_cluster))| {
            let context = ShardContext {
                index,
                owners: owners.clone(),
                plan: ShardPlan::empty(partitions),
                exports: Vec::new(),
            };
            PartitionSim::new_sharded(opts, part_cluster, arrivals, context)
        })
        .collect();
    rebuild_plan(&mut sims, partitions);

    let mut now: u64 = 0;
    let mut next_tick = interval;

    let run = |job: &mut ShardJob<S>| {
        // Workers never invoke the control plane: telemetry events are not
        // armed partition-side, so the controller only runs at barriers, on
        // the coordinator thread.
        job.sim
            .step_until(job.bound, &mut job.cluster, &mut NoopControl, &mut job.sink);
    };
    with_pool(threads, &run, |execute| {
        while sims.iter().any(PartitionSim::busy) {
            let pending_remote = sims.iter().any(PartitionSim::pending_remote);
            let mut bound = u64::MAX;
            if let Some(tick) = next_tick {
                bound = bound.min(tick);
            }
            if pending_remote {
                bound = bound.min(now.saturating_add(lookahead));
            }
            if let Some(&at) = migration_times.iter().find(|&&at| at >= now) {
                bound = bound.min(at.saturating_add(1));
            }

            // The round: every partition advances to the bound, in parallel.
            let jobs: Vec<(usize, ShardJob<S>)> = sims
                .drain(..)
                .zip(clusters.drain(..))
                .zip(sinks.drain(..))
                .enumerate()
                .map(|(index, ((sim, part_cluster), sink))| {
                    (
                        index,
                        ShardJob {
                            sim,
                            cluster: part_cluster,
                            sink,
                            bound,
                        },
                    )
                })
                .collect();
            for (_, job) in execute(jobs) {
                sims.push(job.sim);
                clusters.push(job.cluster);
                sinks.push(job.sink);
            }

            if bound == u64::MAX {
                // Final unbounded round: nothing bounded the future, so no
                // new cross-partition work can have appeared (scheduled
                // migrations are all in the past and no controller tick is
                // pending). The busy() re-check ends the loop.
                continue;
            }
            now = bound;

            // Barrier, phase 1: deliver cross-partition migrations, in
            // partition-index order then export order. A refused import
            // bounces home once; a second refusal abandons the replica with
            // every queued request attributed.
            for index in 0..partitions {
                let envelopes = sims[index].take_exports();
                for envelope in envelopes {
                    deliver(&mut sims, &mut clusters, sinks, &owners, envelope, now);
                }
            }

            // Barrier, phase 2: the telemetry tick — failover sweeps and
            // frame sampling per partition, then the control plane over the
            // merged fleet view, its actions routed back to the owners.
            if next_tick == Some(now) {
                if let Some(width) = interval {
                    next_tick = Some(now + width);
                }
                for index in 0..partitions {
                    sims[index].barrier_tick(&mut clusters[index], now, &mut sinks[index]);
                }
                sims[0].count_sample();
                let frame = merge_frames(&sims, now);
                // The control plane sees the whole fleet, so the partitions'
                // clusters are absorbed back into one; scale-ups place
                // against fleet-wide capacity, then everything re-splits.
                let mut fleet = NpuCluster::absorb(std::mem::take(&mut clusters));
                let actions = controller.control(&frame, &fleet);
                let mut adoptions: Vec<(VnpuHandle, ControlAction)> = Vec::new();
                let mut rejected: Vec<ControlAction> = Vec::new();
                let mut routed: Vec<ControlAction> = Vec::new();
                for action in actions {
                    match action {
                        ControlAction::ScaleUp { spec, placement } => {
                            match fleet.deploy(spec, placement) {
                                Ok(handle) => adoptions.push((handle, action)),
                                Err(_) => rejected.push(action),
                            }
                        }
                        ControlAction::ScaleDown { .. } | ControlAction::Migrate { .. } => {
                            routed.push(action)
                        }
                    }
                }
                clusters = fleet.split(&owners, partitions);
                for (handle, action) in adoptions {
                    let owner = owners.get(&handle.node).copied().unwrap_or(0);
                    sims[owner].adopt_replica(
                        &clusters[owner],
                        handle,
                        now,
                        &action,
                        &mut sinks[owner],
                    );
                }
                for action in rejected {
                    sims[0].note_scale_up_rejected(now, &action, &mut sinks[0]);
                }
                for action in routed {
                    let owner = match &action {
                        ControlAction::ScaleDown { handle } => handle.node,
                        ControlAction::Migrate { handle, .. } => handle.node,
                        ControlAction::ScaleUp { .. } => unreachable!("partitioned above"),
                    };
                    let owner = owners.get(&owner).copied().unwrap_or(0);
                    sims[owner].apply_barrier_action(
                        &mut clusters[owner],
                        action,
                        now,
                        &mut sinks[owner],
                    );
                }
            }

            // Barrier, phase 3: refresh the arrival-ownership plan from the
            // post-reconciliation replica placement.
            rebuild_plan(&mut sims, partitions);
        }
    });

    let mut outcomes = sims
        .into_iter()
        .zip(sinks.iter_mut())
        .map(|(partition, sink)| partition.finish(sink));
    let mut merged: PartitionOutcome = outcomes.next().expect("at least one partition"); // simlint::allow(P1, reason = "partitions is clamped to at least 1 above")
    for outcome in outcomes {
        merged.merge(outcome);
    }
    *cluster = NpuCluster::absorb(clusters);
    merged.into_report()
}

/// Delivers one envelope to the partition owning its destination board,
/// bouncing it back to its source partition on a refused import and
/// abandoning it (with full loss attribution) if the bounce is refused too.
fn deliver<S: ObsSink>(
    sims: &mut [PartitionSim],
    clusters: &mut [NpuCluster],
    sinks: &mut [S],
    owners: &BTreeMap<NodeId, usize>,
    envelope: MigrationEnvelope,
    now: u64,
) {
    let target = owners.get(&envelope.to_node).copied().unwrap_or(0);
    let Err(mut envelope) =
        sims[target].import_replica(&mut clusters[target], envelope, now, &mut sinks[target])
    else {
        return;
    };
    sims[target].note_migration_rejected();
    if envelope.bounced {
        let source = owners.get(&envelope.from_node).copied().unwrap_or(0);
        sims[source].abandon_envelope(*envelope, now, &mut sinks[source]);
        return;
    }
    envelope.bounced = true;
    envelope.to_node = envelope.from_node;
    let source = owners.get(&envelope.to_node).copied().unwrap_or(0);
    if let Err(envelope) =
        sims[source].import_replica(&mut clusters[source], *envelope, now, &mut sinks[source])
    {
        sims[source].abandon_envelope(*envelope, now, &mut sinks[source]);
    }
}

/// Rebuilds the arrival-ownership plan from every partition's current
/// dispatchable replicas and installs it everywhere.
fn rebuild_plan(sims: &mut [PartitionSim], partitions: usize) {
    let mut weights: BTreeMap<ModelId, Vec<u64>> = BTreeMap::new();
    for partition in sims.iter() {
        partition.accumulate_weights(&mut weights, partitions);
    }
    let plan = ShardPlan::new(partitions, weights);
    for partition in sims.iter_mut() {
        partition.set_plan(plan.clone());
    }
}

/// Merges the partitions' telemetry frames into one fleet view for the
/// control plane, in partition-index order.
///
/// Counts (replicas, queue depths, arrivals, rejections, deadline tallies)
/// merge exactly. Latency summaries merge approximately: count-weighted mean
/// and the maximum of each percentile — a conservative fleet tail. The
/// window and timestamps are identical across partitions (all ticked at the
/// same barrier), so they pass through unchanged.
fn merge_frames(sims: &[PartitionSim], now: u64) -> TelemetryFrame {
    let mut frame = TelemetryFrame {
        at: Cycles(now),
        window: Cycles::ZERO,
        replicas: Vec::new(),
        models: BTreeMap::new(),
    };
    for partition in sims {
        let part = partition.frame();
        frame.window = Cycles(frame.window.get().max(part.window.get()));
        frame.replicas.extend(part.replicas.iter().copied());
        for (model, sample) in &part.models {
            let entry = frame
                .models
                .entry(*model)
                .or_insert_with(|| ModelSample::empty(*model));
            entry.replicas += sample.replicas;
            entry.queued += sample.queued;
            entry.in_flight += sample.in_flight;
            entry.arrivals += sample.arrivals;
            entry.rejected += sample.rejected;
            entry.latency = merge_latency(&entry.latency, &sample.latency);
            entry.deadline.with_deadline += sample.deadline.with_deadline;
            entry.deadline.met += sample.deadline.met;
            entry.deadline.missed += sample.deadline.missed;
            entry.deadline.dropped += sample.deadline.dropped;
        }
    }
    frame
}

/// Count-weighted approximate merge of two latency summaries: exact count
/// and mean, max of each percentile (conservative for tail-driven control).
fn merge_latency(a: &LatencySummary, b: &LatencySummary) -> LatencySummary {
    if a.count == 0 {
        return *b;
    }
    if b.count == 0 {
        return *a;
    }
    let count = a.count + b.count;
    LatencySummary {
        count,
        mean: (a.mean * a.count as f64 + b.mean * b.count as f64) / count as f64,
        p50: a.p50.max(b.p50),
        p95: a.p95.max(b.p95),
        p99: a.p99.max(b.p99),
        max: a.max.max(b.max),
    }
}
