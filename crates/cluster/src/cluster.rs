//! [`NpuCluster`]: the fleet of `VnpuManager`-backed nodes, the deploy path
//! through the placement engine, and cold migration between nodes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use neu10::scheduler::VnpuContext;
use neu10::{MappingMode, Neu10Error, VnpuConfig, VnpuId};
use npu_sim::NpuConfig;
use workloads::ModelId;

use crate::inventory::{NodeInventory, ResourceDemand};
use crate::migration::{MigrationCostModel, MigrationOutcome, MigrationRecord};
use crate::node::ClusterNode;
use crate::placement::{rank_nodes, PlacementCandidate, PlacementPolicy};
use crate::NodeId;

/// Cluster-wide identity of a deployed vNPU: vNPU ids are node-local, so the
/// pair (node, vnpu) names a deployment. Migration changes the handle; the
/// new handle is returned in the [`MigrationOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VnpuHandle {
    /// The hosting node.
    pub node: NodeId,
    /// The node-local vNPU id.
    pub vnpu: VnpuId,
}

impl fmt::Display for VnpuHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.vnpu)
    }
}

/// What the operator asks the cluster to deploy: a serving replica of one
/// model with an engine allocation and (optionally explicit) memory sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploySpec {
    /// The model the replica serves.
    pub model: ModelId,
    /// Matrix engines per replica.
    pub mes: usize,
    /// Vector engines per replica.
    pub ves: usize,
    /// SRAM bytes; `None` sizes to half the hosting core's SRAM.
    pub sram_bytes: Option<u64>,
    /// HBM bytes; `None` sizes to a quarter of the hosting core's HBM.
    pub hbm_bytes: Option<u64>,
    /// Scheduling priority (≥ 1).
    pub priority: u32,
    /// Isolation mode of the placement.
    pub mode: MappingMode,
}

impl DeploySpec {
    /// A hardware-isolated serving replica with default memory sizing.
    pub fn replica(model: ModelId, mes: usize, ves: usize) -> Self {
        DeploySpec {
            model,
            mes,
            ves,
            sram_bytes: None,
            hbm_bytes: None,
            priority: 1,
            mode: MappingMode::HardwareIsolated,
        }
    }

    /// Overrides the memory sizing.
    pub fn with_memory(mut self, sram_bytes: u64, hbm_bytes: u64) -> Self {
        self.sram_bytes = Some(sram_bytes);
        self.hbm_bytes = Some(hbm_bytes);
        self
    }

    /// Overrides the isolation mode.
    pub fn with_mode(mut self, mode: MappingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the scheduling priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Resolves the spec into a concrete vNPU configuration for a node type.
    pub fn vnpu_config(&self, npu: &NpuConfig) -> VnpuConfig {
        VnpuConfig::single_core(
            self.mes,
            self.ves,
            self.sram_bytes.unwrap_or(npu.sram_bytes_per_core / 2),
            self.hbm_bytes.unwrap_or(npu.hbm_bytes_per_core / 4),
        )
    }
}

/// The cluster's record of one live deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeployedVnpu {
    /// Where the vNPU lives.
    pub handle: VnpuHandle,
    /// The model the replica serves.
    pub model: ModelId,
    /// The resolved vNPU configuration.
    pub config: VnpuConfig,
    /// Scheduling priority.
    pub priority: u32,
    /// Isolation mode.
    pub mode: MappingMode,
}

/// Fleet-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// No node can host the requested deployment.
    NoCapacity(String),
    /// The node id does not exist in this cluster.
    UnknownNode(NodeId),
    /// The handle does not name a live deployment.
    UnknownVnpu(VnpuHandle),
    /// Migration source and destination are the same node.
    SameNode(NodeId),
    /// An error surfaced by a node's vNPU manager.
    Node(Neu10Error),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoCapacity(reason) => write!(f, "no capacity: {reason}"),
            ClusterError::UnknownNode(node) => write!(f, "unknown node {node}"),
            ClusterError::UnknownVnpu(handle) => write!(f, "unknown vNPU {handle}"),
            ClusterError::SameNode(node) => {
                write!(f, "migration source and destination are both {node}")
            }
            ClusterError::Node(err) => write!(f, "node error: {err}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<Neu10Error> for ClusterError {
    fn from(err: Neu10Error) -> Self {
        ClusterError::Node(err)
    }
}

/// A fleet of NPU boards with cluster-level placement and migration.
#[derive(Debug)]
pub struct NpuCluster {
    nodes: Vec<ClusterNode>,
    deployments: BTreeMap<VnpuHandle, DeployedVnpu>,
    /// Boards fenced off from placement (declared dead or administratively
    /// cordoned). Existing deployments stay visible until undeployed.
    offline: BTreeSet<NodeId>,
}

impl NpuCluster {
    /// Builds a cluster from explicit per-node board configurations.
    pub fn new(configs: Vec<NpuConfig>) -> Self {
        let nodes = configs
            .into_iter()
            .enumerate()
            .map(|(index, config)| ClusterNode::new(NodeId(index as u32), &config))
            .collect();
        NpuCluster {
            nodes,
            deployments: BTreeMap::new(),
            offline: BTreeSet::new(),
        }
    }

    /// Builds a homogeneous cluster of `count` identical boards.
    pub fn homogeneous(count: usize, npu: &NpuConfig) -> Self {
        NpuCluster::new(vec![npu.clone(); count.max(1)])
    }

    /// Number of nodes in the fleet.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&ClusterNode> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    fn node_mut(&mut self, id: NodeId) -> Option<&mut ClusterNode> {
        self.nodes.iter_mut().find(|n| n.id() == id)
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Per-node inventory snapshots, in node order.
    pub fn inventories(&self) -> Vec<NodeInventory> {
        self.nodes.iter().map(|n| n.inventory()).collect()
    }

    /// Live deployments, in handle order.
    pub fn deployments(&self) -> impl Iterator<Item = &DeployedVnpu> {
        self.deployments.values()
    }

    /// The deployment behind a handle.
    pub fn deployment(&self, handle: VnpuHandle) -> Option<&DeployedVnpu> {
        self.deployments.get(&handle)
    }

    /// Total live vNPUs across the fleet.
    pub fn total_vnpus(&self) -> usize {
        debug_assert_eq!(
            self.deployments.len(),
            self.nodes
                .iter()
                .map(|n| n.manager().vnpu_count())
                .sum::<usize>(),
            "deployment records must mirror the per-node managers"
        );
        self.deployments.len()
    }

    /// Fences a board off from (or readmits it to) the placement engine.
    ///
    /// Offline boards are skipped by [`deploy`](NpuCluster::deploy) and by
    /// migration re-placement; deployments already on the board remain
    /// visible so failover can enumerate and tear them down. Unknown node
    /// ids are ignored.
    pub fn set_offline(&mut self, node: NodeId, offline: bool) {
        if offline {
            if self.nodes.iter().any(|n| n.id() == node) {
                self.offline.insert(node);
            }
        } else {
            self.offline.remove(&node);
        }
    }

    /// Whether a board is currently fenced off from placement.
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.offline.contains(&node)
    }

    /// Boards currently fenced off from placement, in id order.
    pub fn offline_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.offline.iter().copied()
    }

    /// Bytes of SRAM + HBM state resident on a deployment — the volume a
    /// migration must move. `None` for stale handles.
    pub fn resident_state_bytes(&self, handle: VnpuHandle) -> Option<u64> {
        let node = self.node(handle.node)?;
        let placement = node.manager().placement(handle.vnpu)?;
        let npu = node.npu_config();
        Some(
            placement.sram_segments as u64 * npu.sram_segment_bytes
                + placement.hbm_segments as u64 * npu.hbm_segment_bytes,
        )
    }

    /// Replicas of `model` resident on `node`.
    pub fn replicas_on(&self, node: NodeId, model: ModelId) -> usize {
        self.deployments
            .values()
            .filter(|d| d.handle.node == node && d.model == model)
            .count()
    }

    /// Places and starts a new vNPU replica, returning its handle.
    ///
    /// Nodes are tried in placement-score order: board-level admission can
    /// pass while per-core packing refuses (a fragmented multi-core board),
    /// in which case the next-ranked node is attempted.
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::{DeploySpec, NpuCluster, PlacementPolicy};
    /// use npu_sim::NpuConfig;
    /// use workloads::ModelId;
    ///
    /// let mut fleet = NpuCluster::homogeneous(4, &NpuConfig::single_core());
    /// let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
    /// let handle = fleet.deploy(spec, PlacementPolicy::WorstFit)?;
    /// assert_eq!(fleet.replicas_on(handle.node, ModelId::Mnist), 1);
    /// // Worst-fit spreads: the next replica lands on a different board.
    /// let second = fleet.deploy(spec, PlacementPolicy::WorstFit)?;
    /// assert_ne!(handle.node, second.node);
    /// # Ok::<(), cluster::ClusterError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoCapacity`] when no node admits the demand
    /// and propagates manager errors otherwise.
    pub fn deploy(
        &mut self,
        spec: DeploySpec,
        policy: PlacementPolicy,
    ) -> Result<VnpuHandle, ClusterError> {
        // Score every node against its *own* demand (boards may be
        // heterogeneous, so segment rounding differs per node).
        let candidates: Vec<(PlacementCandidate, ResourceDemand)> = self
            .nodes
            .iter()
            .filter(|node| !self.offline.contains(&node.id()))
            .map(|node| {
                let npu = node.npu_config();
                (
                    PlacementCandidate {
                        inventory: node.inventory(),
                        model_replicas: self.replicas_on(node.id(), spec.model),
                    },
                    ResourceDemand::of(&spec.vnpu_config(npu), npu),
                )
            })
            .collect();

        for node_id in rank_nodes(policy, &candidates) {
            let node = self.node_mut(node_id).expect("ranked node exists"); // simlint::allow(P1, reason = "rank_nodes returns only ids from the candidate scan above")
            let config = spec.vnpu_config(node.npu_config());
            let vnpu = match node
                .manager_mut()
                .create_vnpu(config, spec.mode, spec.priority)
            {
                Ok(vnpu) => vnpu,
                // Board totals admitted the demand but no single core can
                // pack it; fall through to the next-ranked node.
                Err(Neu10Error::InsufficientResources { .. }) => continue,
                Err(err) => return Err(err.into()),
            };
            node.manager_mut().start_vnpu(vnpu)?;

            let handle = VnpuHandle {
                node: node_id,
                vnpu,
            };
            self.deployments.insert(
                handle,
                DeployedVnpu {
                    handle,
                    model: spec.model,
                    config,
                    priority: spec.priority,
                    mode: spec.mode,
                },
            );
            return Ok(handle);
        }
        Err(ClusterError::NoCapacity(format!(
            "no node can host {} MEs / {} VEs for {:?}",
            spec.mes, spec.ves, spec.model
        )))
    }

    /// Places and starts a new vNPU replica on one specific node, bypassing
    /// the placement engine — for fleet builders that pin replicas to boards
    /// and for the sharded runner's import path, where the destination was
    /// chosen (and scored) before the replica crossed the partition boundary.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for a node not in this cluster
    /// and [`ClusterError::NoCapacity`] when the node is offline or refuses
    /// the demand.
    pub fn deploy_pinned(
        &mut self,
        spec: DeploySpec,
        node_id: NodeId,
    ) -> Result<VnpuHandle, ClusterError> {
        if self.offline.contains(&node_id) {
            return Err(ClusterError::NoCapacity(format!(
                "node {node_id} is offline"
            )));
        }
        let node = self
            .node_mut(node_id)
            .ok_or(ClusterError::UnknownNode(node_id))?;
        let config = spec.vnpu_config(node.npu_config());
        let vnpu = node
            .manager_mut()
            .create_vnpu(config, spec.mode, spec.priority)
            .and_then(|vnpu| node.manager_mut().start_vnpu(vnpu).map(|()| vnpu))
            .map_err(|err| {
                ClusterError::NoCapacity(format!("node {node_id} rejected the vNPU: {err}"))
            })?;
        let handle = VnpuHandle {
            node: node_id,
            vnpu,
        };
        self.deployments.insert(
            handle,
            DeployedVnpu {
                handle,
                model: spec.model,
                config,
                priority: spec.priority,
                mode: spec.mode,
            },
        );
        Ok(handle)
    }

    /// Moves the whole fleet out, leaving an empty cluster behind. The
    /// sharded runner swaps the fleet out of the caller's `&mut NpuCluster`,
    /// splits it across partitions, and absorbs it back at the end.
    pub(crate) fn take(&mut self) -> NpuCluster {
        NpuCluster {
            nodes: std::mem::take(&mut self.nodes),
            deployments: std::mem::take(&mut self.deployments),
            offline: std::mem::take(&mut self.offline),
        }
    }

    /// Splits the fleet into per-partition sub-clusters by node ownership.
    /// Nodes, deployments and offline fences move (never clone) to the
    /// partition owning their node; nodes missing from `owner_of` land in
    /// partition 0. The inverse is [`NpuCluster::absorb`].
    pub(crate) fn split(
        self,
        owner_of: &BTreeMap<NodeId, usize>,
        partitions: usize,
    ) -> Vec<NpuCluster> {
        let mut parts: Vec<NpuCluster> = (0..partitions.max(1))
            .map(|_| NpuCluster {
                nodes: Vec::new(),
                deployments: BTreeMap::new(),
                offline: BTreeSet::new(),
            })
            .collect();
        let last = parts.len() - 1;
        let owner = |node: NodeId| owner_of.get(&node).copied().unwrap_or(0).min(last);
        let NpuCluster {
            nodes,
            deployments,
            offline,
        } = self;
        for node in nodes {
            let to = owner(node.id());
            parts[to].nodes.push(node);
        }
        for (handle, deployment) in deployments {
            let to = owner(handle.node);
            parts[to].deployments.insert(handle, deployment);
        }
        for node in offline {
            let to = owner(node);
            parts[to].offline.insert(node);
        }
        parts
    }

    /// Reassembles a fleet split by [`NpuCluster::split`], restoring the
    /// id-ordered node vector so placement scans rank nodes exactly as an
    /// unsplit cluster would.
    pub(crate) fn absorb(parts: Vec<NpuCluster>) -> NpuCluster {
        let mut nodes = Vec::new();
        let mut deployments = BTreeMap::new();
        let mut offline = BTreeSet::new();
        for part in parts {
            nodes.extend(part.nodes);
            deployments.extend(part.deployments);
            offline.extend(part.offline);
        }
        nodes.sort_by_key(|node| node.id());
        NpuCluster {
            nodes,
            deployments,
            offline,
        }
    }

    /// Tears down a deployment and releases its resources.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVnpu`] for a stale handle.
    pub fn undeploy(&mut self, handle: VnpuHandle) -> Result<(), ClusterError> {
        let deployment = self
            .deployments
            .remove(&handle)
            .ok_or(ClusterError::UnknownVnpu(handle))?;
        let node = self
            .node_mut(deployment.handle.node)
            .ok_or(ClusterError::UnknownNode(deployment.handle.node))?;
        node.manager_mut().destroy_vnpu(handle.vnpu)?;
        Ok(())
    }

    /// Cold-migrates a deployment to `to`: drain → snapshot → transfer →
    /// re-place → resume. `drain_cycles` is the caller's live estimate of the
    /// in-flight work (the serving simulator passes the actual remaining
    /// service time); `None` charges the cost model's grace budget.
    ///
    /// The destination placement is established *before* the source is torn
    /// down (both live briefly, like the real transfer window), so a refused
    /// migration leaves the source untouched and the caller's handle valid.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVnpu`] / [`ClusterError::UnknownNode`] /
    /// [`ClusterError::SameNode`] for bad arguments and
    /// [`ClusterError::NoCapacity`] when the destination cannot host the vNPU.
    pub fn migrate(
        &mut self,
        handle: VnpuHandle,
        to: NodeId,
        cost: &MigrationCostModel,
        drain_cycles: Option<u64>,
    ) -> Result<MigrationOutcome, ClusterError> {
        let deployment = *self
            .deployments
            .get(&handle)
            .ok_or(ClusterError::UnknownVnpu(handle))?;
        if to == handle.node {
            return Err(ClusterError::SameNode(to));
        }
        if self.node(to).is_none() {
            return Err(ClusterError::UnknownNode(to));
        }

        // Snapshot the context and compute the state volume while the source
        // placement is still live.
        let source = self
            .node(handle.node)
            .ok_or(ClusterError::UnknownNode(handle.node))?;
        let placement = *source
            .manager()
            .placement(handle.vnpu)
            .ok_or(ClusterError::UnknownVnpu(handle))?;
        let src_npu = source.npu_config().clone();
        let context = VnpuContext::new(handle.vnpu, placement.mes, placement.ves);
        let state_bytes = self
            .resident_state_bytes(handle)
            .expect("placement resolved above"); // simlint::allow(P1, reason = "resident_state_bytes is Some for the deployment resolved above")

        // Establish the destination placement first: if it is refused, the
        // source deployment is untouched and the handle stays valid.
        let dest_config = {
            let dest = self.node(to).expect("destination checked above"); // simlint::allow(P1, reason = "destination node membership checked at entry")
            DeploySpec {
                model: deployment.model,
                mes: deployment.config.num_mes_per_core,
                ves: deployment.config.num_ves_per_core,
                sram_bytes: Some(deployment.config.sram_size_per_core),
                hbm_bytes: Some(deployment.config.mem_size_per_core),
                priority: deployment.priority,
                mode: deployment.mode,
            }
            .vnpu_config(dest.npu_config())
        };
        let dest_result = {
            let dest = self.node_mut(to).expect("destination checked above"); // simlint::allow(P1, reason = "destination node membership checked at entry")
            dest.manager_mut()
                .create_vnpu(dest_config, deployment.mode, deployment.priority)
                .and_then(|vnpu| dest.manager_mut().start_vnpu(vnpu).map(|()| vnpu))
        };
        let dest_vnpu = match dest_result {
            Ok(vnpu) => vnpu,
            Err(err) => {
                return Err(ClusterError::NoCapacity(format!(
                    "destination {to} rejected the vNPU: {err}"
                )));
            }
        };

        // Tear down the source mapping now that the destination is live.
        self.deployments.remove(&handle);
        self.node_mut(handle.node)
            .expect("source node exists") // simlint::allow(P1, reason = "handle.node held a deployment, so the source node exists")
            .manager_mut()
            .destroy_vnpu(handle.vnpu)?;

        let new_handle = VnpuHandle {
            node: to,
            vnpu: dest_vnpu,
        };
        self.deployments.insert(
            new_handle,
            DeployedVnpu {
                handle: new_handle,
                ..deployment
            },
        );

        // The record is priced as a cold stop-and-copy; the serving
        // simulator's pre-copy path overwrites the mode, transfer window and
        // round accounting after the switch-over.
        let record = MigrationRecord {
            source_vnpu: handle.vnpu,
            dest_vnpu,
            from: handle.node,
            to,
            mode: crate::migration::MigrationMode::Cold,
            state_bytes,
            drain_cycles: drain_cycles.unwrap_or(cost.drain_grace_cycles),
            transfer_cycles: cost.transfer_cycles(state_bytes, src_npu.frequency).get(),
            remap_cycles: cost.remap_cycles,
            precopy_rounds: 0,
            round_bytes: Vec::new(),
            precopy_bytes: 0,
            precopy_cycles: 0,
            converged: true,
        };
        Ok(MigrationOutcome { record, context })
    }
}

impl MigrationOutcome {
    /// The handle of the vNPU after the migration.
    pub fn new_handle(&self) -> VnpuHandle {
        VnpuHandle {
            node: self.record.to,
            vnpu: self.record.dest_vnpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(nodes: usize) -> NpuCluster {
        NpuCluster::homogeneous(nodes, &NpuConfig::single_core())
    }

    #[test]
    fn deploy_places_starts_and_accounts() {
        let mut fleet = small_fleet(2);
        let handle = fleet
            .deploy(
                DeploySpec::replica(ModelId::Mnist, 2, 2),
                PlacementPolicy::BestFit,
            )
            .unwrap();
        assert_eq!(fleet.total_vnpus(), 1);
        assert_eq!(fleet.replicas_on(handle.node, ModelId::Mnist), 1);
        let node = fleet.node(handle.node).unwrap();
        assert_eq!(node.manager().vnpu_count(), 1);
        assert!(node.manager().placement(handle.vnpu).is_some());
        fleet.undeploy(handle).unwrap();
        assert_eq!(fleet.total_vnpus(), 0);
    }

    #[test]
    fn best_fit_fills_a_node_before_spilling() {
        let mut fleet = small_fleet(2);
        let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
        let a = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        assert_eq!(a.node, b.node, "best-fit packs the same board");
        let c = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        assert_ne!(c.node, a.node, "full board spills to the next");
    }

    #[test]
    fn worst_fit_spreads_replicas() {
        let mut fleet = small_fleet(2);
        let spec = DeploySpec::replica(ModelId::Mnist, 2, 2);
        let a = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        let b = fleet.deploy(spec, PlacementPolicy::WorstFit).unwrap();
        assert_ne!(a.node, b.node, "worst-fit spreads across boards");
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut fleet = small_fleet(1);
        let spec = DeploySpec::replica(ModelId::Mnist, 4, 4);
        fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        let err = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap_err();
        assert!(matches!(err, ClusterError::NoCapacity(_)));
        assert_eq!(fleet.total_vnpus(), 1);
    }

    #[test]
    fn migration_moves_state_and_preserves_count() {
        let mut fleet = small_fleet(2);
        let handle = fleet
            .deploy(
                DeploySpec::replica(ModelId::Bert, 2, 2),
                PlacementPolicy::BestFit,
            )
            .unwrap();
        let other = NodeId(if handle.node.0 == 0 { 1 } else { 0 });
        let cost = MigrationCostModel::default();
        let outcome = fleet.migrate(handle, other, &cost, Some(1_000)).unwrap();

        assert_eq!(fleet.total_vnpus(), 1);
        assert_eq!(outcome.record.from, handle.node);
        assert_eq!(outcome.record.to, other);
        assert_eq!(outcome.record.drain_cycles, 1_000);
        assert!(outcome.record.state_bytes > 0);
        assert!(outcome.record.transfer_cycles > 0);
        assert!(outcome.record.downtime().get() > 1_000);
        assert_eq!(outcome.context.allocated_mes, 2);

        let new_handle = outcome.new_handle();
        assert_eq!(fleet.deployment(new_handle).unwrap().model, ModelId::Bert);
        assert!(fleet.deployment(handle).is_none(), "old handle is stale");
        assert_eq!(fleet.node(handle.node).unwrap().manager().vnpu_count(), 0);
        assert_eq!(fleet.node(other).unwrap().manager().vnpu_count(), 1);
    }

    #[test]
    fn failed_migration_restores_the_source() {
        let mut fleet = small_fleet(2);
        // Fill node 1 completely so it cannot receive the migrant.
        let blocker = DeploySpec::replica(ModelId::Mnist, 4, 4);
        let spec = DeploySpec::replica(ModelId::Bert, 2, 2);
        let a = fleet.deploy(spec, PlacementPolicy::BestFit).unwrap();
        let dst = NodeId(if a.node.0 == 0 { 1 } else { 0 });
        // Occupy the destination's engines.
        let b = fleet.deploy(blocker, PlacementPolicy::BestFit).unwrap();
        assert_eq!(b.node, dst);

        let err = fleet
            .migrate(a, dst, &MigrationCostModel::default(), None)
            .unwrap_err();
        assert!(matches!(err, ClusterError::NoCapacity(_)));
        assert_eq!(fleet.total_vnpus(), 2, "nothing was lost");
        assert!(
            fleet.deployment(a).is_some(),
            "a refused migration must leave the caller's handle valid"
        );
        assert_eq!(
            fleet
                .deployments()
                .filter(|d| d.model == ModelId::Bert)
                .count(),
            1
        );
    }

    #[test]
    fn bad_arguments_are_rejected() {
        let mut fleet = small_fleet(2);
        let handle = fleet
            .deploy(
                DeploySpec::replica(ModelId::Mnist, 1, 1),
                PlacementPolicy::BestFit,
            )
            .unwrap();
        let cost = MigrationCostModel::default();
        assert!(matches!(
            fleet.migrate(handle, handle.node, &cost, None),
            Err(ClusterError::SameNode(_))
        ));
        assert!(matches!(
            fleet.migrate(handle, NodeId(99), &cost, None),
            Err(ClusterError::UnknownNode(_))
        ));
        let stale = VnpuHandle {
            node: NodeId(0),
            vnpu: VnpuId(77),
        };
        assert!(matches!(
            fleet.migrate(stale, NodeId(1), &cost, None),
            Err(ClusterError::UnknownVnpu(_))
        ));
        assert!(fleet.undeploy(stale).is_err());
    }
}
