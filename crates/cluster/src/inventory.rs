//! Per-node resource inventory: the free ME/VE/SRAM/HBM capacity the
//! placement engine scores over.

use neu10::VnpuConfig;
use npu_sim::NpuConfig;

use crate::NodeId;

/// The resources one vNPU deployment asks a node for, in the mapper's units
/// (engines and memory segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceDemand {
    /// Matrix engines requested.
    pub mes: usize,
    /// Vector engines requested.
    pub ves: usize,
    /// SRAM segments requested.
    pub sram_segments: u32,
    /// HBM segments requested.
    pub hbm_segments: u32,
}

impl ResourceDemand {
    /// Derives the demand of a vNPU configuration against a board type,
    /// mirroring the segment rounding of `neu10::PnpuMapper`.
    pub fn of(config: &VnpuConfig, npu: &NpuConfig) -> Self {
        ResourceDemand {
            mes: config.num_mes_per_core,
            ves: config.num_ves_per_core,
            sram_segments: config
                .sram_size_per_core
                .div_ceil(npu.sram_segment_bytes)
                .max(1) as u32,
            hbm_segments: config
                .mem_size_per_core
                .div_ceil(npu.hbm_segment_bytes)
                .max(1) as u32,
        }
    }
}

/// A snapshot of one node's free and total capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInventory {
    /// The node described.
    pub node: NodeId,
    /// Total MEs on the board.
    pub total_mes: usize,
    /// Free (uncommitted) MEs.
    pub free_mes: usize,
    /// Total VEs on the board.
    pub total_ves: usize,
    /// Free (uncommitted) VEs.
    pub free_ves: usize,
    /// Total SRAM segments on the board.
    pub total_sram_segments: u32,
    /// Free SRAM segments.
    pub free_sram_segments: u32,
    /// Total HBM segments on the board.
    pub total_hbm_segments: u32,
    /// Free HBM segments.
    pub free_hbm_segments: u32,
    /// vNPUs currently mapped on the node.
    pub resident_vnpus: usize,
}

impl NodeInventory {
    /// Whether the node still has `demand` free (board-level accounting; the
    /// per-core packing decision stays with the node's `PnpuMapper`).
    pub fn can_host(&self, demand: &ResourceDemand) -> bool {
        self.free_mes >= demand.mes
            && self.free_ves >= demand.ves
            && self.free_sram_segments >= demand.sram_segments
            && self.free_hbm_segments >= demand.hbm_segments
    }

    /// Committed fraction of the node's execution units.
    pub fn eu_utilization(&self) -> f64 {
        let total = (self.total_mes + self.total_ves) as f64;
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - (self.free_mes + self.free_ves) as f64 / total
    }

    /// Committed fraction of the node's HBM segments.
    pub fn memory_utilization(&self) -> f64 {
        if self.total_hbm_segments == 0 {
            return 0.0;
        }
        1.0 - self.free_hbm_segments as f64 / self.total_hbm_segments as f64
    }

    /// The committed-EU vs committed-memory imbalance *after* hypothetically
    /// hosting `demand` (0 = perfectly balanced); used by topology-aware
    /// scoring to avoid stranding memory behind exhausted engines.
    pub fn imbalance_after(&self, demand: &ResourceDemand) -> f64 {
        let total_eus = (self.total_mes + self.total_ves) as f64;
        let total_mem = self.total_hbm_segments as f64;
        if total_eus <= 0.0 || total_mem <= 0.0 {
            return 0.0;
        }
        let eu_frac = 1.0
            - (self.free_mes.saturating_sub(demand.mes) + self.free_ves.saturating_sub(demand.ves))
                as f64
                / total_eus;
        let mem_frac =
            1.0 - self.free_hbm_segments.saturating_sub(demand.hbm_segments) as f64 / total_mem;
        (eu_frac - mem_frac).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory(free_mes: usize, free_ves: usize, free_hbm: u32) -> NodeInventory {
        NodeInventory {
            node: NodeId(0),
            total_mes: 8,
            free_mes,
            total_ves: 8,
            free_ves,
            total_sram_segments: 64,
            free_sram_segments: 64,
            total_hbm_segments: 64,
            free_hbm_segments: free_hbm,
            resident_vnpus: 0,
        }
    }

    #[test]
    fn demand_rounds_memory_to_segments() {
        let npu = NpuConfig::single_core();
        let config = VnpuConfig::single_core(2, 2, 1, 1);
        let demand = ResourceDemand::of(&config, &npu);
        assert_eq!(demand.mes, 2);
        assert_eq!(demand.sram_segments, 1, "sub-segment SRAM rounds up to 1");
        assert_eq!(demand.hbm_segments, 1, "sub-segment HBM rounds up to 1");
    }

    #[test]
    fn can_host_checks_every_dimension() {
        let demand = ResourceDemand {
            mes: 2,
            ves: 2,
            sram_segments: 4,
            hbm_segments: 8,
        };
        assert!(inventory(4, 4, 32).can_host(&demand));
        assert!(!inventory(1, 4, 32).can_host(&demand));
        assert!(!inventory(4, 1, 32).can_host(&demand));
        assert!(!inventory(4, 4, 4).can_host(&demand));
    }

    #[test]
    fn utilization_fractions_are_bounded() {
        let inv = inventory(2, 6, 16);
        assert!((inv.eu_utilization() - 0.5).abs() < 1e-12);
        assert!((inv.memory_utilization() - 0.75).abs() < 1e-12);
    }
}
