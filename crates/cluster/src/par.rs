//! The worker-pool layer under the sharded serving loop: scoped threads,
//! per-worker [`std::sync::mpsc`] job channels, and a deterministic
//! round-result ordering.
//!
//! This is the **only** module in the digest-affecting crates that touches
//! host concurrency (simlint rule `T1`), and it is built so that thread
//! scheduling can never reach a simulation result:
//!
//! * Jobs are *moved* into workers and moved back — no shared mutable state,
//!   no locks, nothing for the scheduler to race on.
//! * Each job is tagged with its partition index, assigned to a worker by
//!   `tag % threads` (static, timing-independent), and every round's results
//!   are re-sorted by tag before the caller sees them.
//! * With `threads <= 1` no thread is ever spawned: jobs run in tag order on
//!   the calling thread, monomorphizing to a plain loop.
//!
//! The result: for a fixed partition count, the bytes of the merged report
//! are identical at every thread count — threads buy wall-clock, never
//! different answers.

use std::sync::mpsc; // simlint::allow(T1, reason = "cluster::par is the audited concurrency layer: jobs move by value, results re-sort by tag")

/// Runs `body` with a round executor: a function that takes one round of
/// tagged jobs, runs `run` on each (in parallel across up to `threads`
/// workers), and returns them sorted by tag.
///
/// The pool persists across rounds — workers are spawned once, fed over
/// per-worker channels, and joined when `body` returns — so a thousand
/// barrier rounds cost a thousand channel sends, not a thousand thread
/// spawns.
pub(crate) fn with_pool<T: Send, R>(
    threads: usize,
    run: &(dyn Fn(&mut T) + Send + Sync),
    body: impl FnOnce(&mut dyn FnMut(Vec<(usize, T)>) -> Vec<(usize, T)>) -> R,
) -> R {
    if threads <= 1 {
        // Sequential fast path: no spawn, no channels, jobs run in tag
        // order. This is also why `threads=1` is bit-identical to `threads=N`
        // by construction rather than by luck.
        let mut execute = |mut jobs: Vec<(usize, T)>| {
            jobs.sort_by_key(|(tag, _)| *tag);
            for (_, job) in jobs.iter_mut() {
                run(job);
            }
            jobs
        };
        return body(&mut execute);
    }

    // simlint::allow(T1, reason = "cluster::par is the audited concurrency layer: jobs move by value, results re-sort by tag, scheduling cannot reach a digest")
    std::thread::scope(|scope| {
        let mut senders: Vec<mpsc::Sender<(usize, T)>> = Vec::with_capacity(threads); // simlint::allow(T1, reason = "per-worker job channels of the audited pool")
        let (done_tx, done_rx) = mpsc::channel::<(usize, T)>(); // simlint::allow(T1, reason = "result channel of the audited pool; results are re-sorted by tag")
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<(usize, T)>(); // simlint::allow(T1, reason = "per-worker job channel of the audited pool")
            senders.push(tx);
            let done = done_tx.clone();
            // simlint::allow(T1, reason = "worker threads of the audited pool, joined by the scope")
            scope.spawn(move || {
                while let Ok((tag, mut job)) = rx.recv() {
                    run(&mut job);
                    if done.send((tag, job)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let mut execute = move |jobs: Vec<(usize, T)>| {
            let count = jobs.len();
            for (tag, job) in jobs {
                // Static worker assignment: which thread runs a partition
                // depends only on its index, never on timing.
                let sent = senders[tag % threads].send((tag, job));
                debug_assert!(sent.is_ok(), "pool workers outlive the round loop");
            }
            let mut done: Vec<(usize, T)> = Vec::with_capacity(count);
            for _ in 0..count {
                match done_rx.recv() {
                    Ok(result) => done.push(result),
                    // A worker can only vanish by panicking through a job;
                    // propagate by ending the round with what we have (the
                    // scope will re-raise the worker's panic on join).
                    Err(_) => break,
                }
            }
            // Completion order is scheduling noise; tag order is the
            // deterministic contract.
            done.sort_by_key(|(tag, _)| *tag);
            done
        };
        body(&mut execute)
        // `execute` (and with it every job sender) drops here; workers see
        // the hangup, exit their loop, and the scope joins them.
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_runs_in_tag_order() {
        let mut order: Vec<usize> = Vec::new();
        let log = std::sync::Mutex::new(&mut order); // simlint::allow(T1, reason = "test-only observation of execution order")
        with_pool(
            1,
            &|tag: &mut usize| {
                log.lock().unwrap().push(*tag);
            },
            |execute| {
                let jobs = vec![(2, 2usize), (0, 0usize), (1, 1usize)];
                let done = execute(jobs);
                assert_eq!(
                    done.iter().map(|(tag, _)| *tag).collect::<Vec<_>>(),
                    vec![0, 1, 2]
                );
            },
        );
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn threaded_pool_returns_results_sorted_by_tag() {
        for threads in [2, 3, 8] {
            let rounds = with_pool(
                threads,
                &|job: &mut (usize, u64)| {
                    job.1 = job.0 as u64 * 10;
                },
                |execute| {
                    let mut all = Vec::new();
                    for _ in 0..5 {
                        let jobs: Vec<(usize, (usize, u64))> =
                            (0..7).map(|i| (i, (i, 0u64))).collect();
                        all.push(execute(jobs));
                    }
                    all
                },
            );
            for done in rounds {
                let tags: Vec<usize> = done.iter().map(|(tag, _)| *tag).collect();
                assert_eq!(tags, (0..7).collect::<Vec<_>>());
                for (tag, (_, value)) in &done {
                    assert_eq!(*value, *tag as u64 * 10);
                }
            }
        }
    }

    #[test]
    fn empty_rounds_are_fine() {
        with_pool(4, &|_job: &mut u8| {}, |execute| {
            assert!(execute(Vec::new()).is_empty());
        });
    }
}
