//! Cold vNPU migration between nodes.
//!
//! A cold migration is drain → snapshot → transfer → re-place → resume: the
//! vNPU stops accepting work, its in-flight request finishes (drain), its
//! architectural context ([`neu10::scheduler::VnpuContext`]) and resident
//! SRAM + HBM state are streamed to the destination board over the
//! interconnect, the destination's `PnpuMapper` re-places it, and serving
//! resumes. The whole downtime is charged to the tenant's request latency by
//! the serving simulator.

use neu10::scheduler::VnpuContext;
use neu10::VnpuId;
use npu_sim::{Cycles, Frequency, InterconnectConfig};

use crate::NodeId;

/// The knobs pricing one cold migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationCostModel {
    /// The board-to-board link state is streamed over.
    pub interconnect: InterconnectConfig,
    /// Cycles budgeted for draining the in-flight request when the caller
    /// has no live estimate (the serving simulator substitutes the actual
    /// remaining service time).
    pub drain_grace_cycles: u64,
    /// Fixed cycles for tearing down and re-establishing the mapping
    /// (segment tables, IOMMU entries, vDev MMIO state).
    pub remap_cycles: u64,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel {
            interconnect: InterconnectConfig::tpu_v4_ici(),
            drain_grace_cycles: 100_000,
            remap_cycles: 50_000,
        }
    }
}

impl MigrationCostModel {
    /// Cycles to stream `state_bytes` of vNPU state across the interconnect.
    pub fn transfer_cycles(&self, state_bytes: u64, frequency: Frequency) -> Cycles {
        self.interconnect.transfer_cycles(state_bytes, frequency)
    }
}

/// The accounting record of one completed migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The vNPU id on the source node (ids are node-local).
    pub source_vnpu: VnpuId,
    /// The vNPU id assigned on the destination node.
    pub dest_vnpu: VnpuId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Bytes of SRAM + HBM state streamed.
    pub state_bytes: u64,
    /// Cycles spent draining the in-flight request.
    pub drain_cycles: u64,
    /// Cycles spent streaming state over the interconnect.
    pub transfer_cycles: u64,
    /// Cycles spent re-establishing the mapping on the destination.
    pub remap_cycles: u64,
}

impl MigrationRecord {
    /// Total downtime of the vNPU: the window during which no request can be
    /// served, charged to tenant latency.
    pub fn downtime(&self) -> Cycles {
        Cycles(self.drain_cycles + self.transfer_cycles + self.remap_cycles)
    }
}

/// A completed migration: its accounting plus the snapshot that moved and the
/// vNPU's identity on the destination node.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// The per-migration accounting.
    pub record: MigrationRecord,
    /// The architectural context snapshot that was transferred.
    pub context: VnpuContext,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_sums_every_phase() {
        let record = MigrationRecord {
            source_vnpu: VnpuId(0),
            dest_vnpu: VnpuId(1),
            from: NodeId(0),
            to: NodeId(1),
            state_bytes: 1 << 30,
            drain_cycles: 10,
            transfer_cycles: 20,
            remap_cycles: 30,
        };
        assert_eq!(record.downtime(), Cycles(60));
    }

    #[test]
    fn faster_links_shrink_transfer_time() {
        let slow = MigrationCostModel {
            interconnect: InterconnectConfig::rdma_100g(),
            ..MigrationCostModel::default()
        };
        let fast = MigrationCostModel::default();
        let f = Frequency::from_mhz(1050.0);
        assert!(slow.transfer_cycles(8 << 30, f) > fast.transfer_cycles(8 << 30, f));
    }
}
