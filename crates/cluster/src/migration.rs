//! vNPU migration between nodes: cold stop-and-copy and live pre-copy.
//!
//! A **cold** migration is drain → snapshot → transfer → re-place → resume:
//! the vNPU stops accepting work, its in-flight request finishes (drain), its
//! architectural context ([`neu10::scheduler::VnpuContext`]) and resident
//! SRAM + HBM state are streamed to the destination board over the
//! interconnect, the destination's `PnpuMapper` re-places it, and serving
//! resumes. The whole window is downtime, charged to tenant latency by the
//! serving simulator.
//!
//! A **live pre-copy** migration ([`MigrationMode::PreCopy`]) streams the
//! resident state *while the source keeps serving*: round 0 copies the full
//! working set, and each further round copies only the pages dirtied since
//! the previous round ([`npu_sim::DirtySet`]). How fast pages re-dirty is the
//! [`DirtyRateModel`]: write-heavy state (LLM KV caches) dirties a large
//! fraction of the per-request HBM traffic, read-mostly weights almost none —
//! derived from the compiled [`neu10::TenantWorkload`] and
//! [`workloads::ModelId::hbm_write_fraction`]. When the dirty set is small
//! enough (or the loop stops converging — round cap, or the dirty set not
//! shrinking because the dirty rate outruns link bandwidth) the vNPU stops
//! for a final **stop-and-copy** whose downtime is just the residual delta
//! plus the register/queue context — orders of magnitude below a cold
//! transfer for read-mostly tenants.

use neu10::scheduler::VnpuContext;
use neu10::{IsaKind, TenantWorkload, VnpuId};
use npu_sim::{Cycles, Frequency, InterconnectConfig, NpuConfig};
use workloads::ModelId;

use crate::NodeId;

/// How a migration moves the vNPU's state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MigrationMode {
    /// Drain, go dark, stream everything, resume: the full state transfer is
    /// downtime.
    #[default]
    Cold,
    /// Iterative pre-copy: stream state while serving, stop only for the
    /// residual dirty delta.
    PreCopy,
}

impl MigrationMode {
    /// A short stable label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            MigrationMode::Cold => "cold",
            MigrationMode::PreCopy => "pre-copy",
        }
    }
}

/// How fast a serving replica re-dirties its resident HBM state, per
/// completed request.
///
/// The baseline rate is derived from the tenant's compiled workload: the
/// per-request HBM traffic ([`TenantWorkload::total_hbm_bytes`]) times the
/// model's write fraction ([`ModelId::hbm_write_fraction`]) — write-heavy KV
/// state re-dirties fast, read-mostly weights barely at all. Sweeps can
/// override the fraction or scale the rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirtyRateModel {
    /// Overrides the model's write fraction (`None` uses
    /// [`ModelId::hbm_write_fraction`]).
    pub write_fraction_override: Option<f64>,
    /// Multiplier on the derived rate (sensitivity sweeps).
    pub scale: f64,
}

impl Default for DirtyRateModel {
    fn default() -> Self {
        DirtyRateModel {
            write_fraction_override: None,
            scale: 1.0,
        }
    }
}

impl DirtyRateModel {
    /// Forces the write fraction instead of deriving it from the model.
    pub fn with_write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction_override = Some(fraction.clamp(0.0, 1.0));
        self
    }

    /// Scales the derived rate (clamped non-negative).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = if scale.is_finite() {
            scale.max(0.0)
        } else {
            1.0
        };
        self
    }

    /// Bytes of resident state one completed request dirties on `npu`,
    /// derived from the workload compiled at the model's evaluation batch.
    pub fn dirty_bytes_per_request(&self, model: ModelId, npu: &NpuConfig) -> u64 {
        let fraction = self
            .write_fraction_override
            .unwrap_or_else(|| model.hbm_write_fraction())
            .clamp(0.0, 1.0);
        let workload = TenantWorkload::compile_cached(
            model,
            model.evaluation_batch_size(),
            npu,
            IsaKind::NeuIsa,
        );
        // The compile is per evaluation batch; a serving-trace request is one
        // evaluation-batch pass, so the per-request traffic is the whole lot.
        (workload.total_hbm_bytes() as f64 * fraction * self.scale).ceil() as u64
    }
}

/// The knobs of the iterative pre-copy loop.
#[derive(Debug, Clone, PartialEq)]
pub struct PreCopyConfig {
    /// Dirty-tracking page granularity.
    pub page_bytes: u64,
    /// Most copy rounds before forcing the stop-and-copy (round 0, the full
    /// state copy, included).
    pub max_rounds: u32,
    /// A round must shrink the dirty set below this fraction of the previous
    /// round's bytes, or the loop is declared non-converging and stops.
    pub shrink_ratio: f64,
    /// Stop-and-copy once the dirty set is at or below this fraction of the
    /// resident state (floored at one page).
    pub stop_fraction: f64,
    /// The dirty-rate model pricing how fast serving re-dirties state.
    pub dirty_rate: DirtyRateModel,
}

impl Default for PreCopyConfig {
    fn default() -> Self {
        PreCopyConfig {
            page_bytes: 2 << 20,
            max_rounds: 8,
            shrink_ratio: 0.7,
            stop_fraction: 0.01,
            dirty_rate: DirtyRateModel::default(),
        }
    }
}

impl PreCopyConfig {
    /// Overrides the dirty-rate model.
    pub fn with_dirty_rate(mut self, dirty_rate: DirtyRateModel) -> Self {
        self.dirty_rate = dirty_rate;
        self
    }

    /// Overrides the round cap (at least the initial full copy).
    pub fn with_max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// The dirty-set size at which the loop stops and copies: a fraction of
    /// the resident state, never below one page.
    pub fn stop_copy_bytes(&self, state_bytes: u64) -> u64 {
        ((state_bytes as f64 * self.stop_fraction.clamp(0.0, 1.0)) as u64).max(self.page_bytes)
    }
}

/// The knobs pricing one migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationCostModel {
    /// The board-to-board link state is streamed over.
    pub interconnect: InterconnectConfig,
    /// Cycles budgeted for draining the in-flight request when the caller
    /// has no live estimate (the serving simulator substitutes the actual
    /// remaining service time).
    pub drain_grace_cycles: u64,
    /// Fixed cycles for tearing down and re-establishing the mapping
    /// (segment tables, IOMMU entries, vDev MMIO state).
    pub remap_cycles: u64,
    /// Bytes of architectural context (register file snapshot, scheduler
    /// position, queue state) that always move in the stop-and-copy window,
    /// however clean the HBM state is.
    pub context_bytes: u64,
    /// The iterative-copy loop configuration used by
    /// [`MigrationMode::PreCopy`].
    pub precopy: PreCopyConfig,
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel {
            interconnect: InterconnectConfig::tpu_v4_ici(),
            drain_grace_cycles: 100_000,
            remap_cycles: 50_000,
            context_bytes: 256 << 10,
            precopy: PreCopyConfig::default(),
        }
    }
}

impl MigrationCostModel {
    /// Cycles to stream `state_bytes` of vNPU state across the interconnect.
    pub fn transfer_cycles(&self, state_bytes: u64, frequency: Frequency) -> Cycles {
        self.interconnect.transfer_cycles(state_bytes, frequency)
    }

    /// Overrides the interconnect link.
    pub fn with_interconnect(mut self, interconnect: InterconnectConfig) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Overrides the pre-copy loop configuration.
    pub fn with_precopy(mut self, precopy: PreCopyConfig) -> Self {
        self.precopy = precopy;
        self
    }
}

/// The accounting record of one completed migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The vNPU id on the source node (ids are node-local).
    pub source_vnpu: VnpuId,
    /// The vNPU id assigned on the destination node.
    pub dest_vnpu: VnpuId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// How the state moved.
    pub mode: MigrationMode,
    /// Bytes of SRAM + HBM state resident on the vNPU.
    pub state_bytes: u64,
    /// Cycles spent draining the in-flight request.
    pub drain_cycles: u64,
    /// Cycles the vNPU was dark for the state transfer: the full state for a
    /// cold migration, only the residual dirty delta (plus context, plus any
    /// wait for the contended link) for pre-copy.
    pub transfer_cycles: u64,
    /// Cycles spent re-establishing the mapping on the destination.
    pub remap_cycles: u64,
    /// Copy rounds performed while serving (0 for cold; round 0, the full
    /// state copy, included for pre-copy).
    pub precopy_rounds: u32,
    /// Bytes streamed per copy round while the source kept serving (empty
    /// for cold).
    pub round_bytes: Vec<u64>,
    /// Total bytes streamed while serving (the sum of `round_bytes`).
    pub precopy_bytes: u64,
    /// Cycles the link spent on copy rounds while the source kept serving
    /// (not downtime).
    pub precopy_cycles: u64,
    /// Whether the pre-copy loop converged below the stop threshold. `false`
    /// means the dirty rate outran the link and the stop-and-copy fell back
    /// to moving a cold-sized residual. Cold migrations are trivially
    /// converged.
    pub converged: bool,
}

impl MigrationRecord {
    /// Total downtime of the vNPU: the window during which no request can be
    /// served, charged to tenant latency. Pre-copy rounds happen while
    /// serving and are excluded.
    pub fn downtime(&self) -> Cycles {
        Cycles(self.drain_cycles + self.transfer_cycles + self.remap_cycles)
    }
}

/// Aggregate migration accounting over one serving run, per mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Cold migrations executed.
    pub cold: usize,
    /// Pre-copy migrations executed.
    pub precopy: usize,
    /// Pre-copy migrations whose loop never converged (the stop-and-copy fell
    /// back to a cold-sized residual).
    pub precopy_fallbacks: usize,
    /// Copy rounds executed across every pre-copy migration.
    pub rounds: u64,
    /// Bytes streamed while serving across every pre-copy migration.
    pub precopy_bytes: u64,
    /// Link cycles spent on copy rounds while serving.
    pub precopy_cycles: u64,
    /// Total downtime across every migration (both modes).
    pub downtime_total: u64,
    /// Largest single-migration downtime.
    pub downtime_max: u64,
}

impl MigrationStats {
    /// Folds the executed migration records into per-mode aggregates.
    pub fn from_records(records: &[MigrationRecord]) -> Self {
        let mut stats = MigrationStats::default();
        for record in records {
            match record.mode {
                MigrationMode::Cold => stats.cold += 1,
                MigrationMode::PreCopy => {
                    stats.precopy += 1;
                    if !record.converged {
                        stats.precopy_fallbacks += 1;
                    }
                    stats.rounds += record.precopy_rounds as u64;
                    stats.precopy_bytes += record.precopy_bytes;
                    stats.precopy_cycles += record.precopy_cycles;
                }
            }
            let downtime = record.downtime().get();
            stats.downtime_total += downtime;
            stats.downtime_max = stats.downtime_max.max(downtime);
        }
        stats
    }

    /// Migrations executed across both modes.
    pub fn executed(&self) -> usize {
        self.cold + self.precopy
    }

    /// Mean downtime per executed migration.
    pub fn mean_downtime(&self) -> f64 {
        if self.executed() == 0 {
            return 0.0;
        }
        self.downtime_total as f64 / self.executed() as f64
    }
}

/// A completed migration: its accounting plus the snapshot that moved and the
/// vNPU's identity on the destination node.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// The per-migration accounting.
    pub record: MigrationRecord,
    /// The architectural context snapshot that was transferred.
    pub context: VnpuContext,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(drain: u64, transfer: u64, remap: u64) -> MigrationRecord {
        MigrationRecord {
            source_vnpu: VnpuId(0),
            dest_vnpu: VnpuId(1),
            from: NodeId(0),
            to: NodeId(1),
            mode: MigrationMode::Cold,
            state_bytes: 1 << 30,
            drain_cycles: drain,
            transfer_cycles: transfer,
            remap_cycles: remap,
            precopy_rounds: 0,
            round_bytes: Vec::new(),
            precopy_bytes: 0,
            precopy_cycles: 0,
            converged: true,
        }
    }

    #[test]
    fn downtime_sums_every_phase() {
        assert_eq!(record(10, 20, 30).downtime(), Cycles(60));
    }

    #[test]
    fn faster_links_shrink_transfer_time() {
        let slow = MigrationCostModel {
            interconnect: InterconnectConfig::rdma_100g(),
            ..MigrationCostModel::default()
        };
        let fast = MigrationCostModel::default();
        let f = Frequency::from_mhz(1050.0);
        assert!(slow.transfer_cycles(8 << 30, f) > fast.transfer_cycles(8 << 30, f));
    }

    #[test]
    fn dirty_rate_tracks_the_write_profile() {
        let npu = NpuConfig::single_core();
        let model = DirtyRateModel::default();
        // An LLM-class write fraction dirties more than a read-mostly vision
        // model on the same per-request traffic scale.
        let heavy = DirtyRateModel::default().with_write_fraction(0.5);
        let light = DirtyRateModel::default().with_write_fraction(0.01);
        assert!(
            heavy.dirty_bytes_per_request(ModelId::Mnist, &npu)
                > light.dirty_bytes_per_request(ModelId::Mnist, &npu)
        );
        // The derived default follows the model's own profile.
        assert!(
            model.dirty_bytes_per_request(ModelId::Bert, &npu) > 0,
            "NLP traffic must dirty some state"
        );
        // Scaling is linear-ish and clamps degenerate inputs.
        let doubled = DirtyRateModel::default().with_scale(2.0);
        assert!(
            doubled.dirty_bytes_per_request(ModelId::Bert, &npu)
                >= model.dirty_bytes_per_request(ModelId::Bert, &npu)
        );
        assert_eq!(DirtyRateModel::default().with_scale(f64::NAN).scale, 1.0);
    }

    #[test]
    fn stop_copy_threshold_floors_at_one_page() {
        let precopy = PreCopyConfig::default();
        assert_eq!(
            precopy.stop_copy_bytes(0),
            precopy.page_bytes,
            "an empty working set still stops at page granularity"
        );
        let big = precopy.stop_copy_bytes(100 << 30);
        assert_eq!(big, (100u64 << 30) / 100);
    }

    #[test]
    fn stats_aggregate_per_mode() {
        let cold = record(10, 100, 5);
        let mut live = record(2, 10, 5);
        live.mode = MigrationMode::PreCopy;
        live.precopy_rounds = 3;
        live.round_bytes = vec![1 << 30, 1 << 20, 1 << 18];
        live.precopy_bytes = live.round_bytes.iter().sum();
        live.precopy_cycles = 9_999;
        let mut fallback = live.clone();
        fallback.converged = false;
        let stats = MigrationStats::from_records(&[cold.clone(), live.clone(), fallback]);
        assert_eq!(stats.cold, 1);
        assert_eq!(stats.precopy, 2);
        assert_eq!(stats.precopy_fallbacks, 1);
        assert_eq!(stats.rounds, 6);
        assert_eq!(stats.executed(), 3);
        assert_eq!(stats.downtime_max, cold.downtime().get());
        assert!(stats.mean_downtime() > 0.0);
        assert_eq!(MigrationStats::default().mean_downtime(), 0.0);
    }
}
