//! Process-wide memoization of pure, deterministic computations.
//!
//! Fleet-scale serving runs ask for the same compiled artifacts thousands of
//! times: every replica of a model shares one inference graph per batch size,
//! and every calibration query recompiles the same (model, batch, board)
//! triple. [`Memo`] is the shared table behind those caches — a keyed map of
//! [`Arc`]-shared values safe to use from `static` items and across test
//! threads. Values must be pure functions of their key: a memoized result is
//! returned verbatim to every later caller.
//!
//! The compile-side users are [`crate::InferenceGraph::build_cached`] (this
//! crate) and `neu10::TenantWorkload::compile_cached`, which the cluster
//! serving calibration, `neu10::calibrate_service_time` and the bench
//! harnesses all share.

// simlint::allow(D1, reason = "imported for the point-lookup-only memo table audited below")
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock}; // simlint::allow(T1, reason = "interior mutability of the audited memo table; values are pure functions of their key")

use crate::graph::InferenceGraph;
use crate::suite::ModelId;

// Hashed on purpose (simlint D1): the table answers exact-key lookups
// only — no code path iterates it, so its order cannot reach a digest —
// and generic keys would force an `Ord` bound onto every memo user.
// simlint::allow(D1, reason = "point lookups only; never iterated; avoids an Ord bound on keys")
type MemoTable<K, V> = Mutex<HashMap<K, Arc<V>>>; // simlint::allow(T1, reason = "lock order is unobservable: memoized values are pure functions of their key")

/// A process-wide memo table: one [`Arc`]-shared value per key.
///
/// Usable from `static` items (`Memo::new` is `const`). Lookups take a short
/// mutex critical section; the compute closure runs *outside* the lock, so a
/// slow compilation never blocks unrelated keys. Two threads racing on the
/// same absent key may both compute; the first insert wins and both observe
/// the same stored value afterwards — harmless for the pure computations the
/// table is meant for.
pub struct Memo<K, V> {
    table: OnceLock<MemoTable<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    /// An empty memo table (usable in `static` position).
    pub const fn new() -> Self {
        Memo {
            table: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn table(&self) -> &MemoTable<K, V> {
        // simlint::allow(D1, reason = "constructor for the audited lookup-only table")
        self.table.get_or_init(|| Mutex::new(HashMap::new())) // simlint::allow(T1, reason = "constructor of the audited memo table lock")
    }

    /// Locks the table, absorbing poisoning: values are pure functions of
    /// their key, so a panic mid-insert elsewhere cannot leave an entry
    /// half-written — the data is still consistent and panic-free to reuse.
    // simlint::allow(D1, reason = "guard type of the audited lookup-only table")
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<K, Arc<V>>> {
        match self.table().lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The memoized value for `key`, computing it with `build` on first use.
    pub fn get_or_insert_with(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(value) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(build());
        let mut table = self.lock();
        Arc::clone(table.entry(key).or_insert(value))
    }

    /// Number of lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct keys currently memoized.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no key has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

/// The process-wide inference-graph cache behind
/// [`InferenceGraph::build_cached`].
static GRAPHS: Memo<(ModelId, u64), InferenceGraph> = Memo::new();

impl InferenceGraph {
    /// The shared, memoized graph of `model` at `batch_size`.
    ///
    /// Graph construction is deterministic in (model, batch size), so every
    /// caller — replica calibration, collocation compiles, harness capacity
    /// estimates — shares one build per key for the life of the process.
    pub fn build_cached(model: ModelId, batch_size: u64) -> Arc<InferenceGraph> {
        let batch_size = batch_size.max(1);
        GRAPHS.get_or_insert_with((model, batch_size), || {
            InferenceGraph::build(model, batch_size)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_computes_once_per_key() {
        static TABLE: Memo<u32, u64> = Memo::new();
        let first = TABLE.get_or_insert_with(7, || 49);
        let again = TABLE.get_or_insert_with(7, || unreachable!("memoized"));
        assert_eq!(*first, 49);
        assert!(Arc::ptr_eq(&first, &again), "one shared value per key");
        assert_eq!(TABLE.len(), 1);
        assert!(TABLE.hits() >= 1);
        assert_eq!(TABLE.misses(), 1);
    }

    #[test]
    fn cached_graph_matches_a_fresh_build() {
        let cached = InferenceGraph::build_cached(ModelId::Mnist, 8);
        let fresh = InferenceGraph::build(ModelId::Mnist, 8);
        assert_eq!(*cached, fresh, "the memo must be value-transparent");
        let again = InferenceGraph::build_cached(ModelId::Mnist, 8);
        assert!(Arc::ptr_eq(&cached, &again), "second lookup is shared");
        // Degenerate batch sizes clamp exactly like `build`.
        let clamped = InferenceGraph::build_cached(ModelId::Mnist, 0);
        assert_eq!(clamped.batch_size(), 1);
    }
}
