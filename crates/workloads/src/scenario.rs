//! Traffic scenario generators for autoscaling experiments.
//!
//! A fixed-rate Poisson trace ([`crate::ClusterTrace::poisson`]) cannot
//! exercise a control plane: nothing ever changes, so the right answer is a
//! constant replica count. Real accelerator fleets see strongly **diurnal**
//! demand (day/night swings of 3–10×), **bursty** arrivals (correlated
//! spikes far above the mean) and occasional **flash crowds** (a step to
//! many times the baseline within seconds). This module layers those shapes
//! over [`ClusterTrace`]:
//!
//! * [`DiurnalTrace`] — a sinusoidal day/night rate profile;
//! * [`BurstyTrace`] — a Markov-modulated Poisson process alternating
//!   between a baseline and an on-state spike rate with exponential dwell
//!   times;
//! * [`FlashCrowdTrace`] — a baseline rate with one multiplicative step.
//!
//! All generators are **deterministic for a fixed seed** (thinning of a
//! peak-rate homogeneous Poisson stream with a seeded generator), so
//! autoscaling runs driven by them stay reproducible end to end. QoS terms
//! attach afterwards through [`ClusterTrace::with_model_qos`] /
//! [`ClusterTrace::with_uniform_qos`] exactly like any other trace.

use npu_sim::Cycles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::{stream_seed, ClusterTrace, RequestArrival};
use crate::suite::ModelId;

/// Generates one model's arrivals over `[0, horizon)` by thinning: candidate
/// arrivals are drawn at the peak rate (`peak_mean` mean inter-arrival
/// cycles) and accepted with probability `multiplier(t)` ∈ [0, 1].
fn thinned_arrivals(
    model: ModelId,
    peak_mean: u64,
    horizon: u64,
    seed: u64,
    mut multiplier: impl FnMut(u64) -> f64,
) -> Vec<RequestArrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mean = peak_mean.max(1) as f64;
    let mut now = 0.0f64;
    let mut arrivals = Vec::new();
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        now += -mean * u.ln();
        if now >= horizon as f64 {
            return arrivals;
        }
        let at = now as u64;
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep < multiplier(at).clamp(0.0, 1.0) {
            arrivals.push(RequestArrival::new(Cycles(at), model));
        }
    }
}

/// A sinusoidal day/night demand profile.
///
/// The per-model rate swings between `trough_to_peak × peak` (at `t = 0`)
/// and the peak rate (at `t = period / 2`), completing one full cycle every
/// `period` cycles:
///
/// ```text
/// rate(t) = peak · (trough + (1 − trough) · (1 − cos(2πt / period)) / 2)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalTrace {
    /// Per-model peak rates, as `(model, mean inter-arrival cycles at peak)`.
    pub streams: Vec<(ModelId, u64)>,
    /// Cycles per simulated "day".
    pub period: u64,
    /// Trace length in cycles.
    pub horizon: u64,
    /// Trough rate as a fraction of the peak rate, in `[0, 1]`.
    pub trough_to_peak: f64,
}

impl DiurnalTrace {
    /// A one-period trace starting at the trough.
    ///
    /// # Example
    ///
    /// ```
    /// use workloads::{DiurnalTrace, ModelId};
    ///
    /// let day = DiurnalTrace::new(vec![(ModelId::Mnist, 5_000)], 1_000_000)
    ///     .with_trough_to_peak(0.2);
    /// let trace = day.generate(7);
    /// assert!(!trace.arrivals().is_empty());
    /// // The day starts at the trough and ramps toward the mid-period
    /// // peak, so the second quarter is busier than the first.
    /// let q = 250_000;
    /// let count = |lo, hi| {
    ///     trace.arrivals().iter().filter(|a| a.at.get() >= lo && a.at.get() < hi).count()
    /// };
    /// assert!(count(0, q) < count(q, 2 * q));
    /// ```
    pub fn new(streams: Vec<(ModelId, u64)>, period: u64) -> Self {
        DiurnalTrace {
            streams,
            period: period.max(1),
            horizon: period.max(1),
            trough_to_peak: 0.25,
        }
    }

    /// Overrides the horizon (e.g. several periods).
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon.max(1);
        self
    }

    /// Overrides the trough-to-peak rate ratio.
    pub fn with_trough_to_peak(mut self, ratio: f64) -> Self {
        self.trough_to_peak = if ratio.is_finite() {
            ratio.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// The rate multiplier (fraction of the peak rate) at time `t`.
    pub fn rate_multiplier(&self, t: u64) -> f64 {
        let trough = self.trough_to_peak;
        let phase = (t % self.period) as f64 / self.period as f64;
        trough + (1.0 - trough) * (1.0 - (std::f64::consts::TAU * phase).cos()) / 2.0
    }

    /// Generates the merged, time-ordered trace. Deterministic per seed.
    pub fn generate(&self, seed: u64) -> ClusterTrace {
        let mut arrivals = Vec::new();
        for (index, (model, peak_mean)) in self.streams.iter().enumerate() {
            arrivals.extend(thinned_arrivals(
                *model,
                *peak_mean,
                self.horizon,
                stream_seed(seed, index as u64),
                |t| self.rate_multiplier(t),
            ));
        }
        ClusterTrace::from_arrivals(arrivals)
    }
}

/// A Markov-modulated Poisson process: baseline traffic with on/off spikes.
///
/// Each stream alternates between an *off* state at the baseline rate and an
/// *on* state at `burst_multiplier ×` the baseline, with exponentially
/// distributed dwell times (`mean_off` / `mean_on` cycles). The state path
/// is drawn from the seed, so the same seed reproduces both the spikes and
/// the arrivals within them.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyTrace {
    /// Per-model baseline rates, as `(model, mean inter-arrival cycles)`.
    pub streams: Vec<(ModelId, u64)>,
    /// Rate multiplier while a spike is on (≥ 1).
    pub burst_multiplier: f64,
    /// Mean cycles a spike lasts.
    pub mean_on: u64,
    /// Mean cycles between spikes.
    pub mean_off: u64,
    /// Trace length in cycles.
    pub horizon: u64,
}

impl BurstyTrace {
    /// A bursty trace with 4× spikes.
    pub fn new(streams: Vec<(ModelId, u64)>, mean_on: u64, mean_off: u64, horizon: u64) -> Self {
        BurstyTrace {
            streams,
            burst_multiplier: 4.0,
            mean_on: mean_on.max(1),
            mean_off: mean_off.max(1),
            horizon: horizon.max(1),
        }
    }

    /// Overrides the on-state rate multiplier.
    pub fn with_burst_multiplier(mut self, multiplier: f64) -> Self {
        self.burst_multiplier = if multiplier.is_finite() {
            multiplier.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// The `[start, end)` windows during which the modulating chain is *on*,
    /// for one stream seed. Exposed so tests and harnesses can line reports
    /// up against the spike schedule.
    pub fn on_windows(&self, seed: u64, stream_index: usize) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(stream_seed(
            seed ^ 0xA5A5_5A5A_0F0F_F0F0,
            stream_index as u64,
        ));
        let mut windows = Vec::new();
        let mut now = 0.0f64;
        loop {
            // Off dwell, then on dwell.
            let u_off: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -(self.mean_off as f64) * u_off.ln();
            if now >= self.horizon as f64 {
                return windows;
            }
            let start = now as u64;
            let u_on: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -(self.mean_on as f64) * u_on.ln();
            let end = (now as u64).min(self.horizon);
            windows.push((start, end));
            if now >= self.horizon as f64 {
                return windows;
            }
        }
    }

    /// Generates the merged, time-ordered trace. Deterministic per seed.
    pub fn generate(&self, seed: u64) -> ClusterTrace {
        let mut arrivals = Vec::new();
        for (index, (model, base_mean)) in self.streams.iter().enumerate() {
            let windows = self.on_windows(seed, index);
            // Thin against the on-state (peak) rate: candidates arrive at
            // burst_multiplier × baseline and off-state candidates survive
            // with probability 1 / burst_multiplier.
            let peak_mean = (((*base_mean).max(1)) as f64 / self.burst_multiplier).max(1.0) as u64;
            let off_keep = 1.0 / self.burst_multiplier;
            let mut cursor = 0usize;
            arrivals.extend(thinned_arrivals(
                *model,
                peak_mean,
                self.horizon,
                stream_seed(seed, index as u64),
                |t| {
                    while cursor < windows.len() && windows[cursor].1 <= t {
                        cursor += 1;
                    }
                    let on = cursor < windows.len() && windows[cursor].0 <= t;
                    if on {
                        1.0
                    } else {
                        off_keep
                    }
                },
            ));
        }
        ClusterTrace::from_arrivals(arrivals)
    }
}

/// A flash crowd: baseline traffic that steps to `multiplier ×` the baseline
/// over `[start, end)` and back.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowdTrace {
    /// Per-model baseline rates, as `(model, mean inter-arrival cycles)`.
    pub streams: Vec<(ModelId, u64)>,
    /// Rate multiplier during the crowd (≥ 1).
    pub multiplier: f64,
    /// When the crowd arrives.
    pub start: u64,
    /// When the crowd disperses.
    pub end: u64,
    /// Trace length in cycles.
    pub horizon: u64,
}

impl FlashCrowdTrace {
    /// A flash crowd of `multiplier ×` the baseline over `[start, end)`.
    pub fn new(
        streams: Vec<(ModelId, u64)>,
        multiplier: f64,
        start: u64,
        end: u64,
        horizon: u64,
    ) -> Self {
        FlashCrowdTrace {
            streams,
            multiplier: if multiplier.is_finite() {
                multiplier.max(1.0)
            } else {
                1.0
            },
            start,
            end: end.max(start),
            horizon: horizon.max(1),
        }
    }

    /// Generates the merged, time-ordered trace. Deterministic per seed.
    pub fn generate(&self, seed: u64) -> ClusterTrace {
        let off_keep = 1.0 / self.multiplier;
        let mut arrivals = Vec::new();
        for (index, (model, base_mean)) in self.streams.iter().enumerate() {
            let peak_mean = (((*base_mean).max(1)) as f64 / self.multiplier).max(1.0) as u64;
            arrivals.extend(thinned_arrivals(
                *model,
                peak_mean,
                self.horizon,
                stream_seed(seed, index as u64),
                |t| {
                    if (self.start..self.end).contains(&t) {
                        1.0
                    } else {
                        off_keep
                    }
                },
            ));
        }
        ClusterTrace::from_arrivals(arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(trace: &ClusterTrace, from: u64, to: u64) -> usize {
        trace
            .arrivals()
            .iter()
            .filter(|a| (from..to).contains(&a.at.get()))
            .count()
    }

    #[test]
    fn diurnal_peak_outweighs_trough() {
        let period = 4_000_000u64;
        let scenario =
            DiurnalTrace::new(vec![(ModelId::Mnist, 2_000)], period).with_trough_to_peak(0.2);
        let trace = scenario.generate(11);
        assert!(!trace.is_empty());
        assert!(trace.horizon() < Cycles(period));
        // Quarter around the trough (wrapping start/end) vs the peak.
        let trough = count_in(&trace, 0, period / 8) + count_in(&trace, period * 7 / 8, period);
        let peak = count_in(&trace, period * 3 / 8, period * 5 / 8);
        assert!(
            peak as f64 > 2.0 * trough.max(1) as f64,
            "the day peak must dominate the night trough ({peak} vs {trough})"
        );
        // Rate profile endpoints.
        assert!((scenario.rate_multiplier(0) - 0.2).abs() < 1e-9);
        assert!((scenario.rate_multiplier(period / 2) - 1.0).abs() < 1e-9);
        // Determinism.
        assert_eq!(trace, scenario.generate(11));
        assert_ne!(trace, scenario.generate(12));
    }

    #[test]
    fn bursty_spikes_concentrate_arrivals() {
        let horizon = 8_000_000u64;
        let scenario = BurstyTrace::new(vec![(ModelId::Mnist, 4_000)], 200_000, 600_000, horizon)
            .with_burst_multiplier(6.0);
        let windows = scenario.on_windows(5, 0);
        assert!(!windows.is_empty(), "the chain must visit the on state");
        assert!(windows.windows(2).all(|w| w[0].1 <= w[1].0));
        let trace = scenario.generate(5);
        let on_cycles: u64 = windows.iter().map(|(s, e)| e - s).sum();
        let on_count: usize = windows.iter().map(|(s, e)| count_in(&trace, *s, *e)).sum();
        let off_cycles = horizon - on_cycles;
        let off_count = trace.len() - on_count;
        let on_rate = on_count as f64 / on_cycles.max(1) as f64;
        let off_rate = off_count as f64 / off_cycles.max(1) as f64;
        assert!(
            on_rate > 3.0 * off_rate,
            "spikes must carry a far higher rate (on {on_rate:.2e} vs off {off_rate:.2e})"
        );
        assert_eq!(trace, scenario.generate(5), "seeded generation is stable");
    }

    #[test]
    fn flash_crowd_steps_and_recovers() {
        let horizon = 6_000_000u64;
        let (start, end) = (2_000_000u64, 3_000_000u64);
        let scenario = FlashCrowdTrace::new(
            vec![(ModelId::Mnist, 4_000), (ModelId::Dlrm, 8_000)],
            5.0,
            start,
            end,
            horizon,
        );
        let trace = scenario.generate(9);
        let before = count_in(&trace, 0, start);
        let during = count_in(&trace, start, end);
        let after = count_in(&trace, end, horizon);
        // Normalize per cycle: the crowd window is 1/2 the length of the
        // before window but must still carry far more arrivals.
        assert!(
            during as f64 / (end - start) as f64 > 3.0 * before as f64 / start as f64,
            "the crowd must step the rate up ({during} in-window vs {before} before)"
        );
        let before_rate = before as f64 / start as f64;
        let after_rate = after as f64 / (horizon - end) as f64;
        assert!(
            after_rate < 2.0 * before_rate,
            "the rate must recover after the crowd ({after_rate:.2e} vs {before_rate:.2e})"
        );
        assert_eq!(trace.models().len(), 2);
        assert_eq!(trace, scenario.generate(9));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let diurnal =
            DiurnalTrace::new(vec![(ModelId::Mnist, 1_000)], 0).with_trough_to_peak(f64::NAN);
        assert_eq!(diurnal.period, 1);
        assert_eq!(diurnal.trough_to_peak, 0.0);
        let bursty = BurstyTrace::new(vec![], 0, 0, 0).with_burst_multiplier(f64::INFINITY);
        assert_eq!(bursty.burst_multiplier, 1.0);
        assert!(bursty.generate(1).is_empty());
        let flash = FlashCrowdTrace::new(vec![(ModelId::Mnist, 1_000)], 0.5, 10, 5, 100_000);
        assert_eq!(flash.multiplier, 1.0);
        assert!(flash.end >= flash.start);
        assert!(!flash.generate(2).is_empty());
    }
}
