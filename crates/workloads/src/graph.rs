//! Inference graphs: the operator sequence of one request of one model.

use neuisa::TensorOperator;

use crate::models;
use crate::suite::ModelId;

/// The operator graph of a single inference request.
///
/// Operators are stored in execution order; the scheduling layers treat the
/// sequence as a dependency chain (operator *i+1* starts only after operator
/// *i* finishes), matching how the paper replays per-model operator traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceGraph {
    model: ModelId,
    batch_size: u64,
    operators: Vec<TensorOperator>,
    hbm_footprint_bytes: u64,
}

impl InferenceGraph {
    /// Builds the graph of `model` at `batch_size`.
    ///
    /// # Example
    ///
    /// ```
    /// use workloads::{InferenceGraph, ModelId};
    ///
    /// let graph = InferenceGraph::build(ModelId::ResNet, 8);
    /// assert_eq!(graph.model(), ModelId::ResNet);
    /// assert!(graph.operators().len() > 10);
    /// // Shape-faithful synthesis is deterministic: no seed, no variance.
    /// assert_eq!(graph.hbm_footprint_bytes(),
    ///            InferenceGraph::build(ModelId::ResNet, 8).hbm_footprint_bytes());
    /// ```
    pub fn build(model: ModelId, batch_size: u64) -> Self {
        let batch_size = batch_size.max(1);
        InferenceGraph {
            model,
            batch_size,
            operators: models::build_operators(model, batch_size),
            hbm_footprint_bytes: models::hbm_footprint_bytes(model, batch_size),
        }
    }

    /// Builds the graph of `model` at the batch size used in the paper's
    /// multi-tenant evaluation (§V-A).
    pub fn build_for_evaluation(model: ModelId) -> Self {
        InferenceGraph::build(model, model.evaluation_batch_size())
    }

    /// The model this graph belongs to.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// The batch size the graph was built for.
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// The operators in execution order.
    pub fn operators(&self) -> &[TensorOperator] {
        &self.operators
    }

    /// Number of operators in the graph.
    pub fn operator_count(&self) -> usize {
        self.operators.len()
    }

    /// Estimated resident HBM footprint (Table I).
    pub fn hbm_footprint_bytes(&self) -> u64 {
        self.hbm_footprint_bytes
    }

    /// Total HBM traffic of one request.
    pub fn total_hbm_bytes(&self) -> u64 {
        self.operators.iter().map(|op| op.hbm_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_for_evaluation_uses_paper_batch_sizes() {
        let bert = InferenceGraph::build_for_evaluation(ModelId::Bert);
        assert_eq!(bert.batch_size(), 32);
        let mrcnn = InferenceGraph::build_for_evaluation(ModelId::MaskRcnn);
        assert_eq!(mrcnn.batch_size(), 8);
    }

    #[test]
    fn zero_batch_is_clamped_to_one() {
        let g = InferenceGraph::build(ModelId::Mnist, 0);
        assert_eq!(g.batch_size(), 1);
        assert!(g.operator_count() > 0);
    }

    #[test]
    fn traffic_and_footprint_are_positive() {
        let g = InferenceGraph::build(ModelId::ResNet, 8);
        assert!(g.total_hbm_bytes() > 0);
        assert!(g.hbm_footprint_bytes() > 0);
        assert_eq!(g.operators().len(), g.operator_count());
    }
}
