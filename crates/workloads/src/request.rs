//! Inference-request arrival generation.
//!
//! The paper's steady-state experiments run requests back to back (closed
//! loop) until every collocated workload has completed a target number of
//! requests. Open-loop Poisson arrivals are also provided for experiments
//! that need bursty, cloud-like traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use npu_sim::Cycles;

/// How inference requests arrive at a vNPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: a fixed number of outstanding requests; a new request is
    /// issued as soon as one completes. `concurrency` is the number of
    /// requests in flight (1 reproduces the paper's setup).
    ClosedLoop {
        /// Number of requests kept in flight.
        concurrency: usize,
    },
    /// Open loop: requests arrive with exponentially distributed gaps.
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean_interarrival: Cycles,
        /// RNG seed (experiments stay deterministic for a fixed seed).
        seed: u64,
    },
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess::ClosedLoop { concurrency: 1 }
    }
}

/// A generator of request arrival times.
#[derive(Debug, Clone)]
pub struct RequestStream {
    process: ArrivalProcess,
}

impl RequestStream {
    /// Creates a stream for the given arrival process.
    pub fn new(process: ArrivalProcess) -> Self {
        RequestStream { process }
    }

    /// The arrival process of this stream.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Number of requests that should be outstanding at simulation start.
    pub fn initial_outstanding(&self) -> usize {
        match self.process {
            ArrivalProcess::ClosedLoop { concurrency } => concurrency.max(1),
            ArrivalProcess::Poisson { .. } => 0,
        }
    }

    /// Whether a completed request immediately re-issues a new one.
    pub fn reissue_on_completion(&self) -> bool {
        matches!(self.process, ArrivalProcess::ClosedLoop { .. })
    }

    /// Generates the absolute arrival times of the first `count` open-loop
    /// requests. Closed-loop streams return all-zero arrivals (the backlog is
    /// available immediately).
    pub fn arrival_times(&self, count: usize) -> Vec<Cycles> {
        match self.process {
            ArrivalProcess::ClosedLoop { .. } => vec![Cycles::ZERO; count],
            ArrivalProcess::Poisson {
                mean_interarrival,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean = mean_interarrival.get().max(1) as f64;
                let mut now = 0.0f64;
                (0..count)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += -mean * u.ln();
                        Cycles(now as u64)
                    })
                    .collect()
            }
        }
    }
}

impl Default for RequestStream {
    fn default() -> Self {
        RequestStream::new(ArrivalProcess::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_keeps_requests_outstanding() {
        let stream = RequestStream::new(ArrivalProcess::ClosedLoop { concurrency: 2 });
        assert_eq!(stream.initial_outstanding(), 2);
        assert!(stream.reissue_on_completion());
        assert!(stream.arrival_times(4).iter().all(|t| t.is_zero()));
    }

    #[test]
    fn poisson_arrivals_are_monotonic_and_deterministic() {
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(10_000),
            seed: 7,
        });
        let a = stream.arrival_times(100);
        let b = stream.arrival_times(100);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(!stream.reissue_on_completion());
        assert_eq!(stream.initial_outstanding(), 0);
    }

    #[test]
    fn poisson_mean_is_roughly_respected() {
        let mean = 50_000u64;
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(mean),
            seed: 42,
        });
        let times = stream.arrival_times(2_000);
        let last = times.last().unwrap().get() as f64;
        let empirical_mean = last / 2_000.0;
        assert!(
            (empirical_mean / mean as f64 - 1.0).abs() < 0.15,
            "empirical mean {empirical_mean} too far from {mean}"
        );
    }

    #[test]
    fn default_is_single_closed_loop() {
        let stream = RequestStream::default();
        assert_eq!(stream.initial_outstanding(), 1);
    }
}
