//! Inference-request arrival generation.
//!
//! The paper's steady-state experiments run requests back to back (closed
//! loop) until every collocated workload has completed a target number of
//! requests. Open-loop Poisson arrivals are also provided for experiments
//! that need bursty, cloud-like traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use npu_sim::Cycles;

use crate::suite::ModelId;

/// How inference requests arrive at a vNPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: a fixed number of outstanding requests; a new request is
    /// issued as soon as one completes. `concurrency` is the number of
    /// requests in flight (1 reproduces the paper's setup).
    ClosedLoop {
        /// Number of requests kept in flight.
        concurrency: usize,
    },
    /// Open loop: requests arrive with exponentially distributed gaps.
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean_interarrival: Cycles,
        /// RNG seed (experiments stay deterministic for a fixed seed).
        seed: u64,
    },
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess::ClosedLoop { concurrency: 1 }
    }
}

/// A generator of request arrival times.
#[derive(Debug, Clone)]
pub struct RequestStream {
    process: ArrivalProcess,
}

impl RequestStream {
    /// Creates a stream for the given arrival process.
    pub fn new(process: ArrivalProcess) -> Self {
        RequestStream { process }
    }

    /// The arrival process of this stream.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Number of requests that should be outstanding at simulation start.
    pub fn initial_outstanding(&self) -> usize {
        match self.process {
            ArrivalProcess::ClosedLoop { concurrency } => concurrency.max(1),
            ArrivalProcess::Poisson { .. } => 0,
        }
    }

    /// Whether a completed request immediately re-issues a new one.
    pub fn reissue_on_completion(&self) -> bool {
        matches!(self.process, ArrivalProcess::ClosedLoop { .. })
    }

    /// Generates the absolute arrival times of the first `count` open-loop
    /// requests. Closed-loop streams return all-zero arrivals (the backlog is
    /// available immediately).
    pub fn arrival_times(&self, count: usize) -> Vec<Cycles> {
        match self.process {
            ArrivalProcess::ClosedLoop { .. } => vec![Cycles::ZERO; count],
            ArrivalProcess::Poisson {
                mean_interarrival,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean = mean_interarrival.get().max(1) as f64;
                let mut now = 0.0f64;
                (0..count)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += -mean * u.ln();
                        Cycles(now as u64)
                    })
                    .collect()
            }
        }
    }
}

impl Default for RequestStream {
    fn default() -> Self {
        RequestStream::new(ArrivalProcess::default())
    }
}

/// Derives an independent per-stream seed from a trace-wide seed and a
/// stream index via a splitmix64-style hash: a linear combination like
/// `(seed + index) * C` would make adjacent seeds share component streams,
/// correlating seed-sweep experiments.
pub(crate) fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut stream_seed = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    stream_seed = (stream_seed ^ (stream_seed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    stream_seed = (stream_seed ^ (stream_seed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    stream_seed ^ (stream_seed >> 31)
}

/// The scheduling class of a request: lower variants are more urgent.
///
/// The derived `Ord` sorts `Interactive < Standard < Batch`, so ordering a
/// queue by `(priority, deadline)` serves latency-sensitive traffic first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PriorityClass {
    /// Latency-sensitive, user-facing traffic.
    Interactive,
    /// Ordinary serving traffic (the default).
    #[default]
    Standard,
    /// Throughput-oriented background work; always served last.
    Batch,
}

impl PriorityClass {
    /// A short stable label for tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }
}

/// Per-model quality-of-service terms applied to generated arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QosSpec {
    /// Completion deadline, as slack added to the arrival time; `None` leaves
    /// the request best-effort.
    pub deadline_slack: Option<Cycles>,
    /// The scheduling class of the requests.
    pub priority: PriorityClass,
}

impl QosSpec {
    /// A deadline `slack` cycles after arrival, at the given priority.
    pub fn new(deadline_slack: Option<Cycles>, priority: PriorityClass) -> Self {
        QosSpec {
            deadline_slack,
            priority,
        }
    }

    /// Applies these terms to one arrival: the deadline becomes
    /// arrival + slack and the priority class is overwritten.
    fn apply(&self, arrival: &mut RequestArrival) {
        arrival.deadline = self
            .deadline_slack
            .map(|s| Cycles(arrival.at.get().saturating_add(s.get())));
        arrival.priority = self.priority;
    }
}

/// One inference-request arrival in a cluster-level trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestArrival {
    /// Absolute arrival time in cycles.
    pub at: Cycles,
    /// The model the request targets.
    pub model: ModelId,
    /// Trace-wide sequence number (stable across re-sorts).
    pub sequence: u64,
    /// Absolute completion deadline; `None` means best-effort.
    pub deadline: Option<Cycles>,
    /// The scheduling class of the request.
    pub priority: PriorityClass,
}

impl RequestArrival {
    /// A best-effort, standard-priority arrival.
    pub fn new(at: Cycles, model: ModelId) -> Self {
        RequestArrival {
            at,
            model,
            sequence: 0,
            deadline: None,
            priority: PriorityClass::default(),
        }
    }

    /// Sets an absolute completion deadline.
    pub fn with_deadline(mut self, deadline: Cycles) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Cycles between arrival and deadline; `None` for best-effort requests.
    pub fn slack(&self) -> Option<Cycles> {
        self.deadline
            .map(|d| Cycles(d.get().saturating_sub(self.at.get())))
    }
}

/// A merged, time-ordered, multi-model arrival trace — the open-loop input of
/// the cluster request router.
///
/// A trace can be generated (independent Poisson streams per model, the
/// standard open-loop serving assumption) or replayed from recorded arrivals,
/// which makes the router testable against hand-crafted worst cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTrace {
    arrivals: Vec<RequestArrival>,
}

impl ClusterTrace {
    /// Builds a trace by superposing one Poisson stream per `(model,
    /// mean_interarrival_cycles)` entry, each contributing `per_model`
    /// requests. Deterministic for a fixed `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use workloads::{ClusterTrace, ModelId};
    ///
    /// let streams = [(ModelId::Mnist, 10_000), (ModelId::Bert, 40_000)];
    /// let trace = ClusterTrace::poisson(&streams, 100, 42);
    /// // `per_model` requests per stream, merged into arrival order.
    /// assert_eq!(trace.arrivals().len(), 200);
    /// assert!(trace.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
    /// // Same seed ⇒ the identical trace, arrival for arrival.
    /// assert_eq!(trace, ClusterTrace::poisson(&streams, 100, 42));
    /// ```
    pub fn poisson(streams: &[(ModelId, u64)], per_model: usize, seed: u64) -> Self {
        let mut arrivals = Vec::with_capacity(streams.len() * per_model);
        for (index, (model, mean)) in streams.iter().enumerate() {
            let stream = RequestStream::new(ArrivalProcess::Poisson {
                mean_interarrival: Cycles((*mean).max(1)),
                seed: stream_seed(seed, index as u64),
            });
            for at in stream.arrival_times(per_model) {
                arrivals.push(RequestArrival::new(at, *model));
            }
        }
        ClusterTrace::from_arrivals(arrivals)
    }

    /// Builds a trace from explicit arrivals (sorted by time; sequence
    /// numbers are re-assigned in time order).
    pub fn from_arrivals(mut arrivals: Vec<RequestArrival>) -> Self {
        arrivals.sort_by_key(|a| a.at);
        for (sequence, arrival) in arrivals.iter_mut().enumerate() {
            arrival.sequence = sequence as u64;
        }
        ClusterTrace { arrivals }
    }

    /// Applies `qos` to every arrival of `model`: the deadline becomes
    /// arrival + slack and the priority class is overwritten.
    pub fn with_model_qos(mut self, model: ModelId, qos: QosSpec) -> Self {
        for arrival in self.arrivals.iter_mut().filter(|a| a.model == model) {
            qos.apply(arrival);
        }
        self
    }

    /// Applies `qos` to every arrival in the trace.
    pub fn with_uniform_qos(mut self, qos: QosSpec) -> Self {
        for arrival in self.arrivals.iter_mut() {
            qos.apply(arrival);
        }
        self
    }

    /// The time-ordered arrivals.
    pub fn arrivals(&self) -> &[RequestArrival] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrival time of the last request (the offered-load horizon).
    pub fn horizon(&self) -> Cycles {
        self.arrivals.last().map(|a| a.at).unwrap_or(Cycles::ZERO)
    }

    /// The distinct models appearing in the trace, in first-arrival order.
    pub fn models(&self) -> Vec<ModelId> {
        let mut models = Vec::new();
        for arrival in &self.arrivals {
            if !models.contains(&arrival.model) {
                models.push(arrival.model);
            }
        }
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_keeps_requests_outstanding() {
        let stream = RequestStream::new(ArrivalProcess::ClosedLoop { concurrency: 2 });
        assert_eq!(stream.initial_outstanding(), 2);
        assert!(stream.reissue_on_completion());
        assert!(stream.arrival_times(4).iter().all(|t| t.is_zero()));
    }

    #[test]
    fn poisson_arrivals_are_monotonic_and_deterministic() {
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(10_000),
            seed: 7,
        });
        let a = stream.arrival_times(100);
        let b = stream.arrival_times(100);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(!stream.reissue_on_completion());
        assert_eq!(stream.initial_outstanding(), 0);
    }

    #[test]
    fn poisson_mean_is_roughly_respected() {
        let mean = 50_000u64;
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(mean),
            seed: 42,
        });
        let times = stream.arrival_times(2_000);
        let last = times.last().unwrap().get() as f64;
        let empirical_mean = last / 2_000.0;
        assert!(
            (empirical_mean / mean as f64 - 1.0).abs() < 0.15,
            "empirical mean {empirical_mean} too far from {mean}"
        );
    }

    #[test]
    fn default_is_single_closed_loop() {
        let stream = RequestStream::default();
        assert_eq!(stream.initial_outstanding(), 1);
    }

    #[test]
    fn cluster_trace_merges_streams_in_time_order() {
        let trace =
            ClusterTrace::poisson(&[(ModelId::Mnist, 10_000), (ModelId::Bert, 25_000)], 50, 7);
        assert_eq!(trace.len(), 100);
        assert!(trace
            .arrivals()
            .windows(2)
            .all(|w| w[0].at <= w[1].at && w[0].sequence < w[1].sequence));
        assert_eq!(trace.models().len(), 2);
        assert!(trace.horizon() > Cycles::ZERO);
        // Determinism for a fixed seed.
        let again =
            ClusterTrace::poisson(&[(ModelId::Mnist, 10_000), (ModelId::Bert, 25_000)], 50, 7);
        assert_eq!(trace, again);
    }

    #[test]
    fn replayed_traces_reassign_sequences() {
        let mut late = RequestArrival::new(Cycles(500), ModelId::Mnist);
        late.sequence = 99;
        let mut early = RequestArrival::new(Cycles(100), ModelId::Bert);
        early.sequence = 99;
        let trace = ClusterTrace::from_arrivals(vec![late, early]);
        assert_eq!(trace.arrivals()[0].model, ModelId::Bert);
        assert_eq!(trace.arrivals()[0].sequence, 0);
        assert_eq!(trace.arrivals()[1].sequence, 1);
    }

    #[test]
    fn default_arrivals_are_best_effort() {
        let arrival = RequestArrival::new(Cycles(10), ModelId::Mnist);
        assert_eq!(arrival.deadline, None);
        assert_eq!(arrival.priority, PriorityClass::Standard);
        assert_eq!(arrival.slack(), None);
        let bound = arrival
            .with_deadline(Cycles(25))
            .with_priority(PriorityClass::Interactive);
        assert_eq!(bound.slack(), Some(Cycles(15)));
        assert_eq!(bound.priority, PriorityClass::Interactive);
    }

    #[test]
    fn priority_classes_order_urgent_first() {
        assert!(PriorityClass::Interactive < PriorityClass::Standard);
        assert!(PriorityClass::Standard < PriorityClass::Batch);
    }

    #[test]
    fn qos_applies_per_model_deadlines() {
        let trace =
            ClusterTrace::poisson(&[(ModelId::Mnist, 10_000), (ModelId::Bert, 10_000)], 20, 3)
                .with_model_qos(
                    ModelId::Mnist,
                    QosSpec::new(Some(Cycles(50_000)), PriorityClass::Interactive),
                );
        for arrival in trace.arrivals() {
            match arrival.model {
                ModelId::Mnist => {
                    assert_eq!(
                        arrival.deadline,
                        Some(Cycles(arrival.at.get() + 50_000)),
                        "deadline is arrival + slack"
                    );
                    assert_eq!(arrival.priority, PriorityClass::Interactive);
                }
                _ => {
                    assert_eq!(arrival.deadline, None);
                    assert_eq!(arrival.priority, PriorityClass::Standard);
                }
            }
        }
        let uniform = trace.with_uniform_qos(QosSpec::new(None, PriorityClass::Batch));
        assert!(uniform
            .arrivals()
            .iter()
            .all(|a| a.deadline.is_none() && a.priority == PriorityClass::Batch));
    }
}
