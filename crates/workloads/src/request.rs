//! Inference-request arrival generation.
//!
//! The paper's steady-state experiments run requests back to back (closed
//! loop) until every collocated workload has completed a target number of
//! requests. Open-loop Poisson arrivals are also provided for experiments
//! that need bursty, cloud-like traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use npu_sim::Cycles;

use crate::suite::ModelId;

/// How inference requests arrive at a vNPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: a fixed number of outstanding requests; a new request is
    /// issued as soon as one completes. `concurrency` is the number of
    /// requests in flight (1 reproduces the paper's setup).
    ClosedLoop {
        /// Number of requests kept in flight.
        concurrency: usize,
    },
    /// Open loop: requests arrive with exponentially distributed gaps.
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean_interarrival: Cycles,
        /// RNG seed (experiments stay deterministic for a fixed seed).
        seed: u64,
    },
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess::ClosedLoop { concurrency: 1 }
    }
}

/// A generator of request arrival times.
#[derive(Debug, Clone)]
pub struct RequestStream {
    process: ArrivalProcess,
}

impl RequestStream {
    /// Creates a stream for the given arrival process.
    pub fn new(process: ArrivalProcess) -> Self {
        RequestStream { process }
    }

    /// The arrival process of this stream.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Number of requests that should be outstanding at simulation start.
    pub fn initial_outstanding(&self) -> usize {
        match self.process {
            ArrivalProcess::ClosedLoop { concurrency } => concurrency.max(1),
            ArrivalProcess::Poisson { .. } => 0,
        }
    }

    /// Whether a completed request immediately re-issues a new one.
    pub fn reissue_on_completion(&self) -> bool {
        matches!(self.process, ArrivalProcess::ClosedLoop { .. })
    }

    /// Generates the absolute arrival times of the first `count` open-loop
    /// requests. Closed-loop streams return all-zero arrivals (the backlog is
    /// available immediately).
    pub fn arrival_times(&self, count: usize) -> Vec<Cycles> {
        match self.process {
            ArrivalProcess::ClosedLoop { .. } => vec![Cycles::ZERO; count],
            ArrivalProcess::Poisson {
                mean_interarrival,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mean = mean_interarrival.get().max(1) as f64;
                let mut now = 0.0f64;
                (0..count)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += -mean * u.ln();
                        Cycles(now as u64)
                    })
                    .collect()
            }
        }
    }
}

impl Default for RequestStream {
    fn default() -> Self {
        RequestStream::new(ArrivalProcess::default())
    }
}

/// One inference-request arrival in a cluster-level trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestArrival {
    /// Absolute arrival time in cycles.
    pub at: Cycles,
    /// The model the request targets.
    pub model: ModelId,
    /// Trace-wide sequence number (stable across re-sorts).
    pub sequence: u64,
}

/// A merged, time-ordered, multi-model arrival trace — the open-loop input of
/// the cluster request router.
///
/// A trace can be generated (independent Poisson streams per model, the
/// standard open-loop serving assumption) or replayed from recorded arrivals,
/// which makes the router testable against hand-crafted worst cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTrace {
    arrivals: Vec<RequestArrival>,
}

impl ClusterTrace {
    /// Builds a trace by superposing one Poisson stream per `(model,
    /// mean_interarrival_cycles)` entry, each contributing `per_model`
    /// requests. Deterministic for a fixed `seed`.
    pub fn poisson(streams: &[(ModelId, u64)], per_model: usize, seed: u64) -> Self {
        let mut arrivals = Vec::with_capacity(streams.len() * per_model);
        for (index, (model, mean)) in streams.iter().enumerate() {
            // splitmix64-style hash of (seed, index): a linear combination
            // like (seed + index) * C would make adjacent seeds share
            // component streams, correlating seed-sweep experiments.
            let mut stream_seed = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            stream_seed = (stream_seed ^ (stream_seed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            stream_seed = (stream_seed ^ (stream_seed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            stream_seed ^= stream_seed >> 31;
            let stream = RequestStream::new(ArrivalProcess::Poisson {
                mean_interarrival: Cycles((*mean).max(1)),
                seed: stream_seed,
            });
            for at in stream.arrival_times(per_model) {
                arrivals.push(RequestArrival {
                    at,
                    model: *model,
                    sequence: 0,
                });
            }
        }
        ClusterTrace::from_arrivals(arrivals)
    }

    /// Builds a trace from explicit arrivals (sorted by time; sequence
    /// numbers are re-assigned in time order).
    pub fn from_arrivals(mut arrivals: Vec<RequestArrival>) -> Self {
        arrivals.sort_by_key(|a| a.at);
        for (sequence, arrival) in arrivals.iter_mut().enumerate() {
            arrival.sequence = sequence as u64;
        }
        ClusterTrace { arrivals }
    }

    /// The time-ordered arrivals.
    pub fn arrivals(&self) -> &[RequestArrival] {
        &self.arrivals
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrival time of the last request (the offered-load horizon).
    pub fn horizon(&self) -> Cycles {
        self.arrivals.last().map(|a| a.at).unwrap_or(Cycles::ZERO)
    }

    /// The distinct models appearing in the trace, in first-arrival order.
    pub fn models(&self) -> Vec<ModelId> {
        let mut models = Vec::new();
        for arrival in &self.arrivals {
            if !models.contains(&arrival.model) {
                models.push(arrival.model);
            }
        }
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_keeps_requests_outstanding() {
        let stream = RequestStream::new(ArrivalProcess::ClosedLoop { concurrency: 2 });
        assert_eq!(stream.initial_outstanding(), 2);
        assert!(stream.reissue_on_completion());
        assert!(stream.arrival_times(4).iter().all(|t| t.is_zero()));
    }

    #[test]
    fn poisson_arrivals_are_monotonic_and_deterministic() {
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(10_000),
            seed: 7,
        });
        let a = stream.arrival_times(100);
        let b = stream.arrival_times(100);
        assert_eq!(a, b, "same seed must reproduce the same arrivals");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(!stream.reissue_on_completion());
        assert_eq!(stream.initial_outstanding(), 0);
    }

    #[test]
    fn poisson_mean_is_roughly_respected() {
        let mean = 50_000u64;
        let stream = RequestStream::new(ArrivalProcess::Poisson {
            mean_interarrival: Cycles(mean),
            seed: 42,
        });
        let times = stream.arrival_times(2_000);
        let last = times.last().unwrap().get() as f64;
        let empirical_mean = last / 2_000.0;
        assert!(
            (empirical_mean / mean as f64 - 1.0).abs() < 0.15,
            "empirical mean {empirical_mean} too far from {mean}"
        );
    }

    #[test]
    fn default_is_single_closed_loop() {
        let stream = RequestStream::default();
        assert_eq!(stream.initial_outstanding(), 1);
    }

    #[test]
    fn cluster_trace_merges_streams_in_time_order() {
        let trace =
            ClusterTrace::poisson(&[(ModelId::Mnist, 10_000), (ModelId::Bert, 25_000)], 50, 7);
        assert_eq!(trace.len(), 100);
        assert!(trace
            .arrivals()
            .windows(2)
            .all(|w| w[0].at <= w[1].at && w[0].sequence < w[1].sequence));
        assert_eq!(trace.models().len(), 2);
        assert!(trace.horizon() > Cycles::ZERO);
        // Determinism for a fixed seed.
        let again =
            ClusterTrace::poisson(&[(ModelId::Mnist, 10_000), (ModelId::Bert, 25_000)], 50, 7);
        assert_eq!(trace, again);
    }

    #[test]
    fn replayed_traces_reassign_sequences() {
        let trace = ClusterTrace::from_arrivals(vec![
            RequestArrival {
                at: Cycles(500),
                model: ModelId::Mnist,
                sequence: 99,
            },
            RequestArrival {
                at: Cycles(100),
                model: ModelId::Bert,
                sequence: 99,
            },
        ]);
        assert_eq!(trace.arrivals()[0].model, ModelId::Bert);
        assert_eq!(trace.arrivals()[0].sequence, 0);
        assert_eq!(trace.arrivals()[1].sequence, 1);
    }
}
