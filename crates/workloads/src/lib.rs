//! Synthetic DNN inference workloads for the Neu10 reproduction.
//!
//! The paper drives its evaluation with operator traces collected from MLPerf
//! and TPU reference models on real Google TPUv4 hardware. Those traces are
//! proprietary, so this crate generates *synthetic but shape-faithful*
//! operator graphs for the same model catalog (Table I plus the LLaMA-13B
//! case study): every model is described by its layer shapes, and the
//! resulting [`neuisa::TensorOperator`] sequences reproduce the
//! characteristics the evaluation depends on — which models are ME-intensive
//! versus VE-intensive (Fig. 2, Fig. 4), how utilization fluctuates over an
//! inference (Fig. 5) and how much HBM bandwidth each model consumes (Fig. 7).
//!
//! # Example
//!
//! ```
//! use workloads::{ModelId, InferenceGraph};
//!
//! let graph = InferenceGraph::build(ModelId::Bert, 8);
//! assert!(graph.operators().len() > 10);
//! assert!(graph.hbm_footprint_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod memo;
pub mod models;
pub mod profile;
pub mod request;
pub mod scenario;
pub mod suite;

pub use graph::InferenceGraph;
pub use memo::Memo;
pub use profile::{DemandSample, WorkloadProfile};
pub use request::{
    ArrivalProcess, ClusterTrace, PriorityClass, QosSpec, RequestArrival, RequestStream,
};
pub use scenario::{BurstyTrace, DiurnalTrace, FlashCrowdTrace};
pub use suite::{
    collocation_pairs, llm_pairs, memory_intensive_pairs, model_catalog, ContentionLevel,
    ModelCategory, ModelId, ModelInfo, WorkloadPair,
};
