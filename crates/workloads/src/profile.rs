//! Workload characterization (the §II-B study).
//!
//! [`WorkloadProfile`] reproduces the analyses behind the motivation figures:
//! the number of MEs/VEs demanded by each operator over time (Fig. 2–3), the
//! ME/VE intensity ratio (Fig. 4), the ME/VE utilization of a solo run
//! (Fig. 5), the HBM bandwidth over time (Fig. 7), and the `m`/`v` active
//! ratios that feed the vNPU allocator of §III-B.

use neuisa::compiler::{Compiler, CompilerOptions};
use npu_sim::{Cycles, NpuConfig};

use crate::graph::InferenceGraph;
use crate::suite::ModelId;

/// Per-operator profiling record.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandSample {
    /// Operator name.
    pub name: String,
    /// Start of the operator in the solo-run timeline.
    pub start: Cycles,
    /// Duration of the operator in the solo-run timeline.
    pub duration: Cycles,
    /// Number of MEs the compiler assigns to the operator.
    pub demanded_mes: usize,
    /// Number of VEs the operator needs to keep pace.
    pub demanded_ves: usize,
    /// Total ME work of the operator.
    pub me_cycles: Cycles,
    /// Total VE work of the operator.
    pub ve_cycles: Cycles,
    /// HBM bytes moved by the operator.
    pub hbm_bytes: u64,
}

impl DemandSample {
    /// ME utilization of the whole core (with `nx` MEs) while this operator runs.
    pub fn me_utilization(&self, nx: usize) -> f64 {
        if self.duration.is_zero() || nx == 0 {
            return 0.0;
        }
        (self.me_cycles.get() as f64 / (self.duration.get() as f64 * nx as f64)).min(1.0)
    }

    /// VE utilization of the whole core (with `ny` VEs) while this operator runs.
    pub fn ve_utilization(&self, ny: usize) -> f64 {
        if self.duration.is_zero() || ny == 0 {
            return 0.0;
        }
        (self.ve_cycles.get() as f64 / (self.duration.get() as f64 * ny as f64)).min(1.0)
    }

    /// Achieved HBM bandwidth (bytes/second) while this operator runs.
    pub fn hbm_bandwidth(&self, config: &NpuConfig) -> f64 {
        let secs = config.frequency.cycles_to_time(self.duration).as_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.hbm_bytes as f64 / secs).min(config.hbm_bandwidth_bytes_per_sec)
    }
}

/// The characterization of one model at one batch size.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    model: ModelId,
    batch_size: u64,
    samples: Vec<DemandSample>,
    total_me_cycles: Cycles,
    total_ve_cycles: Cycles,
    total_hbm_bytes: u64,
    /// Solo-run makespan on a full core.
    makespan: Cycles,
    /// ME active-time ratio when run on one ME and one VE (§III-B `m`).
    me_active_ratio: f64,
    /// VE active-time ratio when run on one ME and one VE (§III-B `v`).
    ve_active_ratio: f64,
}

impl WorkloadProfile {
    /// Profiles `model` at `batch_size` on the core described by `config`.
    pub fn analyze(model: ModelId, batch_size: u64, config: &NpuConfig) -> Self {
        let graph = InferenceGraph::build(model, batch_size);
        WorkloadProfile::analyze_graph(&graph, config)
    }

    /// Profiles an already-built inference graph.
    pub fn analyze_graph(graph: &InferenceGraph, config: &NpuConfig) -> Self {
        let compiler = Compiler::new(config, CompilerOptions::default());
        let operators = compiler.preprocess(graph.operators().to_vec());
        let ny = config.ves_per_core;
        let peak_bw = config.hbm_bandwidth_bytes_per_sec;

        let mut samples = Vec::with_capacity(operators.len());
        let mut cursor = Cycles::ZERO;
        let mut total_me = 0u64;
        let mut total_ve = 0u64;
        let mut total_bytes = 0u64;
        let mut single_engine_span = 0u64;

        for op in &operators {
            let compiled = compiler.compile_operator(op);
            let me_cycles = compiled.cost.me_cycles;
            let ve_cycles = compiled.cost.ve_cycles;
            let hbm_bytes = compiled.cost.hbm_bytes;
            let hbm_cycles = config.frequency.bytes_to_cycles(hbm_bytes, peak_bw);

            // Solo run on the full core: the compiler's ME assignment plus
            // enough VEs to keep pace, bounded by the memory time.
            let demanded_mes = compiled.plan.me_utops;
            let me_span = if demanded_mes > 0 {
                me_cycles.get().div_ceil(demanded_mes as u64)
            } else {
                0
            };
            let base_span = me_span.max(hbm_cycles.get()).max(1);
            let demanded_ves = if ve_cycles.is_zero() {
                0
            } else if demanded_mes == 0 {
                // Vector-only operator: use as many VEs as useful against the
                // memory time.
                let against_memory = ve_cycles.get().div_ceil(hbm_cycles.get().max(1));
                (against_memory.max(1) as usize).min(ny)
            } else {
                (ve_cycles.get().div_ceil(base_span).max(1) as usize).min(ny)
            };
            let ve_span = if demanded_ves > 0 {
                ve_cycles.get().div_ceil(demanded_ves as u64)
            } else {
                0
            };
            let duration = Cycles(me_span.max(ve_span).max(hbm_cycles.get()).max(1))
                + compiled.overhead_cycles;

            samples.push(DemandSample {
                name: op.name().to_string(),
                start: cursor,
                duration,
                demanded_mes,
                demanded_ves,
                me_cycles,
                ve_cycles,
                hbm_bytes,
            });
            cursor += duration;
            total_me += me_cycles.get();
            total_ve += ve_cycles.get();
            total_bytes += hbm_bytes;
            // 1 ME + 1 VE run (used for the m/v ratios of §III-B).
            single_engine_span += me_cycles
                .get()
                .max(ve_cycles.get())
                .max(hbm_cycles.get())
                .max(1);
        }

        let me_active_ratio = if single_engine_span > 0 {
            (total_me as f64 / single_engine_span as f64).min(1.0)
        } else {
            0.0
        };
        let ve_active_ratio = if single_engine_span > 0 {
            (total_ve as f64 / single_engine_span as f64).min(1.0)
        } else {
            0.0
        };

        WorkloadProfile {
            model: graph.model(),
            batch_size: graph.batch_size(),
            samples,
            total_me_cycles: Cycles(total_me),
            total_ve_cycles: Cycles(total_ve),
            total_hbm_bytes: total_bytes,
            makespan: cursor,
            me_active_ratio,
            ve_active_ratio,
        }
    }

    /// The profiled model.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// The profiled batch size.
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Per-operator records in execution order.
    pub fn samples(&self) -> &[DemandSample] {
        &self.samples
    }

    /// Total ME work of one request.
    pub fn total_me_cycles(&self) -> Cycles {
        self.total_me_cycles
    }

    /// Total VE work of one request.
    pub fn total_ve_cycles(&self) -> Cycles {
        self.total_ve_cycles
    }

    /// Total HBM traffic of one request.
    pub fn total_hbm_bytes(&self) -> u64 {
        self.total_hbm_bytes
    }

    /// Solo-run makespan of one request on a full core.
    pub fn makespan(&self) -> Cycles {
        self.makespan
    }

    /// The ME active-time ratio `m` of §III-B (run on one ME + one VE).
    pub fn me_active_ratio(&self) -> f64 {
        self.me_active_ratio
    }

    /// The VE active-time ratio `v` of §III-B (run on one ME + one VE).
    pub fn ve_active_ratio(&self) -> f64 {
        self.ve_active_ratio
    }

    /// The ME/VE intensity ratio of Fig. 4 (total ME time over total VE time).
    pub fn intensity_ratio(&self) -> f64 {
        if self.total_ve_cycles.is_zero() {
            return f64::INFINITY;
        }
        self.total_me_cycles.get() as f64 / self.total_ve_cycles.get() as f64
    }

    /// Average HBM bandwidth of a solo run, in bytes per second.
    pub fn average_hbm_bandwidth(&self, config: &NpuConfig) -> f64 {
        let secs = config.frequency.cycles_to_time(self.makespan).as_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_hbm_bytes as f64 / secs
    }

    /// Average ME utilization of a solo run on a core with `nx` MEs.
    pub fn average_me_utilization(&self, nx: usize) -> f64 {
        if self.makespan.is_zero() || nx == 0 {
            return 0.0;
        }
        (self.total_me_cycles.get() as f64 / (self.makespan.get() as f64 * nx as f64)).min(1.0)
    }

    /// Average VE utilization of a solo run on a core with `ny` VEs.
    pub fn average_ve_utilization(&self, ny: usize) -> f64 {
        if self.makespan.is_zero() || ny == 0 {
            return 0.0;
        }
        (self.total_ve_cycles.get() as f64 / (self.makespan.get() as f64 * ny as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> NpuConfig {
        NpuConfig::tpu_v4_like()
    }

    #[test]
    fn profile_covers_every_operator() {
        let profile = WorkloadProfile::analyze(ModelId::Mnist, 8, &config());
        assert!(!profile.samples().is_empty());
        assert!(profile.makespan() > Cycles::ZERO);
        // Samples tile the timeline without gaps.
        let mut cursor = Cycles::ZERO;
        for s in profile.samples() {
            assert_eq!(s.start, cursor);
            cursor += s.duration;
        }
        assert_eq!(cursor, profile.makespan());
    }

    #[test]
    fn active_ratios_are_valid_fractions() {
        for model in [ModelId::Bert, ModelId::Dlrm, ModelId::ResNet] {
            let p = WorkloadProfile::analyze(model, 8, &config());
            let (m, v) = (p.me_active_ratio(), p.ve_active_ratio());
            assert!((0.0..=1.0).contains(&m), "{model}: m={m}");
            assert!((0.0..=1.0).contains(&v), "{model}: v={v}");
        }
    }

    #[test]
    fn resnet_demands_more_mes_than_dlrm() {
        let resnet = WorkloadProfile::analyze(ModelId::ResNet, 32, &config());
        let dlrm = WorkloadProfile::analyze(ModelId::Dlrm, 32, &config());
        assert!(resnet.me_active_ratio() > dlrm.me_active_ratio());
        assert!(dlrm.ve_active_ratio() > dlrm.me_active_ratio());
        assert!(resnet.intensity_ratio() > dlrm.intensity_ratio());
    }

    #[test]
    fn demanded_engines_respect_core_limits() {
        let cfg = config();
        let p = WorkloadProfile::analyze(ModelId::Bert, 32, &cfg);
        for s in p.samples() {
            assert!(s.demanded_mes <= cfg.mes_per_core);
            assert!(s.demanded_ves <= cfg.ves_per_core);
            assert!(s.me_utilization(cfg.mes_per_core) <= 1.0);
            assert!(s.ve_utilization(cfg.ves_per_core) <= 1.0);
            assert!(s.hbm_bandwidth(&cfg) <= cfg.hbm_bandwidth_bytes_per_sec);
        }
    }

    #[test]
    fn single_request_utilization_is_below_full() {
        // §II-B: a single inference workload cannot keep the whole core busy.
        let cfg = config();
        for model in [ModelId::Bert, ModelId::Dlrm, ModelId::EfficientNet] {
            let p = WorkloadProfile::analyze(model, 8, &cfg);
            let combined = p.average_me_utilization(cfg.mes_per_core)
                + p.average_ve_utilization(cfg.ves_per_core);
            assert!(combined < 1.8, "{model} is implausibly fully utilized");
        }
    }

    #[test]
    fn llama_average_bandwidth_is_high() {
        let cfg = config();
        let llama = WorkloadProfile::analyze(ModelId::Llama, 8, &cfg);
        let bert = WorkloadProfile::analyze(ModelId::Bert, 8, &cfg);
        assert!(llama.average_hbm_bandwidth(&cfg) > bert.average_hbm_bandwidth(&cfg));
    }
}
