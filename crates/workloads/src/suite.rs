//! The model catalog (Table I) and the collocation pairs used in §V.

use std::fmt;

/// The DNN models used as ML services in the paper (Table I), plus the
/// LLaMA-2-13B LLM case study of §V-F.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelId {
    /// BERT-large question answering (NLP).
    Bert,
    /// Transformer translation model (NLP).
    Transformer,
    /// DLRM recommendation model.
    Dlrm,
    /// Neural collaborative filtering recommendation model.
    Ncf,
    /// Mask-RCNN object detection & segmentation.
    MaskRcnn,
    /// RetinaNet object detection.
    RetinaNet,
    /// ShapeMask instance segmentation.
    ShapeMask,
    /// MNIST toy classifier.
    Mnist,
    /// ResNet-50 image classification.
    ResNet,
    /// ResNet-RS image classification.
    ResNetRs,
    /// EfficientNet image classification.
    EfficientNet,
    /// LLaMA-2-13B autoregressive LLM (memory-bandwidth-intensive case study).
    Llama,
}

impl ModelId {
    /// Every model in the catalog, in Table I order, with LLaMA appended.
    pub fn all() -> [ModelId; 12] {
        [
            ModelId::Bert,
            ModelId::Transformer,
            ModelId::Dlrm,
            ModelId::Ncf,
            ModelId::MaskRcnn,
            ModelId::RetinaNet,
            ModelId::ShapeMask,
            ModelId::Mnist,
            ModelId::ResNet,
            ModelId::ResNetRs,
            ModelId::EfficientNet,
            ModelId::Llama,
        ]
    }

    /// The models of Table I (without the LLaMA case study).
    pub fn table_i() -> [ModelId; 11] {
        [
            ModelId::Bert,
            ModelId::Transformer,
            ModelId::Dlrm,
            ModelId::Ncf,
            ModelId::MaskRcnn,
            ModelId::RetinaNet,
            ModelId::ShapeMask,
            ModelId::Mnist,
            ModelId::ResNet,
            ModelId::ResNetRs,
            ModelId::EfficientNet,
        ]
    }

    /// Full model name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Bert => "BERT",
            ModelId::Transformer => "Transformer",
            ModelId::Dlrm => "DLRM",
            ModelId::Ncf => "NCF",
            ModelId::MaskRcnn => "Mask-RCNN",
            ModelId::RetinaNet => "RetinaNet",
            ModelId::ShapeMask => "ShapeMask",
            ModelId::Mnist => "MNIST",
            ModelId::ResNet => "ResNet",
            ModelId::ResNetRs => "ResNet-RS",
            ModelId::EfficientNet => "EfficientNet",
            ModelId::Llama => "LLaMA-2-13B",
        }
    }

    /// The abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            ModelId::Bert => "BERT",
            ModelId::Transformer => "TFMR",
            ModelId::Dlrm => "DLRM",
            ModelId::Ncf => "NCF",
            ModelId::MaskRcnn => "MRCN",
            ModelId::RetinaNet => "RtNt",
            ModelId::ShapeMask => "SMask",
            ModelId::Mnist => "MNIST",
            ModelId::ResNet => "RsNt",
            ModelId::ResNetRs => "RNRS",
            ModelId::EfficientNet => "ENet",
            ModelId::Llama => "LLaMA",
        }
    }

    /// The workload category of Table I.
    pub fn category(self) -> ModelCategory {
        match self {
            ModelId::Bert | ModelId::Transformer => ModelCategory::NaturalLanguageProcessing,
            ModelId::Dlrm | ModelId::Ncf => ModelCategory::Recommendation,
            ModelId::MaskRcnn | ModelId::RetinaNet | ModelId::ShapeMask => {
                ModelCategory::ObjectDetection
            }
            ModelId::Mnist | ModelId::ResNet | ModelId::ResNetRs | ModelId::EfficientNet => {
                ModelCategory::ImageClassification
            }
            ModelId::Llama => ModelCategory::LargeLanguageModel,
        }
    }

    /// The batch size the paper uses for this model in the multi-tenant
    /// experiments (§V-A): 32 for most models, 8 for Mask-RCNN, ShapeMask and
    /// the LLaMA case study.
    pub fn evaluation_batch_size(self) -> u64 {
        match self {
            ModelId::MaskRcnn | ModelId::ShapeMask | ModelId::Llama => 8,
            _ => 32,
        }
    }

    /// The fraction of the model's per-request HBM traffic that *writes*
    /// tenant-resident state (and therefore dirties pages a live pre-copy
    /// migration must re-stream). Weights are read-mostly for every model;
    /// what varies is the mutable state: an LLM appends to its KV cache on
    /// every token, NLP encoders materialize large activations, embedding
    /// lookups write small per-request scratch, and feed-forward vision
    /// models barely touch HBM beyond streaming weights in.
    pub fn hbm_write_fraction(self) -> f64 {
        match self.category() {
            ModelCategory::LargeLanguageModel => 0.35,
            ModelCategory::NaturalLanguageProcessing => 0.15,
            ModelCategory::Recommendation => 0.08,
            ModelCategory::ObjectDetection => 0.04,
            ModelCategory::ImageClassification => 0.02,
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The Table I workload categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelCategory {
    /// Natural language processing (BERT, Transformer).
    NaturalLanguageProcessing,
    /// Recommendation (DLRM, NCF).
    Recommendation,
    /// Object detection & segmentation (Mask-RCNN, RetinaNet, ShapeMask).
    ObjectDetection,
    /// Image classification (MNIST, ResNet, ResNet-RS, EfficientNet).
    ImageClassification,
    /// Large language models (the §V-F LLaMA case study).
    LargeLanguageModel,
}

impl fmt::Display for ModelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelCategory::NaturalLanguageProcessing => "Natural Language Processing",
            ModelCategory::Recommendation => "Recommendation",
            ModelCategory::ObjectDetection => "Object Detection & Segmentation",
            ModelCategory::ImageClassification => "Image Classification",
            ModelCategory::LargeLanguageModel => "Large Language Model",
        };
        f.write_str(name)
    }
}

/// Catalog entry describing one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The model.
    pub id: ModelId,
    /// Full name.
    pub name: &'static str,
    /// Figure abbreviation.
    pub abbrev: &'static str,
    /// Workload category.
    pub category: ModelCategory,
    /// Batch size used in the paper's multi-tenant evaluation.
    pub evaluation_batch_size: u64,
}

/// The full model catalog in Table I order (LLaMA appended last).
pub fn model_catalog() -> Vec<ModelInfo> {
    ModelId::all()
        .into_iter()
        .map(|id| ModelInfo {
            id,
            name: id.name(),
            abbrev: id.abbrev(),
            category: id.category(),
            evaluation_batch_size: id.evaluation_batch_size(),
        })
        .collect()
}

/// ME/VE contention level of a collocation pair (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContentionLevel {
    /// The two workloads stress mostly different engine types.
    Low,
    /// Moderate overlap in engine demand.
    Medium,
    /// Both workloads compete for the same engine type.
    High,
    /// Both workloads are memory-bandwidth intensive (§V-F pairs).
    MemoryBound,
    /// An LLM collocated with a compute-intensive model (§V-F case study).
    LlmCaseStudy,
}

impl fmt::Display for ContentionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContentionLevel::Low => "low",
            ContentionLevel::Medium => "medium",
            ContentionLevel::High => "high",
            ContentionLevel::MemoryBound => "memory-bound",
            ContentionLevel::LlmCaseStudy => "llm-case-study",
        };
        f.write_str(name)
    }
}

/// A collocated workload pair used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadPair {
    /// First workload (W1 in the figures).
    pub first: ModelId,
    /// Second workload (W2 in the figures).
    pub second: ModelId,
    /// ME/VE contention level of the pair.
    pub contention: ContentionLevel,
}

impl WorkloadPair {
    /// The figure label of the pair, e.g. `DLRM+SMask`.
    pub fn label(&self) -> String {
        format!("{}+{}", self.first.abbrev(), self.second.abbrev())
    }
}

impl fmt::Display for WorkloadPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The nine collocation pairs of §V-A, in figure order: three with low, three
/// with medium and three with high ME/VE contention.
pub fn collocation_pairs() -> Vec<WorkloadPair> {
    use ContentionLevel::*;
    use ModelId::*;
    vec![
        WorkloadPair {
            first: Dlrm,
            second: ShapeMask,
            contention: Low,
        },
        WorkloadPair {
            first: Dlrm,
            second: RetinaNet,
            contention: Low,
        },
        WorkloadPair {
            first: Ncf,
            second: ResNet,
            contention: Low,
        },
        WorkloadPair {
            first: EfficientNet,
            second: ShapeMask,
            contention: Medium,
        },
        WorkloadPair {
            first: Bert,
            second: EfficientNet,
            contention: Medium,
        },
        WorkloadPair {
            first: EfficientNet,
            second: MaskRcnn,
            contention: Medium,
        },
        WorkloadPair {
            first: EfficientNet,
            second: Transformer,
            contention: High,
        },
        WorkloadPair {
            first: Mnist,
            second: RetinaNet,
            contention: High,
        },
        WorkloadPair {
            first: ResNetRs,
            second: RetinaNet,
            contention: High,
        },
    ]
}

/// The two memory-bandwidth-intensive pairs added in §V-F (Fig. 26).
pub fn memory_intensive_pairs() -> Vec<WorkloadPair> {
    use ModelId::*;
    vec![
        WorkloadPair {
            first: Dlrm,
            second: Ncf,
            contention: ContentionLevel::MemoryBound,
        },
        WorkloadPair {
            first: Ncf,
            second: Transformer,
            contention: ContentionLevel::MemoryBound,
        },
    ]
}

/// The LLM collocation pairs of the §V-F case study (Fig. 27).
pub fn llm_pairs() -> Vec<WorkloadPair> {
    use ModelId::*;
    vec![
        WorkloadPair {
            first: Llama,
            second: Bert,
            contention: ContentionLevel::LlmCaseStudy,
        },
        WorkloadPair {
            first: Llama,
            second: ResNet,
            contention: ContentionLevel::LlmCaseStudy,
        },
        WorkloadPair {
            first: Llama,
            second: RetinaNet,
            contention: ContentionLevel::LlmCaseStudy,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_table_i_plus_llama() {
        let catalog = model_catalog();
        assert_eq!(catalog.len(), 12);
        assert_eq!(ModelId::table_i().len(), 11);
        assert!(catalog.iter().any(|m| m.abbrev == "RNRS"));
        assert!(catalog.iter().any(|m| m.abbrev == "LLaMA"));
    }

    #[test]
    fn nine_collocation_pairs_in_three_contention_bands() {
        let pairs = collocation_pairs();
        assert_eq!(pairs.len(), 9);
        for level in [
            ContentionLevel::Low,
            ContentionLevel::Medium,
            ContentionLevel::High,
        ] {
            assert_eq!(pairs.iter().filter(|p| p.contention == level).count(), 3);
        }
        assert_eq!(pairs[0].label(), "DLRM+SMask");
        assert_eq!(pairs[8].label(), "RNRS+RtNt");
    }

    #[test]
    fn evaluation_batch_sizes_match_section_v_a() {
        assert_eq!(ModelId::Bert.evaluation_batch_size(), 32);
        assert_eq!(ModelId::MaskRcnn.evaluation_batch_size(), 8);
        assert_eq!(ModelId::ShapeMask.evaluation_batch_size(), 8);
    }

    #[test]
    fn write_fractions_order_kv_heavy_above_read_mostly() {
        // The dirty-rate model rests on this ordering: KV-appending LLMs
        // dirty far more resident state per request than feed-forward vision.
        assert!(ModelId::Llama.hbm_write_fraction() > ModelId::Bert.hbm_write_fraction());
        assert!(ModelId::Bert.hbm_write_fraction() > ModelId::ResNet.hbm_write_fraction());
        for model in ModelId::all() {
            let fraction = model.hbm_write_fraction();
            assert!((0.0..=1.0).contains(&fraction), "{model:?}: {fraction}");
        }
    }

    #[test]
    fn categories_match_table_i() {
        assert_eq!(ModelId::Dlrm.category(), ModelCategory::Recommendation);
        assert_eq!(
            ModelId::RetinaNet.category(),
            ModelCategory::ObjectDetection
        );
        assert_eq!(
            ModelId::EfficientNet.category(),
            ModelCategory::ImageClassification
        );
        assert_eq!(ModelId::Llama.category(), ModelCategory::LargeLanguageModel);
    }

    #[test]
    fn auxiliary_pairs_exist() {
        assert_eq!(memory_intensive_pairs().len(), 2);
        assert_eq!(llm_pairs().len(), 3);
        assert!(llm_pairs().iter().all(|p| p.first == ModelId::Llama));
    }

    #[test]
    fn display_uses_abbreviations() {
        assert_eq!(ModelId::RetinaNet.to_string(), "RtNt");
        assert_eq!(collocation_pairs()[1].to_string(), "DLRM+RtNt");
    }
}
