//! Recommendation models: DLRM and NCF.
//!
//! Both models are dominated by embedding-table gathers (HBM traffic) and
//! element-wise feature processing on the vector engines; their matrix work is
//! limited to small MLPs. This is what makes them the canonical VE-intensive
//! workloads of the paper (Fig. 4 intensity ratio ≪ 1, high HBM bandwidth in
//! Fig. 7).

use neuisa::{Activation, TensorOperator};

use super::{elementwise, embedding, matmul_act};

/// DLRM (MLPerf recommendation): 26 sparse features gathered from large
/// embedding tables, a bottom MLP for dense features, pairwise feature
/// interaction and a top MLP.
pub fn dlrm(batch: u64) -> Vec<TensorOperator> {
    let embedding_dim: u64 = 128;
    let sparse_features: u64 = 26;
    let mut ops = Vec::new();

    // Embedding gathers: each sample touches `sparse_features` tables with
    // multi-hot lookups (~64 rows pooled per feature). The gathered bytes per
    // sample (~2 MB) reflect the multi-hot pooling traffic the paper measures
    // (~500 GB/s at batch 8 over a ~150 µs inference).
    let bytes_per_sample: u64 = 2 * 1024 * 1024;
    let pooled_rows_per_feature: u64 = 64;
    for table_group in 0..4 {
        ops.push(embedding(
            format!("dlrm.emb{table_group}"),
            batch * bytes_per_sample / 4,
            batch * sparse_features * pooled_rows_per_feature * embedding_dim / 4,
        ));
        // Pooling and per-feature normalization on the VE.
        ops.push(elementwise(
            format!("dlrm.pool{table_group}"),
            batch * sparse_features * embedding_dim,
            4,
        ));
    }

    // Bottom MLP over the 13 dense features.
    for (i, (k, n)) in [(13u64, 512u64), (512, 256), (256, 128)].iter().enumerate() {
        ops.push(matmul_act(
            format!("dlrm.bot_mlp{i}"),
            batch,
            *k,
            *n,
            Activation::Relu,
        ));
    }

    // Pairwise feature interaction: dot products between the 27 feature
    // vectors of every sample, plus concatenation — pure VE work.
    ops.push(elementwise(
        "dlrm.interaction",
        batch * 27 * 27 * embedding_dim,
        2,
    ));

    // Top MLP.
    for (i, (k, n)) in [
        (479u64, 1024u64),
        (1024, 1024),
        (1024, 512),
        (512, 256),
        (256, 1),
    ]
    .iter()
    .enumerate()
    {
        ops.push(matmul_act(
            format!("dlrm.top_mlp{i}"),
            batch,
            *k,
            *n,
            Activation::Relu,
        ));
    }
    ops.push(elementwise("dlrm.sigmoid", batch, 3));
    ops
}

/// NCF (neural collaborative filtering): user/item embedding lookups followed
/// by an MLP scored over a candidate set per user.
pub fn ncf(batch: u64) -> Vec<TensorOperator> {
    let candidates: u64 = 100;
    let embedding_dim: u64 = 64;
    let rows = batch * candidates;
    let mut ops = Vec::new();

    // User and item embedding gathers (tables are ~10 GB resident). Each
    // user pulls the embeddings of its interaction history alongside the
    // candidate items, so the gather volume is far larger than the MLP input.
    let bytes_per_sample: u64 = 512 * 1024;
    let history_rows: u64 = 32;
    ops.push(embedding(
        "ncf.user_emb",
        batch * bytes_per_sample / 2,
        batch * history_rows * candidates * embedding_dim / 2,
    ));
    ops.push(embedding(
        "ncf.item_emb",
        batch * bytes_per_sample / 2,
        batch * history_rows * candidates * embedding_dim / 2,
    ));
    // GMF element-wise product branch.
    ops.push(elementwise("ncf.gmf", rows * embedding_dim, 2));

    // MLP branch over the concatenated embeddings (NCF uses narrow layers).
    for (i, (k, n)) in [(128u64, 64u64), (64, 32), (32, 16)].iter().enumerate() {
        ops.push(matmul_act(
            format!("ncf.mlp{i}"),
            rows,
            *k,
            *n,
            Activation::Relu,
        ));
    }

    // Fusion of the two branches and final score.
    ops.push(elementwise("ncf.concat", rows * 128, 1));
    ops.push(matmul_act("ncf.predict", rows, 80, 1, Activation::Sigmoid));
    ops.push(elementwise("ncf.topk", rows * 8, 4));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuisa::compiler::{Compiler, CompilerOptions};
    use npu_sim::NpuConfig;

    fn totals(ops: &[TensorOperator]) -> (u64, u64, u64) {
        let compiler = Compiler::new(&NpuConfig::tpu_v4_like(), CompilerOptions::default());
        let mut me = 0;
        let mut ve = 0;
        let mut bytes = 0;
        for op in ops {
            let c = compiler.cost_model().operator_cost(op);
            me += c.me_cycles.get();
            ve += c.ve_cycles.get();
            bytes += c.hbm_bytes;
        }
        (me, ve, bytes)
    }

    #[test]
    fn dlrm_is_ve_intensive() {
        let (me, ve, bytes) = totals(&dlrm(8));
        assert!(ve > me, "DLRM should have more VE than ME work");
        assert!(
            bytes > 8 * 1024 * 1024,
            "DLRM should move substantial HBM bytes"
        );
    }

    #[test]
    fn ncf_is_ve_intensive_but_smaller_than_dlrm() {
        let (me, ve, _) = totals(&ncf(8));
        assert!(ve > me);
        let (_, _, dlrm_bytes) = totals(&dlrm(8));
        let (_, _, ncf_bytes) = totals(&ncf(8));
        assert!(dlrm_bytes > ncf_bytes);
    }

    #[test]
    fn both_models_scale_with_batch() {
        for build in [dlrm as fn(u64) -> Vec<TensorOperator>, ncf] {
            let (_, _, small) = totals(&build(8));
            let (_, _, large) = totals(&build(32));
            assert!(large > small);
        }
    }

    #[test]
    fn dlrm_still_has_some_me_work() {
        // §II-B: even VE-intensive recommendation models spend ≥20% of their
        // time in ME-heavy MLP computation.
        let (me, _, _) = totals(&dlrm(8));
        assert!(me > 0);
    }
}
