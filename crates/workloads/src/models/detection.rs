//! Object-detection & segmentation models: Mask-RCNN, RetinaNet and ShapeMask.
//!
//! All three run a convolutional backbone over large images, a feature-pyramid
//! network and dense prediction heads — heavily ME-intensive — plus proposal /
//! non-maximum-suppression style post-processing on the vector engines.

use neuisa::{Activation, TensorOperator};

use super::{conv, elementwise, matmul_act, softmax};

/// Mask-RCNN at 1024×1024 inputs: ResNet-50 backbone + FPN + RPN + RoI box and
/// mask heads. The largest workload of Table I (hundreds of milliseconds per
/// batch-8 inference).
pub fn mask_rcnn(batch: u64) -> Vec<TensorOperator> {
    let mut ops = backbone("mrcnn", batch, 256 * 256);
    ops.extend(fpn("mrcnn", batch, 256, 128 * 128));

    // Region proposal network over each pyramid level.
    for level in 0..5u64 {
        let hw = (128 * 128) >> (2 * level);
        ops.push(conv(
            format!("mrcnn.rpn{level}.conv"),
            batch,
            256,
            256,
            hw.max(16),
            9,
        ));
        ops.push(elementwise(
            format!("mrcnn.rpn{level}.objectness"),
            batch * 3 * hw.max(16),
            4,
        ));
    }
    // Proposal selection / NMS: sorting-like VE work.
    ops.push(elementwise("mrcnn.proposal_nms", batch * 1000 * 64, 8));

    // RoI box head: 1000 RoIs × (7×7×256 → 1024 → 1024).
    let rois = batch * 1000;
    ops.push(matmul_act(
        "mrcnn.box_fc1",
        rois,
        7 * 7 * 256,
        1024,
        Activation::Relu,
    ));
    ops.push(matmul_act(
        "mrcnn.box_fc2",
        rois,
        1024,
        1024,
        Activation::Relu,
    ));
    ops.push(matmul_act(
        "mrcnn.box_cls",
        rois,
        1024,
        91,
        Activation::None,
    ));
    ops.push(softmax("mrcnn.box_softmax", rois * 91));
    ops.push(elementwise("mrcnn.box_decode", rois * 4 * 91, 6));

    // Mask head: 100 detections × four 3×3 convs at 14×14 plus deconv.
    let det = batch * 100;
    for i in 0..4 {
        ops.push(conv(
            format!("mrcnn.mask_conv{i}"),
            det,
            256,
            256,
            14 * 14,
            9,
        ));
        ops.push(elementwise(
            format!("mrcnn.mask_relu{i}"),
            det * 256 * 14 * 14,
            1,
        ));
    }
    ops.push(conv("mrcnn.mask_deconv", det, 256, 256, 28 * 28, 4));
    ops.push(elementwise("mrcnn.mask_sigmoid", det * 91 * 28 * 28, 3));
    ops
}

/// RetinaNet at 640×640 inputs: ResNet backbone + FPN + dense class/box heads.
pub fn retinanet(batch: u64) -> Vec<TensorOperator> {
    let mut ops = backbone("rtnt", batch, 160 * 160);
    ops.extend(fpn("rtnt", batch, 256, 80 * 80));
    // Dense heads: four 3×3 convs for classification and regression per level.
    for level in 0..5u64 {
        let hw = ((80 * 80) >> (2 * level)).max(25);
        for head in ["cls", "box"] {
            for i in 0..4 {
                ops.push(conv(
                    format!("rtnt.{head}{level}.conv{i}"),
                    batch,
                    256,
                    256,
                    hw,
                    9,
                ));
                ops.push(elementwise(
                    format!("rtnt.{head}{level}.relu{i}"),
                    batch * 256 * hw,
                    1,
                ));
            }
            ops.push(conv(
                format!("rtnt.{head}{level}.predict"),
                batch,
                256,
                9 * 91,
                hw,
                9,
            ));
        }
    }
    ops.push(elementwise("rtnt.decode_nms", batch * 1000 * 64, 8));
    ops
}

/// ShapeMask at 640×640 inputs: RetinaNet-style detector plus a coarse mask
/// branch with fine-grained refinement.
pub fn shapemask(batch: u64) -> Vec<TensorOperator> {
    let mut ops = backbone("smask", batch, 160 * 160);
    ops.extend(fpn("smask", batch, 256, 80 * 80));
    for level in 0..5u64 {
        let hw = ((80 * 80) >> (2 * level)).max(25);
        for i in 0..4 {
            ops.push(conv(
                format!("smask.head{level}.conv{i}"),
                batch,
                256,
                256,
                hw,
                9,
            ));
            ops.push(elementwise(
                format!("smask.head{level}.relu{i}"),
                batch * 256 * hw,
                1,
            ));
        }
    }
    // Coarse mask estimation + fine mask refinement on sampled instances.
    let instances = batch * 200;
    ops.push(matmul_act(
        "smask.prior_fc",
        instances,
        32 * 32,
        512,
        Activation::Relu,
    ));
    for i in 0..4 {
        ops.push(conv(
            format!("smask.fine_conv{i}"),
            instances,
            128,
            128,
            32 * 32,
            9,
        ));
        ops.push(elementwise(
            format!("smask.fine_relu{i}"),
            instances * 128 * 32 * 32,
            1,
        ));
    }
    ops.push(elementwise("smask.mask_sigmoid", instances * 32 * 32, 3));
    ops.push(elementwise("smask.nms", batch * 1000 * 64, 8));
    ops
}

/// A ResNet-50 style backbone where `base_hw` is the spatial size of the first
/// stage's output feature map.
fn backbone(prefix: &str, batch: u64, base_hw: u64) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    ops.push(conv(format!("{prefix}.stem"), batch, 3, 64, base_hw, 49));
    ops.push(elementwise(
        format!("{prefix}.stem.bnrelu"),
        batch * 64 * base_hw,
        2,
    ));
    let stages: [(u64, u64, u64, u64); 4] = [
        (3, 64, 256, base_hw),
        (4, 128, 512, base_hw / 4),
        (6, 256, 1024, base_hw / 16),
        (3, 512, 2048, base_hw / 64),
    ];
    for (stage, (repeats, mid, out, hw)) in stages.iter().enumerate() {
        for block in 0..*repeats {
            let name = |s: &str| format!("{prefix}.c{stage}.b{block}.{s}");
            let cin = if block == 0 { out / 2 } else { *out };
            ops.push(conv(name("conv1x1a"), batch, cin, *mid, *hw, 1));
            ops.push(elementwise(name("bnrelu_a"), batch * mid * hw, 2));
            ops.push(conv(name("conv3x3"), batch, *mid, *mid, *hw, 9));
            ops.push(elementwise(name("bnrelu_b"), batch * mid * hw, 2));
            ops.push(conv(name("conv1x1b"), batch, *mid, *out, *hw, 1));
            ops.push(elementwise(name("residual"), batch * out * hw, 3));
        }
    }
    ops
}

/// A feature pyramid network over the backbone outputs.
fn fpn(prefix: &str, batch: u64, channels: u64, top_hw: u64) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    for level in 0..5u64 {
        let hw = (top_hw >> (2 * level)).max(25);
        ops.push(conv(
            format!("{prefix}.fpn{level}.lateral"),
            batch,
            2048 >> level.min(3),
            channels,
            hw,
            1,
        ));
        ops.push(conv(
            format!("{prefix}.fpn{level}.output"),
            batch,
            channels,
            channels,
            hw,
            9,
        ));
        ops.push(elementwise(
            format!("{prefix}.fpn{level}.merge"),
            batch * channels * hw,
            2,
        ));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuisa::compiler::{Compiler, CompilerOptions};
    use npu_sim::NpuConfig;

    fn me_ve_bytes(ops: &[TensorOperator]) -> (u64, u64, u64) {
        let compiler = Compiler::new(&NpuConfig::tpu_v4_like(), CompilerOptions::default());
        let mut me = 0;
        let mut ve = 0;
        let mut bytes = 0;
        for op in ops {
            let c = compiler.cost_model().operator_cost(op);
            me += c.me_cycles.get();
            ve += c.ve_cycles.get();
            bytes += c.hbm_bytes;
        }
        (me, ve, bytes)
    }

    #[test]
    fn detection_models_are_me_intensive() {
        for (name, ops) in [
            ("mask_rcnn", mask_rcnn(8)),
            ("retinanet", retinanet(8)),
            ("shapemask", shapemask(8)),
        ] {
            let (me, ve, _) = me_ve_bytes(&ops);
            assert!(me > 2 * ve, "{name} should be ME-intensive ({me} vs {ve})");
        }
    }

    #[test]
    fn mask_rcnn_is_the_largest_workload() {
        let (mrcnn, _, _) = me_ve_bytes(&mask_rcnn(8));
        let (rtnt, _, _) = me_ve_bytes(&retinanet(8));
        let (smask, _, _) = me_ve_bytes(&shapemask(8));
        assert!(mrcnn > rtnt);
        assert!(mrcnn > smask);
    }

    #[test]
    fn graphs_contain_post_processing_ve_work() {
        assert!(mask_rcnn(8).iter().any(|o| o.name().contains("nms")));
        assert!(retinanet(8).iter().any(|o| o.name().contains("nms")));
        assert!(shapemask(8).iter().any(|o| o.name().contains("nms")));
    }

    #[test]
    fn operator_counts_are_bounded() {
        for ops in [mask_rcnn(8), retinanet(8), shapemask(8)] {
            assert!(ops.len() > 50);
            assert!(ops.len() < 400);
        }
    }
}
