//! Per-model operator-graph generators.
//!
//! Every generator returns the tensor-operator sequence of **one inference
//! request** at a given batch size, in execution order, plus an HBM footprint
//! estimate (weights + embedding tables + activations) for Table I.
//!
//! The shapes are taken from the public architectures of the corresponding
//! MLPerf / TPU reference models; they are simplified (e.g. attention is
//! expressed as an equivalent-FLOP GEMM) but preserve the ME/VE/HBM balance
//! that drives the paper's characterization study (§II-B).

mod detection;
mod nlp;
mod recommendation;
mod vision;

use neuisa::{Activation, OperatorKind, TensorOperator};

use crate::suite::ModelId;

/// Builds the operator graph of one inference request of `model` at `batch`.
pub fn build_operators(model: ModelId, batch: u64) -> Vec<TensorOperator> {
    let batch = batch.max(1);
    match model {
        ModelId::Bert => nlp::bert(batch),
        ModelId::Transformer => nlp::transformer(batch),
        ModelId::Llama => nlp::llama(batch),
        ModelId::Dlrm => recommendation::dlrm(batch),
        ModelId::Ncf => recommendation::ncf(batch),
        ModelId::Mnist => vision::mnist(batch),
        ModelId::ResNet => vision::resnet(batch),
        ModelId::ResNetRs => vision::resnet_rs(batch),
        ModelId::EfficientNet => vision::efficientnet(batch),
        ModelId::MaskRcnn => detection::mask_rcnn(batch),
        ModelId::RetinaNet => detection::retinanet(batch),
        ModelId::ShapeMask => detection::shapemask(batch),
    }
}

/// Estimated HBM footprint in bytes of `model` at `batch` (weights +
/// embedding tables + live activations), mirroring Table I.
pub fn hbm_footprint_bytes(model: ModelId, batch: u64) -> u64 {
    let batch = batch.max(1);
    let operators = build_operators(model, batch);
    let weights: u64 = operators.iter().map(|op| op.weight_bytes()).sum();
    let activations: u64 = operators
        .iter()
        .map(|op| op.output_bytes())
        .max()
        .unwrap_or(0)
        * 2;
    weights + activations + table_bytes(model)
}

/// Resident embedding-table / KV-cache bytes that are not captured by the
/// per-operator weight shapes.
fn table_bytes(model: ModelId) -> u64 {
    const GIB: u64 = 1024 * 1024 * 1024;
    match model {
        // DLRM and NCF keep large embedding tables resident in HBM (Table I
        // reports 22.38 GB and 11.10 GB at batch 8).
        ModelId::Dlrm => 21 * GIB,
        ModelId::Ncf => 10 * GIB,
        // LLaMA keeps its 13B bf16 weights resident (~26 GB).
        ModelId::Llama => 0,
        _ => 0,
    }
}

// ---- shared shape helpers used by the model modules ----

pub(crate) fn matmul(name: impl Into<String>, m: u64, k: u64, n: u64) -> TensorOperator {
    TensorOperator::new(name, OperatorKind::MatMul { m, k, n })
}

pub(crate) fn matmul_act(
    name: impl Into<String>,
    m: u64,
    k: u64,
    n: u64,
    act: Activation,
) -> TensorOperator {
    matmul(name, m, k, n).with_activation(act)
}

pub(crate) fn conv(
    name: impl Into<String>,
    batch: u64,
    in_channels: u64,
    out_channels: u64,
    output_hw: u64,
    kernel_hw: u64,
) -> TensorOperator {
    TensorOperator::new(
        name,
        OperatorKind::Conv2d {
            batch,
            in_channels,
            out_channels,
            output_hw,
            kernel_hw,
        },
    )
}

pub(crate) fn elementwise(
    name: impl Into<String>,
    elements: u64,
    ops_per_element: u64,
) -> TensorOperator {
    TensorOperator::new(
        name,
        OperatorKind::Elementwise {
            elements,
            ops_per_element,
        },
    )
}

pub(crate) fn softmax(name: impl Into<String>, elements: u64) -> TensorOperator {
    TensorOperator::new(name, OperatorKind::Softmax { elements })
}

pub(crate) fn layernorm(name: impl Into<String>, elements: u64) -> TensorOperator {
    TensorOperator::new(name, OperatorKind::LayerNorm { elements })
}

pub(crate) fn embedding(
    name: impl Into<String>,
    bytes: u64,
    output_elements: u64,
) -> TensorOperator {
    TensorOperator::new(
        name,
        OperatorKind::EmbeddingLookup {
            bytes,
            output_elements,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuisa::compiler::{Compiler, CompilerOptions};
    use npu_sim::NpuConfig;

    fn intensity_ratio(model: ModelId, batch: u64) -> f64 {
        let compiler = Compiler::new(&NpuConfig::tpu_v4_like(), CompilerOptions::default());
        let mut me = 0u64;
        let mut ve = 0u64;
        for op in build_operators(model, batch) {
            let cost = compiler.cost_model().operator_cost(&op);
            me += cost.me_cycles.get();
            ve += cost.ve_cycles.get();
        }
        me as f64 / ve.max(1) as f64
    }

    #[test]
    fn every_model_produces_a_nonempty_graph() {
        for model in ModelId::all() {
            let ops = build_operators(model, 8);
            assert!(!ops.is_empty(), "{model} produced an empty graph");
            assert!(
                hbm_footprint_bytes(model, 8) > 0,
                "{model} has zero footprint"
            );
        }
    }

    #[test]
    fn batch_size_scales_work() {
        for model in [ModelId::Bert, ModelId::ResNet, ModelId::Dlrm] {
            let small: u64 = build_operators(model, 8)
                .iter()
                .map(|o| o.hbm_bytes())
                .sum();
            let large: u64 = build_operators(model, 32)
                .iter()
                .map(|o| o.hbm_bytes())
                .sum();
            assert!(large > small, "{model} did not scale with batch size");
        }
    }

    #[test]
    fn intensity_ratios_follow_figure_4() {
        // ME-intensive models (convolution dominated).
        assert!(intensity_ratio(ModelId::ResNet, 32) > 4.0);
        assert!(intensity_ratio(ModelId::RetinaNet, 32) > 4.0);
        // VE / memory intensive models.
        assert!(intensity_ratio(ModelId::Dlrm, 32) < 0.5);
        assert!(intensity_ratio(ModelId::Ncf, 32) < 0.5);
        // EfficientNet sits in between.
        let enet = intensity_ratio(ModelId::EfficientNet, 32);
        assert!(enet > 0.2 && enet < 20.0, "EfficientNet ratio {enet}");
        // ME-intensive models are far more ME-heavy than recommendation models.
        assert!(intensity_ratio(ModelId::ResNet, 32) > 20.0 * intensity_ratio(ModelId::Dlrm, 32));
    }

    #[test]
    fn recommendation_footprints_dominate() {
        let dlrm = hbm_footprint_bytes(ModelId::Dlrm, 8);
        let ncf = hbm_footprint_bytes(ModelId::Ncf, 8);
        let mnist = hbm_footprint_bytes(ModelId::Mnist, 8);
        assert!(dlrm > ncf);
        assert!(ncf > mnist * 100);
        assert!(mnist < 64 * 1024 * 1024, "MNIST should be tiny");
    }

    #[test]
    fn llama_moves_far_more_hbm_bytes_than_bert() {
        let llama: u64 = build_operators(ModelId::Llama, 8)
            .iter()
            .map(|o| o.hbm_bytes())
            .sum();
        let bert: u64 = build_operators(ModelId::Bert, 8)
            .iter()
            .map(|o| o.hbm_bytes())
            .sum();
        assert!(llama > 5 * bert);
    }
}
