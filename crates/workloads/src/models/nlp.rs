//! Natural-language models: BERT, Transformer and the LLaMA-13B case study.

use neuisa::{Activation, TensorOperator};

use super::{embedding, layernorm, matmul, matmul_act, softmax};

/// BERT-large question answering (MLPerf BERT): 24 encoder layers, hidden
/// size 1024, feed-forward 4096, sequence length 384.
pub fn bert(batch: u64) -> Vec<TensorOperator> {
    transformer_encoder_stack("bert", batch, 24, 1024, 4096, 384)
}

/// Transformer translation model (TPU reference model): 6 encoder + 6 decoder
/// layers, hidden 1024, feed-forward 4096, sequence length 256, plus the
/// output vocabulary projection which makes it noticeably more ME-intensive
/// per token than BERT.
pub fn transformer(batch: u64) -> Vec<TensorOperator> {
    let hidden = 1024;
    let seq = 256;
    let vocab = 32_000;
    let mut ops = Vec::new();
    ops.push(embedding(
        "tfmr.embed",
        batch * seq * hidden * 2,
        batch * seq * hidden,
    ));
    ops.extend(transformer_encoder_stack(
        "tfmr.enc", batch, 6, hidden, 4096, seq,
    ));
    ops.extend(transformer_encoder_stack(
        "tfmr.dec", batch, 6, hidden, 4096, seq,
    ));
    ops.push(matmul("tfmr.vocab_proj", batch * seq, hidden, vocab));
    ops.push(softmax("tfmr.vocab_softmax", batch * seq * vocab));
    ops
}

/// LLaMA-2-13B autoregressive decoding (§V-F case study): 40 decoder layers,
/// hidden 5120, feed-forward 13824, batch 8, input sequence 512.
///
/// Decode-phase GEMVs are bandwidth-bound: every generated token re-streams
/// the layer weights from HBM and reads the KV cache, while the matrix work
/// per token is tiny (`m = batch`). We model the weight/KV streaming as
/// explicit memory operators so the MEs are genuinely idle while the model is
/// bandwidth-bound — exactly the behaviour Fig. 27 exploits via harvesting.
pub fn llama(batch: u64) -> Vec<TensorOperator> {
    let hidden: u64 = 5120;
    let ffn: u64 = 13_824;
    let layers = 40;
    let prefill_seq = 512;
    let decode_tokens = 8;
    let mut ops = Vec::new();

    // Prefill: one pass over the prompt, expressed at a coarse granularity
    // (four fused super-layers) to keep the operator count manageable.
    for chunk in 0..4 {
        let name = format!("llama.prefill{chunk}");
        let layers_per_chunk = layers / 4;
        ops.push(matmul_act(
            format!("{name}.qkvo"),
            batch * prefill_seq,
            hidden,
            4 * hidden * layers_per_chunk / 4,
            Activation::None,
        ));
        ops.push(softmax(
            format!("{name}.attn_softmax"),
            batch * 40 * prefill_seq * prefill_seq / 4,
        ));
        ops.push(matmul_act(
            format!("{name}.ffn"),
            batch * prefill_seq,
            hidden,
            ffn * layers_per_chunk / 4,
            Activation::Gelu,
        ));
        ops.push(layernorm(
            format!("{name}.norm"),
            batch * prefill_seq * hidden,
        ));
    }

    // Decode: every token streams the full weights (~26 GB) and the KV cache.
    let layer_weight_bytes = (4 * hidden * hidden + 3 * hidden * ffn) * 2;
    let kv_bytes_per_layer = 2 * batch * prefill_seq * hidden * 2;
    for token in 0..decode_tokens {
        for layer_chunk in 0..8 {
            let name = format!("llama.decode{token}.chunk{layer_chunk}");
            let chunk_layers = layers / 8;
            // Weight + KV-cache streaming: pure HBM traffic.
            ops.push(embedding(
                format!("{name}.weight_stream"),
                (layer_weight_bytes + kv_bytes_per_layer) * chunk_layers,
                batch * hidden,
            ));
            // The GEMV compute for the chunk (m = batch rows).
            ops.push(matmul(
                format!("{name}.gemv"),
                batch,
                hidden,
                (4 * hidden + 3 * ffn) * chunk_layers / 8,
            ));
            // Attention softmax + residual/norm work on the VE.
            ops.push(softmax(format!("{name}.softmax"), batch * 40 * prefill_seq));
            ops.push(layernorm(
                format!("{name}.norm"),
                batch * hidden * chunk_layers,
            ));
        }
    }
    ops
}

/// A stack of standard transformer encoder layers.
fn transformer_encoder_stack(
    prefix: &str,
    batch: u64,
    layers: u64,
    hidden: u64,
    ffn: u64,
    seq: u64,
) -> Vec<TensorOperator> {
    let tokens = batch * seq;
    let mut ops = Vec::new();
    for layer in 0..layers {
        let name = |stage: &str| format!("{prefix}.l{layer}.{stage}");
        // Fused QKV projection.
        ops.push(matmul(name("qkv"), tokens, hidden, 3 * hidden));
        // Attention scores (equivalent-FLOP GEMM: tokens × hidden × seq).
        ops.push(matmul(name("scores"), tokens, hidden, seq));
        ops.push(softmax(name("softmax"), tokens * seq));
        // Attention context and output projection.
        ops.push(matmul(name("context"), tokens, seq, hidden));
        ops.push(matmul(name("proj"), tokens, hidden, hidden));
        ops.push(layernorm(name("ln1"), tokens * hidden));
        // Feed-forward block with a fused GELU.
        ops.push(matmul_act(
            name("ffn1"),
            tokens,
            hidden,
            ffn,
            Activation::Gelu,
        ));
        ops.push(matmul(name("ffn2"), tokens, ffn, hidden));
        ops.push(layernorm(name("ln2"), tokens * hidden));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_has_nine_ops_per_layer() {
        let ops = bert(8);
        assert_eq!(ops.len(), 24 * 9);
    }

    #[test]
    fn transformer_includes_vocab_projection() {
        let ops = transformer(8);
        assert!(ops.iter().any(|o| o.name().contains("vocab_proj")));
        assert!(ops.len() > 100);
    }

    #[test]
    fn llama_is_dominated_by_weight_streaming_bytes() {
        let ops = llama(8);
        let stream_bytes: u64 = ops
            .iter()
            .filter(|o| o.name().contains("weight_stream"))
            .map(|o| o.hbm_bytes())
            .sum();
        let total_bytes: u64 = ops.iter().map(|o| o.hbm_bytes()).sum();
        assert!(
            stream_bytes * 2 > total_bytes,
            "decode streaming should dominate"
        );
        // Eight decode tokens re-stream roughly the full 26 GB of weights.
        assert!(stream_bytes > 8 * 20 * 1024 * 1024 * 1024_u64);
    }

    #[test]
    fn bert_scales_with_batch() {
        let b8: u64 = bert(8).iter().map(|o| o.hbm_bytes()).sum();
        let b32: u64 = bert(32).iter().map(|o| o.hbm_bytes()).sum();
        assert!(b32 > b8);
    }
}
