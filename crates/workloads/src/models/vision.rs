//! Image-classification models: MNIST, ResNet, ResNet-RS and EfficientNet.

use neuisa::{Activation, TensorOperator};

use super::{conv, elementwise, matmul_act, softmax};

/// The tiny MNIST MLP classifier (Table I: ~10 MB footprint).
pub fn mnist(batch: u64) -> Vec<TensorOperator> {
    vec![
        matmul_act("mnist.fc1", batch, 784, 512, Activation::Relu),
        matmul_act("mnist.fc2", batch, 512, 256, Activation::Relu),
        matmul_act("mnist.fc3", batch, 256, 10, Activation::None),
        softmax("mnist.softmax", batch * 10),
    ]
}

/// ResNet-50 image classification at 224×224: convolution-dominated and
/// therefore strongly ME-intensive (Fig. 4).
pub fn resnet(batch: u64) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    ops.push(conv("resnet.conv1", batch, 3, 64, 112 * 112, 49));
    ops.push(elementwise(
        "resnet.conv1.bnrelu",
        batch * 64 * 112 * 112,
        2,
    ));
    ops.extend(resnet_stage("resnet.l1", batch, 3, 64, 256, 56 * 56));
    ops.extend(resnet_stage("resnet.l2", batch, 4, 128, 512, 28 * 28));
    ops.extend(resnet_stage("resnet.l3", batch, 6, 256, 1024, 14 * 14));
    ops.extend(resnet_stage("resnet.l4", batch, 3, 512, 2048, 7 * 7));
    ops.push(elementwise("resnet.avgpool", batch * 2048 * 49, 1));
    ops.push(matmul_act("resnet.fc", batch, 2048, 1000, Activation::None));
    ops.push(softmax("resnet.softmax", batch * 1000));
    ops
}

/// ResNet-RS: a deeper / wider ResNet variant operating on larger inputs —
/// roughly 2–3× the compute of ResNet-50.
pub fn resnet_rs(batch: u64) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    ops.push(conv("rnrs.conv1", batch, 3, 64, 160 * 160, 49));
    ops.push(elementwise("rnrs.conv1.bnrelu", batch * 64 * 160 * 160, 2));
    ops.extend(resnet_stage("rnrs.l1", batch, 3, 64, 256, 80 * 80));
    ops.extend(resnet_stage("rnrs.l2", batch, 6, 128, 512, 40 * 40));
    ops.extend(resnet_stage("rnrs.l3", batch, 12, 256, 1024, 20 * 20));
    ops.extend(resnet_stage("rnrs.l4", batch, 4, 512, 2048, 10 * 10));
    ops.push(elementwise("rnrs.avgpool", batch * 2048 * 100, 1));
    ops.push(matmul_act("rnrs.fc", batch, 2048, 1000, Activation::None));
    ops.push(softmax("rnrs.softmax", batch * 1000));
    ops
}

/// EfficientNet: inverted-bottleneck (MBConv) blocks mixing point-wise
/// convolutions (ME work) with depth-wise convolutions and squeeze-excite
/// blocks (VE work), yielding the balanced ME/VE intensity ratio of Fig. 4.
pub fn efficientnet(batch: u64) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    ops.push(conv("enet.stem", batch, 3, 32, 112 * 112, 9));
    ops.push(elementwise("enet.stem.swish", batch * 32 * 112 * 112, 3));
    let blocks: [(u64, u64, u64, u64); 7] = [
        // (repeats, in_channels, out_channels, output_hw)
        (2, 32, 24, 112 * 112),
        (2, 24, 40, 56 * 56),
        (3, 40, 80, 28 * 28),
        (3, 80, 112, 14 * 14),
        (4, 112, 192, 14 * 14),
        (4, 192, 320, 7 * 7),
        (1, 320, 1280, 7 * 7),
    ];
    for (stage, (repeats, cin, cout, hw)) in blocks.iter().enumerate() {
        for rep in 0..*repeats {
            let name = |s: &str| format!("enet.s{stage}.b{rep}.{s}");
            let expanded = cin * 6;
            // Expansion point-wise conv (ME).
            ops.push(conv(name("expand"), batch, *cin, expanded, *hw, 1));
            // Depth-wise conv: low arithmetic intensity, runs on the VEs.
            ops.push(elementwise(name("dwconv"), batch * expanded * hw, 9));
            // Squeeze-and-excite: global pool + two tiny FCs + scale.
            ops.push(elementwise(name("se.pool"), batch * expanded * hw, 1));
            ops.push(matmul_act(
                name("se.fc1"),
                batch,
                expanded,
                expanded / 4,
                Activation::Sigmoid,
            ));
            ops.push(matmul_act(
                name("se.fc2"),
                batch,
                expanded / 4,
                expanded,
                Activation::Sigmoid,
            ));
            ops.push(elementwise(name("se.scale"), batch * expanded * hw, 1));
            // Projection point-wise conv (ME).
            ops.push(conv(name("project"), batch, expanded, *cout, *hw, 1));
            ops.push(elementwise(name("swish"), batch * cout * hw, 3));
        }
    }
    ops.push(matmul_act("enet.fc", batch, 1280, 1000, Activation::None));
    ops.push(softmax("enet.softmax", batch * 1000));
    ops
}

/// One ResNet bottleneck stage: `repeats` blocks of 1×1 / 3×3 / 1×1
/// convolutions with fused batch-norm + ReLU element-wise work.
fn resnet_stage(
    prefix: &str,
    batch: u64,
    repeats: u64,
    mid_channels: u64,
    out_channels: u64,
    output_hw: u64,
) -> Vec<TensorOperator> {
    let mut ops = Vec::new();
    for block in 0..repeats {
        let name = |s: &str| format!("{prefix}.b{block}.{s}");
        let in_channels = if block == 0 {
            out_channels / 2
        } else {
            out_channels
        };
        ops.push(conv(
            name("conv1x1a"),
            batch,
            in_channels,
            mid_channels,
            output_hw,
            1,
        ));
        ops.push(elementwise(
            name("bnrelu_a"),
            batch * mid_channels * output_hw,
            2,
        ));
        ops.push(conv(
            name("conv3x3"),
            batch,
            mid_channels,
            mid_channels,
            output_hw,
            9,
        ));
        ops.push(elementwise(
            name("bnrelu_b"),
            batch * mid_channels * output_hw,
            2,
        ));
        ops.push(conv(
            name("conv1x1b"),
            batch,
            mid_channels,
            out_channels,
            output_hw,
            1,
        ));
        ops.push(elementwise(
            name("residual"),
            batch * out_channels * output_hw,
            3,
        ));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuisa::compiler::{Compiler, CompilerOptions};
    use npu_sim::NpuConfig;

    fn me_ve(ops: &[TensorOperator]) -> (u64, u64) {
        let compiler = Compiler::new(&NpuConfig::tpu_v4_like(), CompilerOptions::default());
        let mut me = 0;
        let mut ve = 0;
        for op in ops {
            let c = compiler.cost_model().operator_cost(op);
            me += c.me_cycles.get();
            ve += c.ve_cycles.get();
        }
        (me, ve)
    }

    #[test]
    fn mnist_is_tiny() {
        let ops = mnist(8);
        assert_eq!(ops.len(), 4);
        let total_bytes: u64 = ops.iter().map(|o| o.hbm_bytes()).sum();
        assert!(total_bytes < 16 * 1024 * 1024);
    }

    #[test]
    fn resnet_is_me_dominated() {
        let (me, ve) = me_ve(&resnet(32));
        assert!(me > 4 * ve, "ResNet ME/VE ratio too low: {me}/{ve}");
    }

    #[test]
    fn resnet_rs_is_heavier_than_resnet() {
        let (me_rs, _) = me_ve(&resnet_rs(8));
        let (me, _) = me_ve(&resnet(8));
        assert!(me_rs > me);
    }

    #[test]
    fn efficientnet_is_balanced() {
        let (me, ve) = me_ve(&efficientnet(32));
        let ratio = me as f64 / ve.max(1) as f64;
        assert!(ratio > 0.2 && ratio < 20.0, "EfficientNet ratio {ratio}");
    }

    #[test]
    fn stage_block_counts_follow_resnet50() {
        // 3+4+6+3 bottleneck blocks of 6 operators each, plus the stem conv,
        // its batch-norm, average pooling, the FC layer and the softmax.
        let ops = resnet(8);
        assert_eq!(ops.len(), (3 + 4 + 6 + 3) * 6 + 5);
    }
}
