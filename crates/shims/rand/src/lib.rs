//! Minimal, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io. This shim implements exactly the surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over primitive ranges — on top of a splitmix64 /
//! xorshift64* generator. It is deterministic for a fixed seed, which is all
//! the simulation experiments require; it makes no cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample one uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                debug_assert!(start <= end, "empty inclusive range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, i64, i32);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64-seeded xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna); the non-zero state is guaranteed by seeding.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles the (possibly tiny) seed into a full word.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z.max(1) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u: usize = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
