//! Minimal, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched from crates.io. This shim supports the surface the
//! workspace benches use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and prints a plain
//! `name: median time/iter` line per benchmark. When invoked by `cargo test`
//! (libtest passes `--test`), every benchmark runs exactly once as a smoke
//! test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Mirrors the real API; arguments were already inspected in `default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size;
        run_benchmark(&id.into(), samples, self.test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(1));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, samples, self.criterion.test_mode, f);
        self
    }

    /// Closes the group (report output is per-benchmark in this shim).
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let samples = if test_mode { 1 } else { samples };
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            times.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times.get(times.len() / 2).copied().unwrap_or(0.0);
    if test_mode {
        println!("test {label} ... ok (1 iteration)");
    } else {
        println!("{label:<48} median {:>12} /iter", format_ns(median));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures; handed to every benchmark body.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up execution, then a small fixed batch per sample.
        black_box(routine());
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
