//! Minimal, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from crates.io. This shim keeps the same test-authoring
//! surface the workspace uses — the [`proptest!`] macro with `arg in strategy`
//! bindings, [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! `any::<T>()`, range strategies, tuple strategies and
//! [`collection::vec`] — and drives each property with a deterministic
//! pseudo-random sampler (no shrinking). Failures report the case number so
//! a run can be reproduced: the sampler is seeded from the test name alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property is checked against.
pub const NUM_CASES: u32 = 64;

/// Deterministic test-case sampler (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the sampler from an arbitrary byte string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            state ^= byte as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// The strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that checks the body against [`NUM_CASES`] sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..$crate::NUM_CASES {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        $crate::NUM_CASES,
                        message
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Discards the current case when its inputs fall outside the property's
/// assumed regime.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_give_values_in_bounds(x in 3usize..=9, f in 0.25f64..=0.75) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            items in crate::collection::vec((0usize..=6, any::<bool>()), 1..5)
        ) {
            prop_assert!(!items.is_empty() && items.len() < 5);
            for (value, _flag) in &items {
                prop_assert!(*value <= 6);
            }
        }

        #[test]
        fn assume_discards_cases(x in 0usize..=10) {
            prop_assume!(x >= 5);
            prop_assert!(x >= 5);
        }
    }

    #[test]
    fn sampler_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
