//! Shared harness utilities for the benchmark binaries that regenerate the
//! paper's tables and figures.
//!
//! Every binary in `src/bin/` prints one table or figure as plain-text rows
//! (series) so the output can be compared against the published plots. The
//! heavy lifting — running a collocation pair under all four sharing
//! policies — lives here so the per-figure binaries stay small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use neu10::{CollocationResult, CollocationSim, SharingPolicy, SimOptions, TenantSpec};
use npu_sim::NpuConfig;
use workloads::WorkloadPair;

/// Number of requests each tenant completes in the collocation experiments.
///
/// Override with the `NEU10_REQUESTS` environment variable; the default keeps
/// every harness under a few seconds while still reaching steady state.
pub fn target_requests() -> usize {
    std::env::var("NEU10_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(5)
}

/// Prints the Table II header every harness starts with, so each figure is
/// reproducible from its own output.
pub fn print_simulator_config(config: &NpuConfig) {
    println!("# NPU simulator configuration (Table II)");
    for (key, value) in config.table_ii_rows() {
        println!("#   {key:<26} {value}");
    }
    println!();
}

/// The results of one collocation pair under every sharing policy.
#[derive(Debug, Clone)]
pub struct PairSweep {
    /// The workload pair.
    pub pair: WorkloadPair,
    /// One result per policy.
    pub results: BTreeMap<&'static str, CollocationResult>,
}

impl PairSweep {
    /// The result for one policy.
    pub fn result(&self, policy: SharingPolicy) -> &CollocationResult {
        &self.results[policy.label()]
    }
}

/// Runs one collocation pair under every policy on `config`, with both
/// tenants owning 2 MEs + 2 VEs (the §V-A setup).
pub fn run_pair_all_policies(
    pair: WorkloadPair,
    config: &NpuConfig,
    requests: usize,
    record_timeline: bool,
) -> PairSweep {
    let mut results = BTreeMap::new();
    for policy in SharingPolicy::all() {
        results.insert(
            policy.label(),
            run_pair(pair, config, requests, policy, record_timeline),
        );
    }
    PairSweep { pair, results }
}

/// Runs one collocation pair under one policy.
pub fn run_pair(
    pair: WorkloadPair,
    config: &NpuConfig,
    requests: usize,
    policy: SharingPolicy,
    record_timeline: bool,
) -> CollocationResult {
    let mut options = SimOptions::new(policy);
    options.record_assignment_timeline = record_timeline;
    let tenants = vec![
        TenantSpec::evaluation(0, pair.first, requests),
        TenantSpec::evaluation(1, pair.second, requests),
    ];
    CollocationSim::new(config, options, tenants).run()
}

/// Formats a ratio series as a fixed-width row.
pub fn format_row(label: &str, values: &[f64]) -> String {
    let mut row = format!("{label:<16}");
    for value in values {
        row.push_str(&format!(" {value:>10.3}"));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{ContentionLevel, ModelId};

    #[test]
    fn pair_sweep_produces_all_four_policies() {
        let pair = WorkloadPair {
            first: ModelId::Mnist,
            second: ModelId::Ncf,
            contention: ContentionLevel::Low,
        };
        let sweep = run_pair_all_policies(pair, &NpuConfig::single_core(), 2, false);
        assert_eq!(sweep.results.len(), 4);
        for policy in SharingPolicy::all() {
            let result = sweep.result(policy);
            assert_eq!(result.tenants.len(), 2);
            assert!(result.tenants.iter().all(|t| t.completed_requests >= 2));
        }
    }

    #[test]
    fn format_row_aligns_values() {
        let row = format_row("Neu10", &[1.0, 2.5]);
        assert!(row.starts_with("Neu10"));
        assert!(row.contains("1.000"));
        assert!(row.contains("2.500"));
    }

    #[test]
    fn request_target_has_a_sane_default() {
        assert!(target_requests() >= 1);
    }
}
