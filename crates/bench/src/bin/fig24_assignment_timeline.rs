//! Fig. 24: the number of MEs and VEs assigned to each collocated workload
//! over time under Neu10's dynamic scheduling.

use bench::{print_simulator_config, run_pair, target_requests};
use neu10::SharingPolicy;
use npu_sim::{Cycles, NpuConfig};
use workloads::{collocation_pairs, ModelId};

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Fig. 24: MEs/VEs assigned to each workload over time (Neu10)");
    let wanted = [
        (ModelId::Dlrm, ModelId::RetinaNet),
        (ModelId::EfficientNet, ModelId::ShapeMask),
        (ModelId::ResNetRs, ModelId::RetinaNet),
    ];
    for pair in collocation_pairs()
        .into_iter()
        .filter(|p| wanted.contains(&(p.first, p.second)))
    {
        let result = run_pair(pair, &config, requests, SharingPolicy::Neu10, true);
        println!("\n== {} ==", pair.label());
        println!(
            "{:>14} {:>8} {:>8} {:>8} {:>8}",
            "time",
            format!("{} ME", pair.first.abbrev()),
            format!("{} ME", pair.second.abbrev()),
            format!("{} VE", pair.first.abbrev()),
            format!("{} VE", pair.second.abbrev())
        );
        let timeline = &result.assignment_timeline;
        let step = (timeline.len() / 48).max(1);
        for sample in timeline.iter().step_by(step) {
            println!(
                "{:>14} {:>8} {:>8} {:>8} {:>8}",
                config
                    .frequency
                    .cycles_to_time(Cycles(sample.at))
                    .to_string(),
                sample.mes[0],
                sample.mes[1],
                sample.ves[0],
                sample.ves[1]
            );
        }
        println!(
            "# samples recorded: {} (assignments change when a workload's operator mix shifts)",
            timeline.len()
        );
    }
}
