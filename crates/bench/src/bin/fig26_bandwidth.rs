//! Fig. 26: throughput improvement of Neu10 over V10 while varying the HBM
//! bandwidth (0.9, 1.2, 2 and 3 TB/s), including the memory-bandwidth
//! intensive pairs and the LLM collocation pairs.

use bench::{print_simulator_config, target_requests};
use neu10::{CollocationSim, SharingPolicy, SimOptions, TenantSpec, VnpuId};
use npu_sim::NpuConfig;
use workloads::{collocation_pairs, llm_pairs, memory_intensive_pairs, WorkloadPair};

const BANDWIDTHS_GBPS: [f64; 4] = [900.0, 1200.0, 2000.0, 3000.0];

fn pair_throughput(
    pair: WorkloadPair,
    config: &NpuConfig,
    policy: SharingPolicy,
    requests: usize,
) -> f64 {
    let tenants = vec![
        TenantSpec::evaluation(0, pair.first, requests),
        TenantSpec::evaluation(1, pair.second, requests),
    ];
    let result = CollocationSim::new(config, SimOptions::new(policy), tenants).run();
    result.throughput_rps(VnpuId(0), config) + result.throughput_rps(VnpuId(1), config)
}

fn main() {
    let base = NpuConfig::single_core();
    print_simulator_config(&base);
    let requests = target_requests();
    println!("# Fig. 26: Neu10 throughput normalized to V10 at each HBM bandwidth");
    print!("{:<16}", "pair");
    for bw in BANDWIDTHS_GBPS {
        print!(" {:>10}", format!("{:.1}TB/s", bw / 1000.0));
    }
    println!();

    let mut pairs = memory_intensive_pairs();
    pairs.extend(collocation_pairs());
    pairs.extend(llm_pairs());
    for pair in pairs {
        print!("{:<16}", pair.label());
        for bw in BANDWIDTHS_GBPS {
            let config = base.clone().with_hbm_bandwidth(bw * 1e9);
            let v10 = pair_throughput(pair, &config, SharingPolicy::V10, requests).max(1e-12);
            let neu10 = pair_throughput(pair, &config, SharingPolicy::Neu10, requests);
            print!(" {:>10.2}", neu10 / v10);
        }
        println!();
    }
    println!("\n# Memory-intensive pairs benefit more from Neu10 as bandwidth grows,");
    println!("# because higher bandwidth removes the memory contention and exposes");
    println!("# the engine-level flexibility of uTOp scheduling.");
}
