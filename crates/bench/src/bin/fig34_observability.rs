//! Fig. 34 (extension): fleet-wide observability of one serving run.
//!
//! Runs a deliberately eventful closed-loop scenario — an overloaded mixed
//! fleet under the target-tracking autoscaler, tight admission control,
//! drop-on-expiry deadlines and one scheduled live pre-copy migration — with
//! a [`TraceRecorder`] attached, and demonstrates the observability
//! contract end to end:
//!
//! * the exported Chrome `trace_event` JSON **parses and is structurally
//!   complete**: at least one complete span of every span kind the scenario
//!   exercises (`arrival`, `queue`, `serve`, `copy-round`, `stop-and-copy`),
//!   instants for rejects/expires/control actions/telemetry ticks, flow
//!   events stitching requests across boards, and fleet counter tracks;
//! * **observation never perturbs the simulation** — the observed report
//!   equals the unobserved one field for field;
//! * the export is **deterministic** — the same seed and config produce
//!   byte-identical JSON;
//! * the **registry is exact** even when the span ring is head-sampled —
//!   counters match the report, and trace memory stays bounded by the ring
//!   capacity however many arrivals flow through.
//!
//! The trace is written to `FIG34_trace.json` (override with
//! `NEU10_FIG34_TRACE`); open it at <https://ui.perfetto.dev>.

use autopilot::{Autopilot, AutoscalePolicy, ScalingSpec, TargetTracking};
use cluster::{
    estimated_service_cycles, AdmissionControl, ClusterServingSim, DeploySpec, DispatchPolicy,
    NpuCluster, PlacementPolicy, ServingOptions, ServingReport, TraceConfig, TraceRecorder,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{ClusterTrace, ModelId, PriorityClass, QosSpec};

const BOARDS: usize = 4;
const SEED: u64 = 3434;
const MAX_BATCH: usize = 4;

/// An overload-prone deadline-carrying trace: MNIST at ~8 arrivals per
/// service time against an initial capacity of ~5, so queues form, admission
/// control rejects, tight deadlines expire, and the autoscaler has real work.
fn trace(service: u64, requests: usize) -> ClusterTrace {
    let base = ClusterTrace::poisson(
        &[(ModelId::Mnist, service / 8), (ModelId::Ncf, service)],
        requests,
        SEED,
    );
    let arrivals = base
        .arrivals()
        .iter()
        .map(|arrival| {
            let mut arrival = *arrival;
            if arrival.model == ModelId::Mnist {
                let qos = if arrival.sequence % 2 == 0 {
                    QosSpec::new(Some(Cycles(service * 3)), PriorityClass::Interactive)
                } else {
                    QosSpec::new(Some(Cycles(service * 24)), PriorityClass::Batch)
                };
                arrival.deadline = qos
                    .deadline_slack
                    .map(|slack| Cycles(arrival.at.get() + slack.get()));
                arrival.priority = qos.priority;
            }
            arrival
        })
        .collect();
    ClusterTrace::from_arrivals(arrivals)
}

fn build_fleet(npu: &NpuConfig) -> NpuCluster {
    let mut fleet = NpuCluster::homogeneous(BOARDS, npu);
    for _ in 0..2 {
        fleet
            .deploy(
                DeploySpec::replica(ModelId::Mnist, 2, 2).with_memory(32 << 20, 1 << 30),
                PlacementPolicy::TopologyAware,
            )
            .expect("capacity for mnist replicas");
    }
    fleet
        .deploy(
            DeploySpec::replica(ModelId::Ncf, 1, 1),
            PlacementPolicy::WorstFit,
        )
        .expect("capacity for the ncf replica");
    fleet
}

fn scenario(
    npu: &NpuConfig,
    service: u64,
    requests: usize,
) -> (NpuCluster, ClusterTrace, ServingOptions, Autopilot) {
    let fleet = build_fleet(npu);
    let trace = trace(service, requests);
    let interval = service * 8;
    // Live-migrate the NCF replica: the autoscaler manages only MNIST, so a
    // scale-down can never cancel this migration mid-flight.
    let moved = *fleet
        .deployments()
        .find(|d| d.model == ModelId::Ncf)
        .expect("ncf deployment exists");
    // Migrate to an empty board (or failing that, any other board).
    let spare = (0..BOARDS as u32)
        .map(cluster::NodeId)
        .find(|node| fleet.node(*node).map(|n| n.manager().vnpu_count()) == Some(0))
        .unwrap_or(cluster::NodeId((moved.handle.node.0 + 1) % BOARDS as u32));
    let options = ServingOptions::new(DispatchPolicy::EarliestDeadline)
        .with_admission(AdmissionControl { max_queue_depth: 8 })
        .with_batching(MAX_BATCH)
        .with_batch_wait(service / 2)
        .with_drop_expired()
        .with_telemetry(interval)
        .with_live_migration(Cycles(service * 6), moved.handle, spare);
    let pilot = Autopilot::new().with_model(ScalingSpec::new(
        DeploySpec::replica(ModelId::Mnist, 2, 2).with_memory(32 << 20, 1 << 30),
        2,
        6,
        AutoscalePolicy::TargetTracking(TargetTracking::new(4.0, interval * 2)),
    ));
    (fleet, trace, options, pilot)
}

fn run_observed(
    npu: &NpuConfig,
    service: u64,
    requests: usize,
    config: TraceConfig,
) -> (ServingReport, TraceRecorder) {
    let (mut fleet, trace, options, mut pilot) = scenario(npu, service, requests);
    let mut recorder = TraceRecorder::new(config);
    let report = ClusterServingSim::new(options).run_observed_with_controller(
        &mut fleet,
        &trace,
        &mut pilot,
        &mut recorder,
    );
    (report, recorder)
}

fn main() {
    let npu = NpuConfig::single_core();
    bench::print_simulator_config(&npu);
    let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &npu);
    let requests = 40 * bench::target_requests();

    println!("# Fig. 34: fleet observability — trace spans, registry, Perfetto export");
    println!("# ({requests} requests/model, {BOARDS} boards, autoscaler 2..6, 1 live migration)");

    // 1. Observation does not perturb: observed == unobserved, field for field.
    let (mut fleet, trace, options, mut pilot) = scenario(&npu, service, requests);
    let unobserved =
        ClusterServingSim::new(options).run_with_controller(&mut fleet, &trace, &mut pilot);
    let (report, recorder) = run_observed(&npu, service, requests, TraceConfig::default());
    assert_eq!(
        report, unobserved,
        "attaching a TraceRecorder must not change the simulation"
    );

    // 2. The export parses and carries >=1 complete span of every kind the
    // scenario exercises, plus instants, flows and counter tracks.
    let json = recorder.export_chrome_trace();
    let validation = cluster::validate_chrome_trace(&json).expect("exported trace must parse");
    validation
        .require_complete_spans(&["arrival", "queue", "serve", "copy-round", "stop-and-copy"])
        .expect("every span kind must appear");
    for instant in ["tick", "scale-up"] {
        assert!(
            validation.instants.get(instant).copied().unwrap_or(0) > 0,
            "expected at least one {instant:?} instant"
        );
    }
    assert!(validation.flow_events > 0, "flow chains must be present");
    assert!(
        validation.counter_events > 0,
        "counter tracks must be present"
    );

    // 3. Determinism: the same seed + config exports byte-identical JSON.
    let (_, rerun) = run_observed(&npu, service, requests, TraceConfig::default());
    assert_eq!(
        json,
        rerun.export_chrome_trace(),
        "same seed + config must export byte-identical JSON"
    );

    // 4. The registry is exact: counters equal the report's own accounting.
    let metrics = recorder.metrics();
    assert_eq!(
        metrics.counter("serving.completed"),
        report.stats.completed as u64
    );
    assert_eq!(
        metrics.counter("serving.arrivals"),
        report.stats.offered as u64
    );
    assert_eq!(
        metrics.counter("serving.dispatched"),
        report.stats.admitted as u64
    );
    assert_eq!(
        metrics.counter("serving.rejected_overload"),
        report.stats.rejected_overload as u64
    );
    assert_eq!(
        metrics.counter("serving.expired"),
        report.deadline.dropped as u64
    );
    assert_eq!(
        metrics.counter("serving.deadline_missed"),
        report.deadline.missed as u64
    );

    // 5. Bounded memory: a small sampled ring retains at most `capacity`
    // events at any arrival count, while the registry stays exact.
    let small = TraceConfig::default()
        .with_capacity(512)
        .with_sample_rate(0.25)
        .with_seed(7);
    let (sampled_report, sampled) = run_observed(&npu, service, requests, small);
    assert_eq!(sampled_report, report, "sampling must not perturb either");
    assert!(sampled.len() <= 512, "ring exceeded its capacity");
    let stats = sampled.stats();
    assert_eq!(
        stats.sampled_requests + stats.skipped_requests,
        report.stats.offered as u64,
        "every arrival made a sampling decision"
    );
    assert_eq!(
        sampled.metrics().counter("serving.completed"),
        report.stats.completed as u64,
        "the registry is exact even when the ring samples"
    );

    let trace_path =
        std::env::var("NEU10_FIG34_TRACE").unwrap_or_else(|_| "FIG34_trace.json".to_string());
    std::fs::write(&trace_path, &json).unwrap_or_else(|err| {
        panic!("fig34_observability: cannot write trace to {trace_path:?}: {err}")
    });

    println!("{:<26} {:>10}", "metric", "value");
    for (name, value) in [
        ("trace events", validation.events as u64),
        ("flow events", validation.flow_events as u64),
        ("counter samples", validation.counter_events as u64),
        ("ring events (full)", recorder.len() as u64),
        ("ring events (512-cap)", sampled.len() as u64),
        ("overwritten (512-cap)", sampled.stats().overwritten),
        ("completed", report.stats.completed as u64),
        ("rejected (overload)", report.stats.rejected_overload as u64),
        ("expired drops", report.deadline.dropped as u64),
        ("scale-ups", report.control.scale_ups as u64),
        ("migrations recorded", report.migrations.len() as u64),
    ] {
        println!("{name:<26} {value:>10}");
    }
    for (name, count) in &validation.complete_spans {
        println!("span {name:<21} {count:>10}");
    }
    println!();
    println!(
        "# wrote {trace_path} ({} bytes) — open at https://ui.perfetto.dev; \
         observed == unobserved, rerun byte-identical, ring bounded at 512 with exact registry",
        json.len()
    );
}
