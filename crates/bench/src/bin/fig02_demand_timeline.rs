//! Fig. 2: the number of MEs and VEs demanded by DNN inference workloads over
//! time (batch size 8).

use bench::print_simulator_config;
use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

const MODELS: [ModelId; 6] = [
    ModelId::Bert,
    ModelId::Transformer,
    ModelId::Dlrm,
    ModelId::Ncf,
    ModelId::ResNet,
    ModelId::MaskRcnn,
];

fn main() {
    let config = NpuConfig::tpu_v4_like();
    print_simulator_config(&config);
    println!("# Fig. 2: demanded MEs/VEs over one inference request (batch 8)");
    for model in MODELS {
        let profile = WorkloadProfile::analyze(model, 8, &config);
        println!(
            "\n== {} (makespan {}) ==",
            model.name(),
            config.frequency.cycles_to_time(profile.makespan())
        );
        println!("{:>14} {:>8} {:>8}", "time", "MEs", "VEs");
        // Downsample to at most 40 rows so the series stays readable.
        let samples = profile.samples();
        let step = (samples.len() / 40).max(1);
        for sample in samples.iter().step_by(step) {
            println!(
                "{:>14} {:>8} {:>8}",
                config.frequency.cycles_to_time(sample.start).to_string(),
                sample.demanded_mes,
                sample.demanded_ves
            );
        }
    }
}
