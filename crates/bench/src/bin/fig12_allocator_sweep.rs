//! Fig. 12: vNPU allocation results for representative DNN models as the EU
//! budget grows from 2 to 16 — the allocator's selected (MEs, VEs) split and
//! its estimated normalized throughput, versus the best alternative split.

use neu10::{estimated_speedup, split_eus};
use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

fn main() {
    let config = NpuConfig::tpu_v4_like();
    println!("# Fig. 12: allocator-selected vNPU configurations per EU budget");
    let cases = [
        (ModelId::Bert, 32u64),
        (ModelId::ResNet, 32),
        (ModelId::EfficientNet, 32),
        (ModelId::ShapeMask, 8),
    ];
    for (model, batch) in cases {
        let profile = WorkloadProfile::analyze(model, batch, &config);
        let (m, v) = (profile.me_active_ratio(), profile.ve_active_ratio());
        println!(
            "\n== {} (batch size {batch}): m = {m:.3}, v = {v:.3} ==",
            model.name()
        );
        println!(
            "{:>6} {:>12} {:>14} {:>14} {:>16}",
            "EUs", "selected", "est. speedup", "best other", "other speedup"
        );
        for eus in 2..=16usize {
            let selected = split_eus(eus, m, v);
            let selected_speedup = estimated_speedup(m, v, selected.mes, selected.ves);
            // Exhaustive alternative: the best split the allocator did not pick.
            let mut best_other = None;
            for mes in 1..eus {
                let ves = eus - mes;
                if (mes, ves) == (selected.mes, selected.ves) {
                    continue;
                }
                let speedup = estimated_speedup(m, v, mes, ves);
                if best_other.map(|(_, s)| speedup > s).unwrap_or(true) {
                    best_other = Some(((mes, ves), speedup));
                }
            }
            let (other, other_speedup) = best_other.unwrap_or(((0, 0), 0.0));
            println!(
                "{:>6} {:>12} {:>14.2} {:>14} {:>16.2}",
                eus,
                format!("({},{})", selected.mes, selected.ves),
                selected_speedup,
                format!("({},{})", other.0, other.1),
                other_speedup
            );
        }
    }
    println!("\n# The selected configuration should match or closely track the best");
    println!("# alternative at every EU budget (§III-B cost-effectiveness analysis).");
}
