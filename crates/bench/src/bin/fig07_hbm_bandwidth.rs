//! Fig. 7: HBM bandwidth utilization over time for BERT and DLRM at batch
//! sizes 8 and 32.

use bench::print_simulator_config;
use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

fn main() {
    let config = NpuConfig::tpu_v4_like();
    print_simulator_config(&config);
    println!("# Fig. 7: HBM bandwidth over one inference request");
    for model in [ModelId::Bert, ModelId::Dlrm] {
        for batch in [8u64, 32] {
            let profile = WorkloadProfile::analyze(model, batch, &config);
            println!(
                "\n== {} (batch size = {batch}), average {:.2} GB/s ==",
                model.name(),
                profile.average_hbm_bandwidth(&config) / 1e9
            );
            println!("{:>14} {:>14}", "time", "HBM GB/s");
            let samples = profile.samples();
            let step = (samples.len() / 30).max(1);
            for sample in samples.iter().step_by(step) {
                println!(
                    "{:>14} {:>14.1}",
                    config.frequency.cycles_to_time(sample.start).to_string(),
                    sample.hbm_bandwidth(&config) / 1e9
                );
            }
        }
    }
    println!(
        "\n# Peak bandwidth approaches the hardware limit while the average stays\n\
         # far below it: collocation can use the spare bandwidth."
    );
}
