//! Fig. 5: ME and VE utilization over one inference request for
//! representative DNN models (solo run on a full core, batch 8).

use bench::print_simulator_config;
use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

const MODELS: [ModelId; 6] = [
    ModelId::Bert,
    ModelId::Transformer,
    ModelId::Dlrm,
    ModelId::Ncf,
    ModelId::ResNet,
    ModelId::MaskRcnn,
];

fn main() {
    let config = NpuConfig::tpu_v4_like();
    print_simulator_config(&config);
    println!("# Fig. 5: ME/VE utilization over one inference request (batch 8)");
    for model in MODELS {
        let profile = WorkloadProfile::analyze(model, 8, &config);
        println!(
            "\n== {} (avg ME util {:.1}%, avg VE util {:.1}%) ==",
            model.name(),
            profile.average_me_utilization(config.mes_per_core) * 100.0,
            profile.average_ve_utilization(config.ves_per_core) * 100.0
        );
        println!("{:>14} {:>10} {:>10}", "time", "ME util", "VE util");
        let samples = profile.samples();
        let step = (samples.len() / 40).max(1);
        for sample in samples.iter().step_by(step) {
            println!(
                "{:>14} {:>9.1}% {:>9.1}%",
                config.frequency.cycles_to_time(sample.start).to_string(),
                sample.me_utilization(config.mes_per_core) * 100.0,
                sample.ve_utilization(config.ves_per_core) * 100.0
            );
        }
    }
}
