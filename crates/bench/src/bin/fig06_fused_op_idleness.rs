//! Fig. 6: VE underutilization inside an ME-intensive fused operator
//! (matrix multiplication fused with a ReLU activation).
//!
//! Each `pop` takes 8 ME cycles to produce an 8×128 output vector while the
//! matching ReLU takes a single VE cycle, so the VE is idle most of the time.

use neuisa::compiler::{Compiler, CompilerOptions};
use neuisa::{Activation, OperatorKind, TensorOperator};
use npu_sim::{MatrixEngine, NpuConfig, VectorEngine};

fn main() {
    let config = NpuConfig::tpu_v4_like();
    let me = MatrixEngine::new(config.me_dimension);
    let ve = VectorEngine::new(config.ve_rows, config.ve_lanes);

    println!("# Fig. 6: ME vs VE occupancy in a fused MatMul+ReLU operator");
    let pop = me.pop_cycles(8);
    let relu = ve.elementwise_cycles(8 * 128);
    println!("per 8x128 output vector: pop = {pop}, relu = {relu}");
    println!(
        "VE idle fraction while the ME streams results: {:.1}%",
        (1.0 - relu.get() as f64 / pop.get() as f64) * 100.0
    );

    let compiler = Compiler::new(&config, CompilerOptions::default());
    let op = TensorOperator::new(
        "fused_matmul_relu",
        OperatorKind::MatMul {
            m: 1024,
            k: 1024,
            n: 1024,
        },
    )
    .with_activation(Activation::Relu);
    let compiled = compiler.compile_operator(&op);
    let me_cycles = compiled.cost.me_cycles.get();
    let ve_cycles = compiled.cost.ve_cycles.get();
    println!("\nwhole operator ({}):", op);
    println!("  total ME work          {me_cycles} cycles");
    println!("  total VE work          {ve_cycles} cycles");
    println!(
        "  VE utilization while the operator runs on 4 MEs / 4 VEs: {:.1}%",
        100.0 * (ve_cycles as f64 / config.ves_per_core as f64)
            / (me_cycles as f64 / config.mes_per_core as f64)
    );
    println!(
        "  -> the VE slots of this operator's uTOps cannot keep the VEs busy,\n     which is the harvesting opportunity Neu10 exploits."
    );
}
