//! Fig. 4: the ME/VE intensity ratio (execution-time ratio of ME work to VE
//! work) of every model across batch sizes.

use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

const BATCHES: [u64; 8] = [1, 8, 32, 64, 128, 256, 512, 1024];

fn main() {
    let config = NpuConfig::tpu_v4_like();
    println!("# Fig. 4: ME/VE intensity ratio per model and batch size");
    print!("{:<16}", "model");
    for batch in BATCHES {
        print!(" {batch:>9}");
    }
    println!();
    for model in ModelId::table_i() {
        print!("{:<16}", model.name());
        for batch in BATCHES {
            // Detection / segmentation models do not fit large batches on a
            // single core (the paper omits them as well).
            let skip_large = matches!(
                model,
                ModelId::MaskRcnn | ModelId::ShapeMask | ModelId::RetinaNet
            ) && batch > 256;
            if skip_large {
                print!(" {:>9}", "-");
                continue;
            }
            let profile = WorkloadProfile::analyze(model, batch, &config);
            print!(" {:>9.3}", profile.intensity_ratio());
        }
        println!();
    }
    println!("\n# Ratios > 1 are ME-intensive (convolution/attention models);");
    println!("# ratios < 1 are VE/memory-intensive (recommendation models).");
}
