//! Fig. 9: the VLIW-style ISA couples the control flow of the MEs it was
//! compiled for, so a program can neither run on fewer MEs nor exploit more —
//! which leaves MEs idle that NeuISA µTOps could use.

use neuisa::compiler::{Compiler, CompilerOptions};
use neuisa::{OperatorKind, TensorOperator};
use npu_sim::NpuConfig;

fn main() {
    let config = NpuConfig::tpu_v4_like();
    println!("# Fig. 9: VLIW static coupling vs NeuISA dynamic scheduling");

    // A DNN operator compiled for a 2-ME vNPU with the classic VLIW ISA.
    let compiler = Compiler::new(
        &config,
        CompilerOptions {
            vliw_target_mes: Some(2),
            ..CompilerOptions::default()
        },
    );
    let op = TensorOperator::new(
        "dnn0.matmul",
        OperatorKind::MatMul {
            m: 2048,
            k: 1024,
            n: 1024,
        },
    );
    let vliw = compiler.compile_vliw(&op);
    println!(
        "\nVLIW program '{}' compiled for {} MEs:",
        vliw.name, vliw.mes_used
    );
    for available in 1..=4usize {
        println!(
            "  {available} ME(s) available -> can run: {:<5} occupies: {} ME(s)",
            vliw.program.can_run_on(available),
            vliw.program.mes_occupied(available)
        );
    }
    println!("  -> with 1 free ME the program stalls; with 4 free MEs two stay idle.");

    // The same operator compiled to NeuISA scales to whatever is free.
    let neuisa_compiler = Compiler::new(&config, CompilerOptions::default());
    let compiled = neuisa_compiler.compile_operator(&op);
    let utops = compiled.plan.me_utops;
    println!("\nNeuISA compilation of the same operator: {utops} independent ME uTOps");
    for available in 1..=4usize {
        let used = utops.min(available);
        let per_me = compiled.cost.me_cycles.get() / used.max(1) as u64;
        println!("  {available} ME(s) available -> uses {used} ME(s), ~{per_me} cycles per ME");
    }
    println!("  -> the hardware decides at runtime how many uTOps to dispatch (Fig. 13).");
}
