//! Fig. 31 (extension): the live-migration downtime frontier.
//!
//! Sweeps **dirty rate × link bandwidth × queue load** over one loaded
//! replica migrating to a spare board, comparing [`MigrationMode::Cold`]
//! (drain → full-state dark window → resume) against
//! [`MigrationMode::PreCopy`] (iterative copy rounds while serving, then a
//! residual stop-and-copy):
//!
//! * **dirty rate** — a read-mostly tenant (weights dominate, ~2% of HBM
//!   traffic writes resident state) vs a write-heavy one (KV-cache-class,
//!   ~45%), through the cost model's [`DirtyRateModel`];
//! * **link bandwidth** — TPUv4 ICI (50 GB/s), RDMA-100G (12.5 GB/s) and a
//!   slow 2 GB/s path where the dirty rate can outrun the copy loop;
//! * **queue load** — a lightly and a heavily loaded source replica (load
//!   drives how much state the served requests re-dirty per round).
//!
//! Output columns: profile, link, load, mode, downtime (cycles), copy rounds,
//! MiB streamed while serving, completed requests, p99. The run asserts the
//! claims the figure exists to make: on a read-mostly workload pre-copy
//! downtime is **≥10× below cold at matched throughput** on every link; when
//! the dirty rate outruns the slow link the loop detects non-convergence and
//! **falls back gracefully** to a cold-sized stop-and-copy (nothing lost);
//! and the same seed reproduces identical reports, `MigrationStats`
//! included.

use cluster::{
    estimated_batch_service_cycles, ClusterServingSim, DeploySpec, DirtyRateModel, DispatchPolicy,
    MigrationCostModel, MigrationMode, NodeId, NpuCluster, PlacementPolicy, PreCopyConfig,
    ServingOptions, ServingReport,
};
use npu_sim::{Cycles, InterconnectConfig, NpuConfig};
use workloads::{ClusterTrace, ModelId};

const MODEL: ModelId = ModelId::Mnist;
const REPLICA_MES: usize = 2;
const REPLICA_VES: usize = 2;
const REPLICA_SRAM: u64 = 32 << 20;
const REPLICA_HBM: u64 = 2 << 30;
const MAX_BATCH: usize = 4;
const SEED: u64 = 3131;

struct DirtyProfile {
    name: &'static str,
    write_fraction: f64,
}

struct Link {
    name: &'static str,
    interconnect: InterconnectConfig,
}

fn links() -> Vec<Link> {
    vec![
        Link {
            name: "ici-50GBps",
            interconnect: InterconnectConfig::tpu_v4_ici(),
        },
        Link {
            name: "rdma-12.5GBps",
            interconnect: InterconnectConfig::rdma_100g(),
        },
        Link {
            name: "slow-2GBps",
            interconnect: InterconnectConfig::tpu_v4_ici().with_bandwidth(2.0e9),
        },
    ]
}

fn dirty_profiles() -> Vec<DirtyProfile> {
    vec![
        DirtyProfile {
            name: "read-mostly",
            write_fraction: 0.02,
        },
        DirtyProfile {
            name: "write-heavy",
            write_fraction: 0.45,
        },
    ]
}

fn cost_model(link: &Link, profile: &DirtyProfile) -> MigrationCostModel {
    MigrationCostModel::default()
        .with_interconnect(link.interconnect.clone())
        .with_precopy(
            PreCopyConfig::default().with_dirty_rate(
                DirtyRateModel::default().with_write_fraction(profile.write_fraction),
            ),
        )
}

/// One migration cell: a loaded replica on one board, a spare board, the
/// migration triggered once the queue has formed.
fn run_cell(
    mode: MigrationMode,
    link: &Link,
    profile: &DirtyProfile,
    load: f64,
    arrivals: usize,
    npu: &NpuConfig,
) -> ServingReport {
    let mut fleet = NpuCluster::homogeneous(2, npu);
    let handle = fleet
        .deploy(
            DeploySpec::replica(MODEL, REPLICA_MES, REPLICA_VES)
                .with_memory(REPLICA_SRAM, REPLICA_HBM),
            PlacementPolicy::BestFit,
        )
        .expect("capacity for the migrating replica");
    let spare = NodeId(if handle.node.0 == 0 { 1 } else { 0 });

    let effective = estimated_batch_service_cycles(MODEL, MAX_BATCH, REPLICA_MES, REPLICA_VES, npu)
        as f64
        / MAX_BATCH as f64;
    let mean_gap = (effective / load).max(1.0) as u64;
    let trace = ClusterTrace::poisson(&[(MODEL, mean_gap)], arrivals, SEED);
    // Trigger once the stream is established; the window spans many rounds.
    let at = Cycles(mean_gap * (arrivals as u64 / 8).max(1));

    let mut options = ServingOptions::new(DispatchPolicy::LeastLoaded)
        .with_batching(MAX_BATCH)
        .with_admission(cluster::AdmissionControl {
            max_queue_depth: 100_000,
        })
        .with_cost_model(cost_model(link, profile));
    options = match mode {
        MigrationMode::Cold => options.with_migration(at, handle, spare),
        MigrationMode::PreCopy => options.with_live_migration(at, handle, spare),
    };
    ClusterServingSim::new(options).run(&mut fleet, &trace)
}

fn print_row(
    profile: &DirtyProfile,
    link: &Link,
    load: f64,
    mode: MigrationMode,
    report: &ServingReport,
) {
    let record = &report.migrations[0];
    println!(
        "{:<12} {:<14} {:>4.2} {:<9} {:>13} {:>7} {:>12.1} {:>10} {:>12} {:>10}",
        profile.name,
        link.name,
        load,
        mode.label(),
        record.downtime().get(),
        record.precopy_rounds,
        record.precopy_bytes as f64 / (1 << 20) as f64,
        report.stats.completed,
        report.latency.p99,
        if record.converged {
            "converged"
        } else {
            "fallback"
        },
    );
}

fn main() {
    let npu = NpuConfig::single_core();
    bench::print_simulator_config(&npu);
    let arrivals = 120 * bench::target_requests();

    println!("# Fig. 31: live pre-copy vs cold migration — the downtime frontier");
    println!(
        "# (1 migrating {MODEL:?} replica @ {REPLICA_MES}ME+{REPLICA_VES}VE, {} GiB resident state, batch {MAX_BATCH}, {arrivals} arrivals)",
        REPLICA_HBM >> 30
    );
    println!(
        "{:<12} {:<14} {:>4} {:<9} {:>13} {:>7} {:>12} {:>10} {:>12} {:>10}",
        "dirty",
        "link",
        "load",
        "mode",
        "downtime_cyc",
        "rounds",
        "precopy_MiB",
        "completed",
        "p99",
        "outcome"
    );

    let mut read_mostly_checked = 0usize;
    for profile in dirty_profiles() {
        for link in links() {
            for load in [0.35, 0.8] {
                let cold = run_cell(MigrationMode::Cold, &link, &profile, load, arrivals, &npu);
                let live = run_cell(
                    MigrationMode::PreCopy,
                    &link,
                    &profile,
                    load,
                    arrivals,
                    &npu,
                );
                assert_eq!(cold.migrations.len(), 1, "the cold migration executed");
                assert_eq!(live.migrations.len(), 1, "the live migration executed");
                print_row(&profile, &link, load, MigrationMode::Cold, &cold);
                print_row(&profile, &link, load, MigrationMode::PreCopy, &live);

                let cold_downtime = cold.migrations[0].downtime().get();
                let live_downtime = live.migrations[0].downtime().get();
                // Matched throughput: both modes complete the whole stream.
                assert_eq!(
                    cold.stats.completed, live.stats.completed,
                    "{} {} {load}: both modes must serve the full stream",
                    profile.name, link.name
                );
                if profile.name == "read-mostly" {
                    // The figure's headline: pre-copy cuts the dark window at
                    // least an order of magnitude on read-mostly tenants.
                    assert!(
                        live_downtime * 10 <= cold_downtime,
                        "{} {} {load}: pre-copy must be >=10x below cold ({live_downtime} vs {cold_downtime})",
                        profile.name,
                        link.name
                    );
                    assert!(live.migrations[0].converged);
                    read_mostly_checked += 1;
                }
            }
        }
    }
    assert!(
        read_mostly_checked >= 6,
        "every read-mostly cell must clear the 10x bar"
    );

    // The non-convergence corner needs its own sizing: the dirty rate only
    // outruns the link while traffic keeps flowing, so the trace must span
    // the full-state copy round. A write-heavy tenant at 0.8 load dirties
    // ~5x what the 2 GB/s link drains per cycle — the copy loop cannot
    // converge and must fall back to a cold-sized stop-and-copy.
    let slow = &links()[2];
    let heavy = &dirty_profiles()[1];
    let fallback_arrivals = 20_000;
    let cold = run_cell(
        MigrationMode::Cold,
        slow,
        heavy,
        0.8,
        fallback_arrivals,
        &npu,
    );
    let live = run_cell(
        MigrationMode::PreCopy,
        slow,
        heavy,
        0.8,
        fallback_arrivals,
        &npu,
    );
    print_row(heavy, slow, 0.8, MigrationMode::Cold, &cold);
    print_row(heavy, slow, 0.8, MigrationMode::PreCopy, &live);
    assert!(
        !live.migrations[0].converged,
        "the sustained write-heavy stream must outrun the slow link"
    );
    assert_eq!(live.migration_stats.precopy_fallbacks, 1);
    assert_eq!(
        live.stats.completed, live.stats.admitted,
        "the fallback loses nothing"
    );
    // Graceful: the fallback stop-and-copy stays in the cold ballpark
    // instead of looping forever.
    let live_downtime = live.migrations[0].downtime().get();
    let cold_downtime = cold.migrations[0].downtime().get();
    assert!(
        live_downtime <= cold_downtime * 2,
        "fallback downtime must stay cold-sized ({live_downtime} vs {cold_downtime})"
    );

    // Determinism: the sweep's claims reproduce bit-for-bit from the seed,
    // MigrationStats included.
    let profile = &dirty_profiles()[0];
    let link = &links()[0];
    let first = run_cell(MigrationMode::PreCopy, link, profile, 0.8, arrivals, &npu);
    let second = run_cell(MigrationMode::PreCopy, link, profile, 0.8, arrivals, &npu);
    assert_eq!(
        first, second,
        "the same seed must reproduce an identical report"
    );
    assert_eq!(first.migration_stats, second.migration_stats);
    println!();
    println!(
        "# read-mostly pre-copy beat cold >=10x in {read_mostly_checked}/{read_mostly_checked} cells; \
         sustained write-heavy over the slow link fell back to cold gracefully; rerun identical (deterministic)"
    );
}
