//! Fig. 33 (extension): availability under chaos — fault rate x spare margin
//! x recovery policy.
//!
//! Runs one MNIST serving fleet against seeded fault schedules of increasing
//! intensity (board crashes, transient hangs, link degradation, stragglers,
//! telemetry dropouts) under four operating points:
//!
//! * **no-recovery** — faults land, nothing detects them: requests marooned
//!   on a dead board are *lost* (attributed, never silent);
//! * **failover** — missed-telemetry-frame detection fences the board,
//!   re-places its replicas through the placement engine and re-dispatches
//!   the orphans;
//! * **failover + N+1 / N+2** — the autopilot keeps one or two spare
//!   replicas above the floor, so the fleet rides through the
//!   detect-and-restore gap with headroom.
//!
//! The harness asserts the availability contract end to end: at the baseline
//! fault rate the N+k + failover cell sustains >= 99.9% availability, the
//! no-recovery cells provably lose requests, every cell conserves requests
//! (admitted = completed + dropped + lost), and the whole frontier is
//! deterministic — the same seed reproduces every report bit for bit.

use autopilot::{Autopilot, AutoscalePolicy, ScalingSpec, TargetTracking};
use cluster::{
    estimated_service_cycles, ClusterServingSim, DeploySpec, DispatchPolicy, FaultProfile,
    FaultSchedule, NpuCluster, PlacementPolicy, RecoveryPolicy, ServingOptions, ServingReport,
    StochasticService,
};
use npu_sim::NpuConfig;
use workloads::{ClusterTrace, ModelId};

const BOARDS: usize = 6;
const REPLICAS: usize = 6;
const SEED: u64 = 3333;
const MAX_BATCH: usize = 4;
/// Consecutive missed telemetry frames before a board is declared dead.
const MISSED_FRAMES: u32 = 3;
/// Telemetry cadence, in multiples of the mean service time.
const TICK_SERVICES: u64 = 10;
/// Availability objective the frontier is read against.
const OBJECTIVE: f64 = 0.999;

/// One recovery operating point of the frontier.
#[derive(Clone, Copy)]
enum Policy {
    NoRecovery,
    Failover,
    /// Failover plus an autopilot holding `k` spares above the floor.
    SpareMargin(usize),
}

impl Policy {
    fn label(&self) -> String {
        match self {
            Policy::NoRecovery => "no-recovery".into(),
            Policy::Failover => "failover".into(),
            Policy::SpareMargin(k) => format!("failover+N+{k}"),
        }
    }
}

/// The chaos mix at one fault-rate step: `rate` faults of every kind.
fn profile(rate: usize, service: u64) -> FaultProfile {
    FaultProfile {
        crashes: rate,
        hangs: rate,
        hang_cycles: service * 40,
        link_degrades: rate,
        link_factor: 6.0,
        link_cycles: service * 50,
        stragglers: rate,
        straggle_factor: 3.0,
        straggle_cycles: service * 40,
        dropouts: rate,
        dropout_cycles: service * 15,
    }
}

fn spec() -> DeploySpec {
    DeploySpec::replica(ModelId::Mnist, 2, 2).with_memory(32 << 20, 1 << 30)
}

fn run(rate: usize, policy: Policy, service: u64, trace: &ClusterTrace) -> ServingReport {
    let mut fleet = NpuCluster::homogeneous(BOARDS, &NpuConfig::single_core());
    for _ in 0..REPLICAS {
        fleet
            .deploy(spec(), PlacementPolicy::WorstFit)
            .expect("capacity for the mnist replicas");
    }
    // Faults land in the first 70% of the trace, so a dead board always has
    // live traffic left to strand — the frontier measures recovery, not luck.
    let horizon = (trace
        .arrivals()
        .last()
        .map(|arrival| arrival.at.get())
        .unwrap_or(0)
        * 7
        / 10)
        .max(service * 20);
    let faults = FaultSchedule::generate(SEED, horizon, BOARDS as u32, &profile(rate, service));
    let mut options = ServingOptions::new(DispatchPolicy::RoundRobin)
        .with_batching(MAX_BATCH)
        .with_stochastic(StochasticService::seeded(SEED).with_cv(0.2))
        .with_telemetry(service * TICK_SERVICES)
        .with_faults(faults);
    if !matches!(policy, Policy::NoRecovery) {
        options = options.with_recovery(RecoveryPolicy::new(MISSED_FRAMES));
    }
    match policy {
        Policy::SpareMargin(k) => {
            // The demand policy is tuned quiet (huge target) so the spare
            // margin is the only thing adding replicas above the floor.
            let mut pilot = Autopilot::new()
                .with_model(ScalingSpec::new(
                    spec(),
                    REPLICAS,
                    REPLICAS + 3,
                    AutoscalePolicy::TargetTracking(TargetTracking::new(1.0e6, 0)),
                ))
                .with_spare_margin(k);
            ClusterServingSim::new(options).run_with_controller(&mut fleet, trace, &mut pilot)
        }
        _ => ClusterServingSim::new(options).run(&mut fleet, trace),
    }
}

fn main() {
    let npu = NpuConfig::single_core();
    bench::print_simulator_config(&npu);
    let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &npu);
    // Load and horizon scale with NEU10_REQUESTS so CI smoke runs stay fast.
    let count = 60 * bench::target_requests();
    let trace = ClusterTrace::poisson(&[(ModelId::Mnist, service / 2)], count, SEED);

    println!("# Fig. 33: availability under chaos — fault rate x spare margin x recovery");
    println!(
        "# ({REPLICAS} replicas on {BOARDS} boards, batch {MAX_BATCH}, telemetry every \
         {TICK_SERVICES}x service, declare-dead after {MISSED_FRAMES} missed frames)"
    );
    println!(
        "{:<6} {:<14} {:>9} {:>7} {:>9} {:>9} {:>6} {:>12} {:>13} {:>13}",
        "rate",
        "policy",
        "admitted",
        "faults",
        "failovers",
        "restored",
        "lost",
        "availability",
        "detect-cycles",
        "restore-cycles"
    );

    let mut baseline_spare_available = None;
    let mut unprotected_lost = 0u64;
    for rate in 1..=3usize {
        for policy in [
            Policy::NoRecovery,
            Policy::Failover,
            Policy::SpareMargin(1),
            Policy::SpareMargin(2),
        ] {
            let report = run(rate, policy, service, &trace);
            let avail = &report.availability;
            assert_eq!(
                report.stats.admitted,
                report.stats.completed + report.deadline.dropped + avail.lost as usize,
                "{} rate {rate}: conservation must hold (admitted = completed + dropped + lost)",
                policy.label()
            );
            println!(
                "{:<6} {:<14} {:>9} {:>7} {:>9} {:>9} {:>6} {:>11.4}% {:>13.0} {:>13.0}",
                rate,
                policy.label(),
                report.stats.admitted,
                avail.injected(),
                avail.failovers,
                avail.replicas_restored,
                avail.lost,
                avail.availability() * 100.0,
                avail.mean_detect_cycles(),
                avail.mean_restore_cycles(),
            );
            if matches!(policy, Policy::NoRecovery) {
                unprotected_lost += avail.lost;
            }
            if rate == 1 && matches!(policy, Policy::SpareMargin(1)) {
                baseline_spare_available = Some(avail.availability());
            }
        }
    }

    assert!(
        unprotected_lost > 0,
        "the no-recovery cells must provably lose requests (a dead board strands its queue)"
    );
    let spare_availability = baseline_spare_available.expect("baseline N+1 cell ran");
    assert!(
        spare_availability >= OBJECTIVE,
        "failover + N+1 must sustain >= {:.1}% availability at the baseline fault rate \
         (got {:.4}%)",
        OBJECTIVE * 100.0,
        spare_availability * 100.0
    );

    // Determinism: the same seed reproduces the harshest cell bit for bit.
    let first = run(3, Policy::SpareMargin(2), service, &trace);
    let second = run(3, Policy::SpareMargin(2), service, &trace);
    assert_eq!(
        first, second,
        "the same fault schedule must replay to an identical report"
    );

    println!();
    println!(
        "# no-recovery loses {unprotected_lost} requests across the frontier; failover + N+1 \
         sustains {:.4}% availability at the baseline rate; reruns bit-identical",
        spare_availability * 100.0
    );
}
