//! Table III: the harvesting overhead of each workload — how much time a
//! workload is blocked (waiting to reclaim its harvested engines) relative to
//! its end-to-end execution time.

use bench::{print_simulator_config, run_pair, target_requests};
use neu10::SharingPolicy;
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Table III: harvesting overhead (blocked time / end-to-end time)");
    println!("{:<16} {:>10} {:>10}", "pair (W1+W2)", "W1", "W2");
    for pair in collocation_pairs() {
        let result = run_pair(pair, &config, requests, SharingPolicy::Neu10, false);
        let overhead = |i: usize| {
            let fraction = result.tenants[i].harvest_overhead_fraction(result.makespan);
            if fraction < 0.0001 {
                "<0.01%".to_string()
            } else {
                format!("{:.2}%", fraction * 100.0)
            }
        };
        println!(
            "{:<16} {:>10} {:>10}",
            pair.label(),
            overhead(0),
            overhead(1)
        );
    }
    println!("\n# For all workloads the overhead of being harvested stays small and is");
    println!("# outweighed by the benefit of harvesting (Fig. 23).");
}
