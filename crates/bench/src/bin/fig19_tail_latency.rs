//! Fig. 19: 95th-percentile tail latency of the nine collocated workload
//! pairs under PMT, V10, Neu10-NH and Neu10, normalized to PMT.

use bench::{print_simulator_config, run_pair_all_policies, target_requests};
use neu10::SharingPolicy;
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Fig. 19: normalized 95th-percentile latency (lower is better, PMT = 1.0)");
    println!(
        "{:<14} {:<10} {:>12} {:>12}",
        "pair", "policy", "W1 p95", "W2 p95"
    );
    for pair in collocation_pairs() {
        let sweep = run_pair_all_policies(pair, &config, requests, false);
        let baseline = sweep.result(SharingPolicy::Pmt);
        let base = [
            baseline.tenants[0].latency_summary().p95 as f64,
            baseline.tenants[1].latency_summary().p95 as f64,
        ];
        for policy in SharingPolicy::all() {
            let result = sweep.result(policy);
            println!(
                "{:<14} {:<10} {:>12.3} {:>12.3}",
                pair.label(),
                policy.label(),
                result.tenants[0].latency_summary().p95 as f64 / base[0].max(1.0),
                result.tenants[1].latency_summary().p95 as f64 / base[1].max(1.0),
            );
        }
        println!();
    }
}
