//! Fig. 16: performance overhead of NeuISA over the traditional VLIW-style
//! ISA for each workload and batch size (solo execution on a full core).

use neuisa::compiler::{Compiler, CompilerOptions};
use npu_sim::NpuConfig;
use workloads::{InferenceGraph, ModelId};

const BATCHES: [u64; 8] = [1, 8, 32, 64, 128, 256, 512, 1024];

fn main() {
    let config = NpuConfig::tpu_v4_like();
    let compiler = Compiler::new(&config, CompilerOptions::default());
    println!("# Fig. 16: NeuISA overhead vs the traditional VLIW ISA (percent)");
    print!("{:<16}", "model");
    for batch in BATCHES {
        print!(" {batch:>8}");
    }
    println!();
    for model in ModelId::table_i() {
        print!("{:<16}", model.name());
        for batch in BATCHES {
            let skip_large = matches!(
                model,
                ModelId::MaskRcnn | ModelId::ShapeMask | ModelId::RetinaNet
            ) && batch > 256;
            if skip_large {
                print!(" {:>8}", "-");
                continue;
            }
            let graph = InferenceGraph::build(model, batch);
            let overhead = compiler.neuisa_overhead(graph.operators());
            print!(" {:>7.2}%", overhead * 100.0);
        }
        println!();
    }
    println!("\n# The overhead comes from reduction-dimension splits whose partial sums");
    println!("# must be summed in a separate VE uTOp; it shrinks as the batch grows.");
}
