//! Fig. 22: total ME and VE utilization of the NPU core for each collocated
//! workload pair under each sharing policy.

use bench::{print_simulator_config, run_pair_all_policies, target_requests};
use neu10::SharingPolicy;
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Fig. 22: total ME / VE utilization of the core (percent)");
    println!(
        "{:<14} {:<10} {:>10} {:>10}",
        "pair", "policy", "ME util", "VE util"
    );
    let mut me_by_policy = vec![0.0f64; SharingPolicy::all().len()];
    let mut ve_by_policy = vec![0.0f64; SharingPolicy::all().len()];
    let pairs = collocation_pairs();
    for pair in &pairs {
        let sweep = run_pair_all_policies(*pair, &config, requests, false);
        for (i, policy) in SharingPolicy::all().into_iter().enumerate() {
            let result = sweep.result(policy);
            me_by_policy[i] += result.me_utilization;
            ve_by_policy[i] += result.ve_utilization;
            println!(
                "{:<14} {:<10} {:>9.1}% {:>9.1}%",
                pair.label(),
                policy.label(),
                result.me_utilization * 100.0,
                result.ve_utilization * 100.0
            );
        }
        println!();
    }
    println!("# Averages across all nine pairs:");
    for (i, policy) in SharingPolicy::all().into_iter().enumerate() {
        println!(
            "{:<14} {:<10} {:>9.1}% {:>9.1}%",
            "average",
            policy.label(),
            me_by_policy[i] / pairs.len() as f64 * 100.0,
            ve_by_policy[i] / pairs.len() as f64 * 100.0
        );
    }
}
