//! Fig. 3: the number of MEs and VEs demanded over time with a larger batch
//! size (BERT and DLRM, batch 32).

use bench::print_simulator_config;
use npu_sim::NpuConfig;
use workloads::{ModelId, WorkloadProfile};

fn main() {
    let config = NpuConfig::tpu_v4_like();
    print_simulator_config(&config);
    println!("# Fig. 3: demanded MEs/VEs over one inference request (batch 32)");
    for model in [ModelId::Bert, ModelId::Dlrm] {
        let profile = WorkloadProfile::analyze(model, 32, &config);
        println!("\n== {} (batch size = 32) ==", model.name());
        println!("{:>14} {:>8} {:>8}", "time", "MEs", "VEs");
        let samples = profile.samples();
        let step = (samples.len() / 40).max(1);
        for sample in samples.iter().step_by(step) {
            println!(
                "{:>14} {:>8} {:>8}",
                config.frequency.cycles_to_time(sample.start).to_string(),
                sample.demanded_mes,
                sample.demanded_ves
            );
        }
    }
}
