//! Fig. 27: collocating a memory-bandwidth-intensive LLM (LLaMA-2-13B, batch
//! 8, input sequence 512) with compute-intensive models: per-workload
//! throughput (normalized to V10) and the core's ME/VE utilization.

use bench::{print_simulator_config, target_requests};
use neu10::{CollocationSim, SharingPolicy, SimOptions, TenantSpec, VnpuId};
use npu_sim::NpuConfig;
use workloads::llm_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests().min(3);
    println!("# Fig. 27: LLM collocation (throughput normalized to V10 per workload)");
    println!(
        "{:<14} {:<8} {:>10} {:>10} {:>10} {:>10}",
        "pair", "policy", "W1 (LLM)", "W2", "ME util", "VE util"
    );
    for pair in llm_pairs() {
        let tenants = vec![
            TenantSpec::evaluation(0, pair.first, requests),
            TenantSpec::evaluation(1, pair.second, requests * 2),
        ];
        let run =
            |policy| CollocationSim::new(&config, SimOptions::new(policy), tenants.clone()).run();
        let v10 = run(SharingPolicy::V10);
        let base = [
            v10.throughput_rps(VnpuId(0), &config).max(1e-12),
            v10.throughput_rps(VnpuId(1), &config).max(1e-12),
        ];
        for (policy, result) in [
            (SharingPolicy::V10, v10.clone()),
            (SharingPolicy::Neu10, run(SharingPolicy::Neu10)),
        ] {
            println!(
                "{:<14} {:<8} {:>10.2} {:>10.2} {:>9.1}% {:>9.1}%",
                pair.label(),
                policy.label(),
                result.throughput_rps(VnpuId(0), &config) / base[0],
                result.throughput_rps(VnpuId(1), &config) / base[1],
                result.me_utilization * 100.0,
                result.ve_utilization * 100.0
            );
        }
        println!();
    }
    println!("# Under V10 the bandwidth-bound LLM holds every ME while it streams");
    println!("# weights; under Neu10 the collocated model harvests those idle MEs");
    println!("# and its throughput rises while the LLM is barely affected.");
}
