//! Fig. 23: benefit breakdown of ME/VE harvesting — the distribution of
//! per-operator speedups of Neu10 over Neu10-NH for every collocation pair.

use std::collections::BTreeMap;

use bench::{print_simulator_config, run_pair_all_policies, target_requests};
use neu10::SharingPolicy;
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Fig. 23: per-operator speedup of Neu10 over Neu10-NH");
    println!("# (values > 1 are operators sped up by harvesting; < 1 slowed by interference)");
    println!(
        "{:<14} {:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "pair", "workload", "p10", "p50", "p90", "max", "min", "%>=1.0"
    );
    for pair in collocation_pairs() {
        let sweep = run_pair_all_policies(pair, &config, requests, false);
        let harvest = sweep.result(SharingPolicy::Neu10);
        let baseline = sweep.result(SharingPolicy::Neu10NoHarvest);
        for (w, model) in [pair.first, pair.second].into_iter().enumerate() {
            // Match operators by (request, operator index) across the runs.
            let base_durations: BTreeMap<(usize, usize), u64> = baseline.tenants[w]
                .operator_durations
                .iter()
                .map(|d| ((d.request, d.operator), d.duration))
                .collect();
            let mut speedups: Vec<f64> = harvest.tenants[w]
                .operator_durations
                .iter()
                .filter_map(|d| {
                    base_durations
                        .get(&(d.request, d.operator))
                        .map(|base| *base as f64 / d.duration.max(1) as f64)
                })
                .collect();
            speedups.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            if speedups.is_empty() {
                continue;
            }
            let pct = |p: f64| speedups[((speedups.len() - 1) as f64 * p) as usize];
            let faster = speedups.iter().filter(|s| **s >= 1.0).count() as f64
                / speedups.len() as f64
                * 100.0;
            println!(
                "{:<14} {:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.1}%",
                pair.label(),
                model.abbrev(),
                pct(0.10),
                pct(0.50),
                pct(0.90),
                speedups.last().copied().unwrap_or(1.0),
                speedups.first().copied().unwrap_or(1.0),
                faster
            );
        }
    }
}
