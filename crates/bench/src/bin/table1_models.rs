//! Table I: the DNN models used as ML services, their categories and HBM
//! footprints (batch size 8).

use workloads::{model_catalog, InferenceGraph};

fn main() {
    println!("# Table I: DNN models used as ML services");
    println!(
        "{:<22} {:<10} {:<36} {:>16} {:>12}",
        "Model", "Abbrev.", "Category", "HBM footprint", "operators"
    );
    for info in model_catalog() {
        let graph = InferenceGraph::build(info.id, 8);
        let footprint = graph.hbm_footprint_bytes() as f64;
        let formatted = if footprint >= (1u64 << 30) as f64 {
            format!("{:.2} GB", footprint / (1u64 << 30) as f64)
        } else {
            format!("{:.2} MB", footprint / (1u64 << 20) as f64)
        };
        println!(
            "{:<22} {:<10} {:<36} {:>16} {:>12}",
            info.name,
            info.abbrev,
            info.category.to_string(),
            formatted,
            graph.operator_count()
        );
    }
}
