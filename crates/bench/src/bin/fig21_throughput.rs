//! Fig. 21: throughput of the collocated workloads under each sharing policy,
//! normalized to PMT.

use bench::{print_simulator_config, run_pair_all_policies, target_requests};
use neu10::{SharingPolicy, VnpuId};
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

fn main() {
    let config = NpuConfig::single_core();
    print_simulator_config(&config);
    let requests = target_requests();
    println!("# Fig. 21: normalized throughput (higher is better, PMT = 1.0)");
    println!(
        "{:<14} {:<10} {:>12} {:>12}",
        "pair", "policy", "W1 tput", "W2 tput"
    );
    for pair in collocation_pairs() {
        let sweep = run_pair_all_policies(pair, &config, requests, false);
        let baseline = sweep.result(SharingPolicy::Pmt);
        let base = [
            baseline.throughput_rps(VnpuId(0), &config),
            baseline.throughput_rps(VnpuId(1), &config),
        ];
        for policy in SharingPolicy::all() {
            let result = sweep.result(policy);
            println!(
                "{:<14} {:<10} {:>12.3} {:>12.3}",
                pair.label(),
                policy.label(),
                result.throughput_rps(VnpuId(0), &config) / base[0].max(1e-12),
                result.throughput_rps(VnpuId(1), &config) / base[1].max(1e-12),
            );
        }
        println!();
    }
}
