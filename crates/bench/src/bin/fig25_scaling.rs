//! Fig. 25: throughput improvement of Neu10 with varying numbers of MEs and
//! VEs on the physical core, relative to V10 on the 2ME-2VE core. Each vNPU
//! owns half of the core's engines.

use bench::{print_simulator_config, target_requests};
use neu10::{CollocationSim, SharingPolicy, SimOptions, TenantSpec, VnpuId};
use npu_sim::NpuConfig;
use workloads::collocation_pairs;

const CORE_CONFIGS: [(usize, usize); 5] = [(2, 2), (4, 2), (4, 4), (8, 4), (8, 8)];

fn run(
    pair: workloads::WorkloadPair,
    config: &NpuConfig,
    policy: SharingPolicy,
    requests: usize,
) -> f64 {
    let mes = config.mes_per_core / 2;
    let ves = config.ves_per_core / 2;
    let tenants = vec![
        TenantSpec::evaluation(0, pair.first, requests).with_allocation(mes.max(1), ves.max(1)),
        TenantSpec::evaluation(1, pair.second, requests).with_allocation(mes.max(1), ves.max(1)),
    ];
    let result = CollocationSim::new(config, SimOptions::new(policy), tenants).run();
    result.throughput_rps(VnpuId(0), config) + result.throughput_rps(VnpuId(1), config)
}

fn main() {
    let base_config = NpuConfig::single_core();
    print_simulator_config(&base_config);
    let requests = target_requests();
    println!("# Fig. 25: total pair throughput, normalized to V10 on a 2ME-2VE core");
    print!("{:<14} {:<7}", "pair", "policy");
    for (mes, ves) in CORE_CONFIGS {
        print!(" {:>9}", format!("{mes}ME-{ves}VE"));
    }
    println!();
    for pair in collocation_pairs() {
        let baseline_config = base_config.clone().with_engines(2, 2);
        let baseline = run(pair, &baseline_config, SharingPolicy::V10, requests).max(1e-12);
        for policy in [SharingPolicy::Neu10, SharingPolicy::V10] {
            print!("{:<14} {:<7}", pair.label(), policy.label());
            for (mes, ves) in CORE_CONFIGS {
                let config = base_config.clone().with_engines(mes, ves);
                let throughput = run(pair, &config, policy, requests);
                print!(" {:>9.2}", throughput / baseline);
            }
            println!();
        }
        println!();
    }
    println!("# With more engines per core the gap between Neu10 and V10 widens,");
    println!("# because single operators cannot fill all engines and harvesting pays off.");
}
