//! Fleet-scale serving perf harness: measures the simulator itself.
//!
//! Every other harness in `src/bin/` measures the *simulated* fleet; this one
//! measures the *simulator* — wall-clock time, arrivals processed per second
//! of wall time, events turned by the loop — so hot-path regressions are
//! caught by numbers instead of vibes. Three scenarios cover the serving
//! paths that matter at scale:
//!
//! * `steady`        — open-loop Poisson load on a mid-size fleet (the pure
//!   dispatch + batching path);
//! * `autopilot`     — a diurnal day under the target-tracking autoscaler
//!   (telemetry, control actions, drain/release lifecycle);
//! * `fleet-1m`      — 64 boards × 512 replicas × 1,000,000 arrivals (the
//!   scale target: indexed dispatch, shared calibration curves, pooled batch
//!   buffers);
//! * `fleet-1m-p*`   — the same scenario through the sharded parallel runner
//!   ([`ClusterServingSim::run_sharded`]) at increasing partition counts, so
//!   the partitions × threads scale curve (and the speedup over the
//!   single-threaded path) is recorded next to the sequential row;
//! * `fleet-100m`    — the same fleet under 100,000,000 arrivals, run
//!   **only** through the sharded runner: the scale point the sequential
//!   loop is too slow to be worth measuring on every run.
//!
//! Sharded rows carry `partitions`/`threads` fields (`1`/`1` on sequential
//! rows) plus `sequential_wall_ms`/`speedup_vs_sequential` when the
//! single-threaded wall time of the same scenario was measured in the same
//! run.
//!
//! The results land in `BENCH_serving.json` (override with
//! `NEU10_BENCH_OUT`), one scenario object per line so the baseline check
//! can parse it without a JSON library. With `NEU10_BENCH_BASELINE=<path>`
//! the harness compares wall times against a checked-in baseline: a >2×
//! regression emits a GitHub-style `::warning::`, a **>3× regression fails
//! the run** (both behind a 50 ms absolute floor so smoke-scale scenarios
//! don't trip on scheduler noise), and when CI provides
//! `$GITHUB_STEP_SUMMARY` the before/after table is rendered there. With
//! `NEU10_PERF_COMPARE=1` the `steady` and `fleet-1m`
//! scenarios are additionally re-run on the pre-index reference dispatch
//! path ([`ServingOptions::with_reference_dispatch`]); the reports are
//! asserted identical and the speedup is printed and recorded.
//!
//! Every scenario is additionally re-run with a head-sampled
//! [`TraceRecorder`] attached; the observed report is asserted identical to
//! the unobserved one, and the tracing overhead lands in the JSON as
//! `obs_wall_ms` / `obs_overhead_pct`. Against a baseline, the harness also
//! gates the **obs-disabled** wall time at 2% (past a 250 ms absolute floor):
//! instrumentation left in the hot path must stay free when no sink is
//! attached.
//!
//! The `fleet-1m` scenario additionally re-runs with a
//! [`TimeSeriesRecorder`] attached — the windowed aggregation path is the one
//! a fleet scrapes continuously, so its overhead is tracked separately as
//! `timeseries_wall_ms` / `timeseries_overhead_pct` and gated against the
//! baseline with the same 2% budget (250 ms floor).
//!
//! `NEU10_PERF_PROFILE=smoke` shrinks every scenario for CI; the default
//! `full` profile runs the real sizes.

use std::time::Instant;

use autopilot::{Autopilot, AutoscalePolicy, ScalingSpec, TargetTracking};
use cluster::{
    estimated_batch_service_cycles, estimated_service_cycles, ClusterServingSim, DeploySpec,
    DispatchPolicy, NpuCluster, PlacementPolicy, ServingOptions, ServingReport, ShardOptions,
    StochasticService, TimeSeriesConfig, TimeSeriesRecorder, TraceConfig, TraceRecorder,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{ClusterTrace, DiurnalTrace, ModelId, PriorityClass, QosSpec};

const SEED: u64 = 9090;
const MAX_BATCH: usize = 8;
const LOAD: f64 = 0.7;
const REPLICA_MES: usize = 2;
const REPLICA_VES: usize = 2;

/// Scenario sizes for one profile.
struct Sizes {
    steady_boards: usize,
    steady_replicas: usize,
    steady_models: usize,
    steady_arrivals_per_model: usize,
    auto_boards: usize,
    auto_horizon_services: u64,
    fleet_boards: usize,
    fleet_replicas: usize,
    fleet_models: usize,
    fleet_arrivals_per_model: usize,
    /// Partition counts for the `fleet-1m-p*` scale-curve rows (threads =
    /// partitions on each row).
    scale_partitions: &'static [usize],
    fleet100_arrivals_per_model: usize,
    fleet100_partitions: usize,
}

impl Sizes {
    fn full() -> Self {
        Sizes {
            steady_boards: 16,
            steady_replicas: 128,
            steady_models: 4,
            steady_arrivals_per_model: 50_000,
            auto_boards: 8,
            auto_horizon_services: 600,
            fleet_boards: 64,
            fleet_replicas: 512,
            fleet_models: 8,
            fleet_arrivals_per_model: 125_000,
            scale_partitions: &[2, 4, 8],
            fleet100_arrivals_per_model: 12_500_000,
            fleet100_partitions: 8,
        }
    }

    fn smoke() -> Self {
        Sizes {
            steady_boards: 2,
            steady_replicas: 8,
            steady_models: 2,
            steady_arrivals_per_model: 2_000,
            auto_boards: 2,
            auto_horizon_services: 120,
            fleet_boards: 4,
            fleet_replicas: 16,
            fleet_models: 4,
            fleet_arrivals_per_model: 2_500,
            scale_partitions: &[2],
            fleet100_arrivals_per_model: 5_000,
            fleet100_partitions: 2,
        }
    }
}

/// The model catalog slice a scenario spreads its replicas over.
fn scenario_models(count: usize) -> Vec<ModelId> {
    [
        ModelId::Mnist,
        ModelId::Ncf,
        ModelId::Dlrm,
        ModelId::ResNet,
        ModelId::Bert,
        ModelId::EfficientNet,
        ModelId::Transformer,
        ModelId::RetinaNet,
    ]
    .into_iter()
    .take(count.max(1))
    .collect()
}

/// One measured scenario row.
struct Measurement {
    name: &'static str,
    boards: usize,
    replicas: usize,
    models: usize,
    /// Partition count of the sharded runner (`1` on the sequential rows).
    partitions: usize,
    /// Worker-thread count of the sharded runner (`1` on sequential rows).
    threads: usize,
    wall_ms: f64,
    report: ServingReport,
    /// Wall time of the reference (pre-index) dispatch path, when compared.
    reference_wall_ms: Option<f64>,
    /// Wall time of the sequential (single-threaded) run of the same
    /// scenario, when it was measured in the same harness invocation.
    sequential_wall_ms: Option<f64>,
    /// Wall time of the same scenario with a sampling [`TraceRecorder`]
    /// attached.
    obs_wall_ms: f64,
    /// Wall time of the same scenario with a windowed [`TimeSeriesRecorder`]
    /// attached (only measured for the `fleet-1m` scale target).
    timeseries_wall_ms: Option<f64>,
}

impl Measurement {
    fn arrivals_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.report.stats.offered as f64 / (self.wall_ms / 1e3)
    }

    fn speedup(&self) -> Option<f64> {
        self.reference_wall_ms
            .map(|reference| reference / self.wall_ms.max(1e-9))
    }

    /// Wall-clock speedup of the sharded run over the single-threaded path
    /// measured in the same invocation.
    fn speedup_vs_sequential(&self) -> Option<f64> {
        self.sequential_wall_ms
            .map(|sequential| sequential / self.wall_ms.max(1e-9))
    }

    /// Tracing overhead of the observed re-run relative to the unobserved
    /// run, in percent (negative when the observed run happened to be
    /// faster — wall-clock noise at small scales).
    fn obs_overhead_pct(&self) -> f64 {
        (self.obs_wall_ms - self.wall_ms) / self.wall_ms.max(1e-9) * 100.0
    }

    /// Windowed-aggregation overhead relative to the unobserved run, in
    /// percent, when the scenario measured it.
    fn timeseries_overhead_pct(&self) -> Option<f64> {
        self.timeseries_wall_ms
            .map(|ts| (ts - self.wall_ms) / self.wall_ms.max(1e-9) * 100.0)
    }

    fn json_line(&self) -> String {
        let speedup = match self.speedup() {
            Some(s) => format!(
                ",\"reference_wall_ms\":{:.1},\"speedup_vs_reference\":{:.2}",
                self.reference_wall_ms.unwrap_or(0.0),
                s
            ),
            None => String::new(),
        };
        let timeseries = match (self.timeseries_wall_ms, self.timeseries_overhead_pct()) {
            (Some(wall), Some(pct)) => {
                format!(",\"timeseries_wall_ms\":{wall:.1},\"timeseries_overhead_pct\":{pct:.1}")
            }
            _ => String::new(),
        };
        let sequential = match (self.sequential_wall_ms, self.speedup_vs_sequential()) {
            (Some(wall), Some(speedup)) => {
                format!(",\"sequential_wall_ms\":{wall:.1},\"speedup_vs_sequential\":{speedup:.2}")
            }
            _ => String::new(),
        };
        format!(
            "{{\"name\":\"{}\",\"boards\":{},\"replicas\":{},\"models\":{},\
             \"partitions\":{},\"threads\":{},\"wall_ms\":{:.1},\
             \"offered\":{},\"completed\":{},\"rejected\":{},\"arrivals_per_sec_wall\":{:.0},\
             \"sim_events\":{},\"events_processed\":{},\"peak_replicas\":{},\"batches\":{},\
             \"p99_cycles\":{},\"makespan_cycles\":{},\
             \"obs_wall_ms\":{:.1},\"obs_overhead_pct\":{:.1}{}{}{}}}",
            self.name,
            self.boards,
            self.replicas,
            self.models,
            self.partitions,
            self.threads,
            self.wall_ms,
            self.report.stats.offered,
            self.report.stats.completed,
            self.report.stats.rejected(),
            self.arrivals_per_sec(),
            self.report.perf.events,
            self.report.perf.total_processed(),
            self.report.perf.peak_replicas,
            self.report.batches,
            self.report.latency.p99,
            self.report.makespan.get(),
            self.obs_wall_ms,
            self.obs_overhead_pct(),
            timeseries,
            sequential,
            speedup,
        )
    }
}

/// Mean Poisson inter-arrival gap that drives `replicas` batch-`MAX_BATCH`
/// replicas of `model` at the harness load factor.
fn mean_gap(model: ModelId, replicas: usize, npu: &NpuConfig) -> u64 {
    let batch_cycles =
        estimated_batch_service_cycles(model, MAX_BATCH, REPLICA_MES, REPLICA_VES, npu) as f64;
    (batch_cycles / (replicas as f64 * MAX_BATCH as f64 * LOAD)).max(1.0) as u64
}

/// Deploys `replicas` replicas round-robin over the models, spread across the
/// fleet's boards.
fn deploy_fleet(boards: usize, replicas: usize, models: &[ModelId], npu: &NpuConfig) -> NpuCluster {
    let mut fleet = NpuCluster::homogeneous(boards, npu);
    for index in 0..replicas {
        let spec = DeploySpec::replica(models[index % models.len()], REPLICA_MES, REPLICA_VES)
            .with_memory(32 << 20, 1 << 30);
        fleet
            .deploy(spec, PlacementPolicy::WorstFit)
            .expect("the fleet must have capacity for the scenario's replicas");
    }
    fleet
}

/// The open-loop trace of a steady scenario: one Poisson stream per model at
/// the harness load, interactive deadlines on half the models.
fn steady_trace(
    models: &[ModelId],
    replicas: usize,
    per_model: usize,
    npu: &NpuConfig,
) -> ClusterTrace {
    let replicas_per_model = (replicas / models.len()).max(1);
    let streams: Vec<(ModelId, u64)> = models
        .iter()
        .map(|model| (*model, mean_gap(*model, replicas_per_model, npu)))
        .collect();
    let mut trace = ClusterTrace::poisson(&streams, per_model, SEED);
    for (index, model) in models.iter().enumerate() {
        if index % 2 == 0 {
            let service = estimated_service_cycles(*model, REPLICA_MES, REPLICA_VES, npu);
            trace = trace.with_model_qos(
                *model,
                QosSpec::new(Some(Cycles(service * 10)), PriorityClass::Interactive),
            );
        }
    }
    trace
}

/// The sampling config of the observed re-runs: a bounded ring with 10%
/// head-sampling — the configuration a fleet would actually run with, not the
/// everything-on worst case.
fn obs_config() -> TraceConfig {
    TraceConfig::default()
        .with_capacity(65_536)
        .with_sample_rate(0.1)
        .with_seed(SEED)
}

/// The window config of the time-series re-run: default width with a bounded
/// per-series ring, the shape a continuously-scraped fleet would run.
fn timeseries_config() -> TimeSeriesConfig {
    TimeSeriesConfig::default().with_ring(64)
}

fn serving_options(reference: bool) -> ServingOptions {
    let mut options = ServingOptions::new(DispatchPolicy::LeastLoaded)
        .with_batching(MAX_BATCH)
        .with_stochastic(StochasticService::seeded(SEED).with_cv(0.2));
    if reference {
        options = options.with_reference_dispatch();
    }
    options
}

/// Runs one open-loop scenario, optionally measuring the reference dispatch
/// path for the speedup column.
#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    name: &'static str,
    boards: usize,
    replicas: usize,
    models: Vec<ModelId>,
    per_model: usize,
    npu: &NpuConfig,
    compare: bool,
    timeseries: bool,
) -> Measurement {
    let trace = steady_trace(&models, replicas, per_model, npu);

    let mut fleet = deploy_fleet(boards, replicas, &models, npu);
    let started = Instant::now();
    let report = ClusterServingSim::new(serving_options(false)).run(&mut fleet, &trace);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let reference_wall_ms = compare.then(|| {
        let mut fleet = deploy_fleet(boards, replicas, &models, npu);
        let started = Instant::now();
        let reference = ClusterServingSim::new(serving_options(true)).run(&mut fleet, &trace);
        let reference_wall = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report, reference,
            "{name}: indexed and reference dispatch must produce identical reports"
        );
        reference_wall
    });

    let obs_wall_ms = {
        let mut fleet = deploy_fleet(boards, replicas, &models, npu);
        let mut recorder = TraceRecorder::new(obs_config());
        let started = Instant::now();
        let observed = ClusterServingSim::new(serving_options(false)).run_observed(
            &mut fleet,
            &trace,
            &mut recorder,
        );
        let obs_wall = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report, observed,
            "{name}: attaching a TraceRecorder must not change the simulation"
        );
        obs_wall
    };

    let timeseries_wall_ms = timeseries.then(|| {
        let mut fleet = deploy_fleet(boards, replicas, &models, npu);
        let mut recorder = TimeSeriesRecorder::new(timeseries_config());
        let started = Instant::now();
        let observed = ClusterServingSim::new(serving_options(false)).run_observed(
            &mut fleet,
            &trace,
            &mut recorder,
        );
        let ts_wall = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report, observed,
            "{name}: attaching a TimeSeriesRecorder must not change the simulation"
        );
        assert!(
            recorder.stats().samples > 0,
            "{name}: the time-series re-run must actually aggregate samples"
        );
        ts_wall
    });

    Measurement {
        name,
        boards,
        replicas,
        models: models.len(),
        partitions: 1,
        threads: 1,
        wall_ms,
        report,
        reference_wall_ms,
        sequential_wall_ms: None,
        obs_wall_ms,
        timeseries_wall_ms,
    }
}

/// Runs one open-loop scenario through the sharded parallel runner
/// ([`ClusterServingSim::run_sharded`]): the fleet splits into `partitions`
/// contiguous board groups, each with its own event heap, advancing in
/// bounded-lookahead rounds on `threads` workers. The observed re-run
/// attaches one [`TraceRecorder`] per partition and exercises the
/// barrier-merge path; its report must match the unobserved one exactly.
#[allow(clippy::too_many_arguments)]
fn run_sharded_fleet(
    name: &'static str,
    boards: usize,
    replicas: usize,
    models: Vec<ModelId>,
    per_model: usize,
    npu: &NpuConfig,
    partitions: usize,
    threads: usize,
    sequential_wall_ms: Option<f64>,
) -> Measurement {
    let trace = steady_trace(&models, replicas, per_model, npu);
    let shard = ShardOptions::new(partitions).with_threads(threads);

    let mut fleet = deploy_fleet(boards, replicas, &models, npu);
    let started = Instant::now();
    let report =
        ClusterServingSim::new(serving_options(false)).run_sharded(&mut fleet, &trace, shard);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let obs_wall_ms = {
        let mut fleet = deploy_fleet(boards, replicas, &models, npu);
        let mut recorders: Vec<TraceRecorder> = Vec::new();
        let started = Instant::now();
        let observed = ClusterServingSim::new(serving_options(false)).run_sharded_observed(
            &mut fleet,
            &trace,
            shard,
            &mut recorders,
        );
        let obs_wall = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            report, observed,
            "{name}: per-partition TraceRecorders must not change the simulation"
        );
        let mut merged = TraceRecorder::new(TraceConfig::default());
        for recorder in &recorders {
            merged.merge(recorder);
        }
        assert!(
            !merged.export_chrome_trace().is_empty(),
            "{name}: the merged per-partition trace must contain events"
        );
        obs_wall
    };

    Measurement {
        name,
        boards,
        replicas,
        models: models.len(),
        partitions,
        threads,
        wall_ms,
        report,
        reference_wall_ms: None,
        sequential_wall_ms,
        obs_wall_ms,
        timeseries_wall_ms: None,
    }
}

/// The closed-loop scenario: a diurnal day under the autopilot.
fn run_autopilot(boards: usize, horizon_services: u64, npu: &NpuConfig) -> Measurement {
    let model = ModelId::Mnist;
    let service = estimated_service_cycles(model, REPLICA_MES, REPLICA_VES, npu);
    let effective = estimated_batch_service_cycles(model, MAX_BATCH, REPLICA_MES, REPLICA_VES, npu)
        as f64
        / MAX_BATCH as f64;
    let horizon = service * horizon_services;
    let interval = (horizon / 100).max(1);
    let max_replicas = boards * 2;
    let start_replicas = (max_replicas / 4).max(1);
    let spec = DeploySpec::replica(model, REPLICA_MES, REPLICA_VES).with_memory(32 << 20, 1 << 30);

    let peak_mean = (effective / ((max_replicas as f64 * 0.75) * LOAD)).max(1.0) as u64;
    let trace = DiurnalTrace::new(vec![(model, peak_mean)], horizon)
        .with_trough_to_peak(0.2)
        .generate(SEED)
        .with_model_qos(
            model,
            QosSpec::new(Some(Cycles(service * 10)), PriorityClass::Interactive),
        );

    let setup = || {
        let mut fleet = NpuCluster::homogeneous(boards, npu);
        for _ in 0..start_replicas {
            fleet
                .deploy(spec, PlacementPolicy::TopologyAware)
                .expect("capacity for the starting fleet");
        }
        let pilot = Autopilot::new().with_model(ScalingSpec::new(
            spec,
            start_replicas,
            max_replicas,
            AutoscalePolicy::TargetTracking(
                TargetTracking::new(MAX_BATCH as f64, interval * 2).with_max_miss_rate(0.025),
            ),
        ));
        (fleet, pilot)
    };
    let options = || {
        ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_batching(MAX_BATCH)
            .with_telemetry(interval)
    };

    let (mut fleet, mut pilot) = setup();
    let started = Instant::now();
    let report =
        ClusterServingSim::new(options()).run_with_controller(&mut fleet, &trace, &mut pilot);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let (mut fleet, mut pilot) = setup();
    let mut recorder = TraceRecorder::new(obs_config());
    let started = Instant::now();
    let observed = ClusterServingSim::new(options()).run_observed_with_controller(
        &mut fleet,
        &trace,
        &mut pilot,
        &mut recorder,
    );
    let obs_wall_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report, observed,
        "autopilot: attaching a TraceRecorder must not change the simulation"
    );

    Measurement {
        name: "autopilot",
        boards,
        replicas: start_replicas,
        models: 1,
        partitions: 1,
        threads: 1,
        wall_ms,
        report,
        reference_wall_ms: None,
        sequential_wall_ms: None,
        obs_wall_ms,
        timeseries_wall_ms: None,
    }
}

/// The static row names of the `fleet-1m` partition scale curve (the
/// harness's `Measurement.name` is `&'static str`, so the curve's partition
/// counts map to interned names).
fn scale_row_name(partitions: usize) -> &'static str {
    match partitions {
        2 => "fleet-1m-p2",
        4 => "fleet-1m-p4",
        8 => "fleet-1m-p8",
        16 => "fleet-1m-p16",
        _ => "fleet-1m-pN",
    }
}

/// Pulls `"key":value` out of one baseline JSON line without a JSON library
/// (the harness writes one scenario object per line, so this is exact for
/// its own output).
fn extract_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// One scenario's before/after comparison against the checked-in baseline.
struct BaselineRow {
    name: &'static str,
    baseline_wall_ms: Option<f64>,
    wall_ms: f64,
    baseline_timeseries_wall_ms: Option<f64>,
    timeseries_wall_ms: Option<f64>,
}

impl BaselineRow {
    fn ratio(&self) -> Option<f64> {
        self.baseline_wall_ms
            .filter(|b| *b > 0.0)
            .map(|b| self.wall_ms / b)
    }

    /// A regression only counts once it clears both the relative budget and
    /// the 50 ms absolute floor, so millisecond-scale smoke scenarios don't
    /// trip on scheduler noise.
    fn exceeds(&self, budget: f64) -> bool {
        match self.baseline_wall_ms {
            Some(baseline) => self.wall_ms > budget * baseline && self.wall_ms - baseline > 50.0,
            None => false,
        }
    }

    /// The observability gate: with no sink attached the instrumented loop
    /// must stay within 2% of the baseline wall time. The 250 ms absolute
    /// floor keeps the tight budget meaningful — at full `fleet-1m` scale 2%
    /// is well past it, while smoke-scale scenarios can only trip the
    /// ordinary >2×/>3× gates above.
    fn exceeds_obs_budget(&self) -> bool {
        match self.baseline_wall_ms {
            Some(baseline) => self.wall_ms > 1.02 * baseline && self.wall_ms - baseline > 250.0,
            None => false,
        }
    }

    /// The time-series gate: the windowed-aggregation re-run must stay within
    /// 2% of its own baseline wall time (same 250 ms absolute floor as the
    /// obs gate), so regressions in the `TimeSeriesRecorder` hot path are
    /// caught at `fleet-1m` scale.
    fn exceeds_timeseries_budget(&self) -> bool {
        match (self.baseline_timeseries_wall_ms, self.timeseries_wall_ms) {
            (Some(baseline), Some(current)) => {
                current > 1.02 * baseline && current - baseline > 250.0
            }
            _ => false,
        }
    }

    fn status(&self) -> &'static str {
        if self.exceeds(3.0) {
            "FAIL (>3x)"
        } else if self.exceeds_obs_budget() {
            "FAIL (obs >2%)"
        } else if self.exceeds_timeseries_budget() {
            "FAIL (timeseries >2%)"
        } else if self.exceeds(2.0) {
            "warn (>2x)"
        } else if self.baseline_wall_ms.is_some() {
            "ok"
        } else {
            "no baseline"
        }
    }
}

/// Compares wall times against the checked-in baseline. A >2× regression
/// warns; a >3× regression (past the 50 ms floor) **fails the run** — the CI
/// perf job is a gate, not a suggestion. Returns the comparison rows and
/// whether the gate tripped.
fn check_baseline(baseline_path: &str, measurements: &[Measurement]) -> (Vec<BaselineRow>, bool) {
    let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|_| {
        println!("# baseline {baseline_path} not readable; skipping regression check");
        String::new()
    });
    let mut rows = Vec::new();
    let mut gate_tripped = false;
    for measurement in measurements {
        let baseline_wall = baseline
            .lines()
            .find(|line| extract_field(line, "name").as_deref() == Some(measurement.name))
            .and_then(|line| extract_field(line, "wall_ms"))
            .and_then(|value| value.parse::<f64>().ok());
        let baseline_timeseries_wall = baseline
            .lines()
            .find(|line| extract_field(line, "name").as_deref() == Some(measurement.name))
            .and_then(|line| extract_field(line, "timeseries_wall_ms"))
            .and_then(|value| value.parse::<f64>().ok());
        let row = BaselineRow {
            name: measurement.name,
            baseline_wall_ms: baseline_wall,
            wall_ms: measurement.wall_ms,
            baseline_timeseries_wall_ms: baseline_timeseries_wall,
            timeseries_wall_ms: measurement.timeseries_wall_ms,
        };
        if row.exceeds_timeseries_budget() {
            gate_tripped = true;
            println!(
                "::error::perf_fleet: scenario {} time-series wall time exceeds the \
                 2% budget ({:.1} ms vs baseline {:.1} ms) — failing the perf gate",
                row.name,
                row.timeseries_wall_ms.unwrap_or(0.0),
                row.baseline_timeseries_wall_ms.unwrap_or(0.0),
            );
        }
        match row.baseline_wall_ms {
            Some(before) if row.exceeds(3.0) => {
                gate_tripped = true;
                println!(
                    "::error::perf_fleet: scenario {} wall time regressed >3x \
                     ({:.1} ms vs baseline {:.1} ms) — failing the perf gate",
                    row.name, row.wall_ms, before
                );
            }
            Some(before) if row.exceeds_obs_budget() => {
                gate_tripped = true;
                println!(
                    "::error::perf_fleet: scenario {} obs-disabled wall time exceeds the \
                     2% observability budget ({:.1} ms vs baseline {:.1} ms) — \
                     failing the perf gate",
                    row.name, row.wall_ms, before
                );
            }
            Some(before) if row.exceeds(2.0) => println!(
                "::warning::perf_fleet: scenario {} wall time regressed >2x \
                 ({:.1} ms vs baseline {:.1} ms)",
                row.name, row.wall_ms, before
            ),
            Some(before) => println!(
                "# {}: {:.1} ms vs baseline {:.1} ms (within budget)",
                row.name, row.wall_ms, before
            ),
            None => println!(
                "# baseline has no scenario {:?}; skipping its regression check",
                row.name
            ),
        }
        rows.push(row);
    }
    (rows, gate_tripped)
}

/// Renders the before/after table — plus the sharded partitions × threads
/// scale curve — into `$GITHUB_STEP_SUMMARY` (when CI sets it), so the perf
/// comparison is readable from the job page instead of buried in the log.
fn write_step_summary(rows: &[BaselineRow], measurements: &[Measurement]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut table = String::from(
        "## Serving perf smoke (`perf_fleet`)\n\n\
         | scenario | baseline wall_ms | current wall_ms | ratio | status |\n\
         |---|---:|---:|---:|---|\n",
    );
    for row in rows {
        table.push_str(&format!(
            "| {} | {} | {:.1} | {} | {} |\n",
            row.name,
            row.baseline_wall_ms
                .map(|b| format!("{b:.1}"))
                .unwrap_or_else(|| "—".into()),
            row.wall_ms,
            row.ratio()
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "—".into()),
            row.status(),
        ));
    }
    table.push_str(
        "\nGates: fail on >3x wall-time regression (50 ms floor), on obs-disabled wall \
         time >2% over baseline (250 ms floor), or on the time-series re-run >2% over \
         its baseline (250 ms floor); warn on >2x.\n",
    );
    let sharded: Vec<&Measurement> = measurements.iter().filter(|m| m.partitions > 1).collect();
    if !sharded.is_empty() {
        table.push_str(
            "\n### Sharded scale curve (threads x boards)\n\n\
             | scenario | boards | partitions | threads | wall_ms | arrivals/s | speedup vs sequential |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
        for m in sharded {
            table.push_str(&format!(
                "| {} | {} | {} | {} | {:.1} | {:.0} | {} |\n",
                m.name,
                m.boards,
                m.partitions,
                m.threads,
                m.wall_ms,
                m.arrivals_per_sec(),
                m.speedup_vs_sequential()
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "—".into()),
            ));
        }
    }
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        let _ = file.write_all(table.as_bytes());
    }
}

fn write_json(path: &str, measurements: &[Measurement]) {
    let mut json = String::from("{\"schema\":\"neu10.bench.serving.v1\",\"scenarios\":[\n");
    for (index, measurement) in measurements.iter().enumerate() {
        json.push_str(&measurement.json_line());
        if index + 1 < measurements.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("]}\n");
    std::fs::write(path, json)
        .unwrap_or_else(|err| panic!("perf_fleet: cannot write results to {path:?}: {err}"));
}

fn main() {
    let profile = std::env::var("NEU10_PERF_PROFILE").unwrap_or_else(|_| "full".into());
    let sizes = match profile.as_str() {
        "smoke" => Sizes::smoke(),
        _ => Sizes::full(),
    };
    let compare = std::env::var("NEU10_PERF_COMPARE").is_ok_and(|v| v == "1");
    let out = std::env::var("NEU10_BENCH_OUT").unwrap_or_else(|_| "BENCH_serving.json".into());
    let npu = NpuConfig::tpu_v4_like();
    let auto_npu = NpuConfig::single_core();

    println!("# perf_fleet: serving hot-path wall-clock harness ({profile} profile)");
    println!(
        "{:<12} {:>7} {:>9} {:>7} {:>5} {:>10} {:>11} {:>11} {:>12} {:>9} {:>9} {:>8}",
        "scenario",
        "boards",
        "replicas",
        "models",
        "p/t",
        "offered",
        "wall_ms",
        "arr/s_wall",
        "sim_events",
        "peak_rep",
        "speedup",
        "obs_pct"
    );

    let mut measurements = vec![
        run_open_loop(
            "steady",
            sizes.steady_boards,
            sizes.steady_replicas,
            scenario_models(sizes.steady_models),
            sizes.steady_arrivals_per_model,
            &npu,
            compare,
            false,
        ),
        run_autopilot(sizes.auto_boards, sizes.auto_horizon_services, &auto_npu),
        run_open_loop(
            "fleet-1m",
            sizes.fleet_boards,
            sizes.fleet_replicas,
            scenario_models(sizes.fleet_models),
            sizes.fleet_arrivals_per_model,
            &npu,
            compare,
            true,
        ),
    ];

    // The partition scale curve: the same fleet-1m scenario through the
    // sharded runner at increasing partition counts, each row recording its
    // speedup over the sequential wall time measured just above.
    let fleet_sequential_wall = measurements
        .last()
        .expect("the fleet-1m row was just pushed")
        .wall_ms;
    for &partitions in sizes.scale_partitions {
        measurements.push(run_sharded_fleet(
            scale_row_name(partitions),
            sizes.fleet_boards,
            sizes.fleet_replicas,
            scenario_models(sizes.fleet_models),
            sizes.fleet_arrivals_per_model,
            &npu,
            partitions,
            partitions,
            Some(fleet_sequential_wall),
        ));
    }

    // The 100M-arrival scale point: sharded only — the sequential loop is
    // deliberately not re-run at this size on every invocation.
    measurements.push(run_sharded_fleet(
        "fleet-100m",
        sizes.fleet_boards,
        sizes.fleet_replicas,
        scenario_models(sizes.fleet_models),
        sizes.fleet100_arrivals_per_model,
        &npu,
        sizes.fleet100_partitions,
        sizes.fleet100_partitions,
        None,
    ));

    for measurement in &measurements {
        println!(
            "{:<12} {:>7} {:>9} {:>7} {:>5} {:>10} {:>11.1} {:>11.0} {:>12} {:>9} {:>9} {:>7.1}%",
            measurement.name,
            measurement.boards,
            measurement.replicas,
            measurement.models,
            format!("{}/{}", measurement.partitions, measurement.threads),
            measurement.report.stats.offered,
            measurement.wall_ms,
            measurement.arrivals_per_sec(),
            measurement.report.perf.events,
            measurement.report.perf.peak_replicas,
            measurement
                .speedup_vs_sequential()
                .or_else(|| measurement.speedup())
                .map(|s| format!("{s:.1}x"))
                .unwrap_or_else(|| "-".into()),
            measurement.obs_overhead_pct(),
        );
        // The scenarios must genuinely serve: a dead loop that finishes fast
        // is not a perf win.
        assert!(
            measurement.report.stats.completed > 0,
            "scenario served nothing"
        );
    }

    // The scale-target claim: at full size, partitioning the event loop must
    // beat the single-threaded path by 2.5x with at least four workers —
    // structurally (smaller per-partition heaps and dispatch scans), so the
    // bar holds even on one core.
    if profile != "smoke" {
        let best = measurements
            .iter()
            .filter(|m| m.threads >= 4)
            .filter_map(Measurement::speedup_vs_sequential)
            .fold(0.0_f64, f64::max);
        assert!(
            best >= 2.5,
            "fleet-1m sharded speedup must reach 2.5x over the sequential \
             path with >=4 threads (best {best:.2}x)"
        );
    }

    write_json(&out, &measurements);
    println!("# wrote {out}");

    if let Ok(baseline) = std::env::var("NEU10_BENCH_BASELINE") {
        let (rows, gate_tripped) = check_baseline(&baseline, &measurements);
        write_step_summary(&rows, &measurements);
        if gate_tripped {
            eprintln!("perf gate: wall-time regression >3x against {baseline}");
            std::process::exit(1);
        }
    }
}
