//! Fig. 29 (extension): dynamic batching and deadline-aware serving.
//!
//! Sweeps per-replica batch size × offered load × dispatch policy over a
//! two-board fleet serving an interactive model (MNIST, strongly sublinear
//! batch scaling: weight traffic amortizes across the batch) and a
//! throughput model (DLRM, near-linear batch scaling). Arrivals carry
//! deadlines and priority classes; the table reports aggregate throughput,
//! tail latency, and the deadline-miss rate per policy.
//!
//! Output columns: batch, load, policy, offered, completed, rejected,
//! rps, mnist_p99 / pooled p99 (cycles), miss%, mean batch size.
//!
//! The run asserts the fidelity claims this figure exists to demonstrate:
//! batching lifts aggregate throughput at equal (over)load without the
//! interactive model's p99 regressing past the unbatched baseline, and
//! stochastic service times are seed-reproducible (two runs, same seed,
//! identical `ServingReport`).

use cluster::{
    estimated_batch_service_cycles, estimated_service_cycles, ClusterServingSim, DeploySpec,
    DispatchPolicy, NpuCluster, PlacementPolicy, ServingOptions, ServingReport, StochasticService,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{ClusterTrace, ModelId, PriorityClass, QosSpec};

const MODEL_INTERACTIVE: ModelId = ModelId::Mnist;
const MODEL_THROUGHPUT: ModelId = ModelId::Dlrm;
const REPLICA_MES: usize = 2;
const REPLICA_VES: usize = 2;
const REPLICA_SRAM: u64 = 32 << 20;
const REPLICA_HBM: u64 = 1 << 30;
const REPLICAS_PER_MODEL: usize = 2;
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];
const LOADS: [f64; 2] = [0.8, 1.3];
const SEED: u64 = 2029;

/// Two serving boards, one replica of each model per board.
fn deploy_fleet() -> NpuCluster {
    let config = NpuConfig::single_core();
    let mut fleet = NpuCluster::homogeneous(REPLICAS_PER_MODEL, &config);
    for _ in 0..REPLICAS_PER_MODEL {
        for model in [MODEL_INTERACTIVE, MODEL_THROUGHPUT] {
            fleet
                .deploy(
                    DeploySpec::replica(model, REPLICA_MES, REPLICA_VES)
                        .with_memory(REPLICA_SRAM, REPLICA_HBM),
                    PlacementPolicy::BestFit,
                )
                .expect("two half-board replicas fit per board");
        }
    }
    fleet
}

/// Deadline slack per model: generous enough that a batch-of-8 pass can
/// still meet it, tight enough that overload queueing blows it.
fn deadline_slack(model: ModelId, config: &NpuConfig) -> u64 {
    let batched = estimated_batch_service_cycles(
        model,
        *BATCH_SIZES.last().unwrap(),
        REPLICA_MES,
        REPLICA_VES,
        config,
    );
    batched * 3 / 2
}

/// Poisson arrivals sized to `load` × unbatched per-replica capacity, with
/// per-model deadlines and priority classes.
fn offered_load(load: f64, per_model: usize, config: &NpuConfig) -> ClusterTrace {
    let streams: Vec<(ModelId, u64)> = [MODEL_INTERACTIVE, MODEL_THROUGHPUT]
        .into_iter()
        .map(|model| {
            let service = estimated_service_cycles(model, REPLICA_MES, REPLICA_VES, config) as f64;
            let mean = service / (REPLICAS_PER_MODEL as f64 * load);
            (model, mean.max(1.0) as u64)
        })
        .collect();
    let trace = ClusterTrace::poisson(&streams, per_model, SEED)
        .with_model_qos(
            MODEL_INTERACTIVE,
            QosSpec::new(
                Some(Cycles(deadline_slack(MODEL_INTERACTIVE, config))),
                PriorityClass::Interactive,
            ),
        )
        .with_model_qos(
            MODEL_THROUGHPUT,
            QosSpec::new(
                Some(Cycles(deadline_slack(MODEL_THROUGHPUT, config))),
                PriorityClass::Standard,
            ),
        );
    // A third of the interactive stream is deadline-free background traffic
    // (cache warmers, batch refreshes): under FIFO it sits in front of the
    // deadline-bound requests, under EDF it yields to them.
    ClusterTrace::from_arrivals(
        trace
            .arrivals()
            .iter()
            .map(|arrival| {
                if arrival.model == MODEL_INTERACTIVE && arrival.sequence % 3 == 0 {
                    let mut background = *arrival;
                    background.deadline = None;
                    background.priority = PriorityClass::Batch;
                    background
                } else {
                    *arrival
                }
            })
            .collect(),
    )
}

fn run(policy: DispatchPolicy, batch: usize, trace: &ClusterTrace) -> ServingReport {
    let mut fleet = deploy_fleet();
    let options = ServingOptions::new(policy).with_batching(batch);
    ClusterServingSim::new(options).run(&mut fleet, trace)
}

fn main() {
    let config = NpuConfig::single_core();
    bench::print_simulator_config(&config);
    let per_model = bench::target_requests() * 24;

    println!("# Fig. 29: per-replica dynamic batching under deadline-bound open-loop load");
    println!(
        "# ({REPLICAS_PER_MODEL} boards, {MODEL_INTERACTIVE:?} interactive + {MODEL_THROUGHPUT:?} standard, deadlines = 1.5x batch-8 service)"
    );
    println!(
        "{:<6} {:<5} {:<13} {:>8} {:>10} {:>9} {:>11} {:>12} {:>12} {:>7} {:>7}",
        "batch",
        "load",
        "policy",
        "offered",
        "completed",
        "rejected",
        "rps",
        "mnist_p99",
        "p99_cycles",
        "miss%",
        "avg_b"
    );

    let mut unbatched_overload: Option<ServingReport> = None;
    let mut batched_overload: Option<ServingReport> = None;
    let mut edf_unbatched_overload: Option<ServingReport> = None;
    for load in LOADS {
        let trace = offered_load(load, per_model, &config);
        for batch in BATCH_SIZES {
            for policy in [
                DispatchPolicy::LeastLoaded,
                DispatchPolicy::EarliestDeadline,
            ] {
                let report = run(policy, batch, &trace);
                let interactive_p99 = report
                    .per_model
                    .get(&MODEL_INTERACTIVE)
                    .map(|s| s.p99)
                    .unwrap_or(0);
                println!(
                    "{:<6} {:<5} {:<13} {:>8} {:>10} {:>9} {:>11.1} {:>12} {:>12} {:>6.1}% {:>7.2}",
                    batch,
                    load,
                    policy.label(),
                    report.stats.offered,
                    report.stats.completed,
                    report.stats.rejected(),
                    report.throughput_rps(&config),
                    interactive_p99,
                    report.latency.p99,
                    report.deadline.miss_rate() * 100.0,
                    report.mean_batch_size()
                );
                if load == LOADS[1] && batch == 1 {
                    match policy {
                        DispatchPolicy::LeastLoaded => unbatched_overload = Some(report),
                        DispatchPolicy::EarliestDeadline => edf_unbatched_overload = Some(report),
                        _ => {}
                    }
                } else if policy == DispatchPolicy::LeastLoaded
                    && load == LOADS[1]
                    && batch == *BATCH_SIZES.last().unwrap()
                {
                    batched_overload = Some(report);
                }
            }
        }
    }

    // The figure's headline: at equal overload, batching serves strictly more
    // traffic without the interactive tail regressing past the unbatched
    // baseline.
    let unbatched = unbatched_overload.expect("swept above");
    let batched = batched_overload.expect("swept above");
    let unbatched_rps = unbatched.throughput_rps(&config);
    let batched_rps = batched.throughput_rps(&config);
    println!();
    println!(
        "# overload (load {:.1}), least-loaded: batch-8 {:.1} rps vs unbatched {:.1} rps ({:.2}x)",
        LOADS[1],
        batched_rps,
        unbatched_rps,
        batched_rps / unbatched_rps.max(f64::EPSILON)
    );
    assert!(
        batched_rps >= unbatched_rps,
        "batching must never cost aggregate throughput at equal load ({batched_rps:.1} vs {unbatched_rps:.1} rps)"
    );
    let p99 = |r: &ServingReport| {
        r.per_model
            .get(&MODEL_INTERACTIVE)
            .map(|s| s.p99)
            .unwrap_or(0)
    };
    println!(
        "# interactive p99 at overload: batch-8 {} vs unbatched {} cycles",
        p99(&batched),
        p99(&unbatched)
    );
    // The sublinear model's backlog drains in amortized passes: its tail
    // strictly improves (and never regresses past the unbatched baseline),
    // and so does its deadline-miss rate.
    assert!(
        p99(&batched) < p99(&unbatched),
        "batching must cut the interactive p99 under overload ({} vs {})",
        p99(&batched),
        p99(&unbatched)
    );
    assert!(
        batched.deadline.miss_rate() <= unbatched.deadline.miss_rate(),
        "batching must not miss more deadlines than the unbatched baseline"
    );

    // Deadline-aware queue ordering pays off exactly where queues build.
    let edf = edf_unbatched_overload.expect("swept above");
    println!(
        "# unbatched overload miss rate: edf {:.1}% vs fifo {:.1}%",
        edf.deadline.miss_rate() * 100.0,
        unbatched.deadline.miss_rate() * 100.0
    );
    assert!(
        edf.deadline.miss_rate() <= unbatched.deadline.miss_rate(),
        "EDF ordering must not miss more deadlines than FIFO under overload"
    );

    // Stochastic service times: dispersion changes the tail, the seed pins
    // the run.
    let trace = offered_load(LOADS[0], per_model, &config);
    let stochastic_run = || {
        let mut fleet = deploy_fleet();
        let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
            .with_batching(4)
            .with_stochastic(StochasticService::seeded(SEED));
        ClusterServingSim::new(options).run(&mut fleet, &trace)
    };
    let first = stochastic_run();
    let second = stochastic_run();
    assert_eq!(
        first, second,
        "stochastic serving must be reproducible for a fixed seed"
    );
    println!(
        "# stochastic (seed {SEED}): p99 {} cycles, miss {:.1}%, reproducible across two runs",
        first.latency.p99,
        first.deadline.miss_rate() * 100.0
    );
}
