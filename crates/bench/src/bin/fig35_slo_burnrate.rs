//! Fig. 35 (extension): SLO burn-rate alerting quality across traffic shapes.
//!
//! Runs one fixed MNIST serving fleet against three canonical traffic shapes
//! — a plain **diurnal** day, a **bursty** day of 4× spikes, and a **flash
//! crowd** that overwhelms the fleet mid-day — with the multi-window
//! multi-burn-rate SLO engine attached, and measures alerting *quality*:
//!
//! * **detection latency** — how long after the flash crowd lands does the
//!   first alert fire, in cycles and in fast-window units;
//! * **false-positive rate** — how many alerts fire on the plain diurnal day
//!   where the fleet is provisioned to serve comfortably (must be zero);
//! * **paging discipline** — the fast/slow window pairing means the page
//!   policy needs sustained evidence, not one bad sample.
//!
//! The run asserts the contract end to end: at least one policy detects the
//! flash-crowd breach within one fast window of the crowd's arrival, the
//! plain diurnal day fires nothing, and the whole pipeline is deterministic —
//! the same seed reproduces the [`AlertLog`](cluster::AlertLog) transcript and the OpenMetrics
//! export byte for byte, and the export passes the strict validator.

use cluster::{
    estimated_service_cycles, export_timeseries_openmetrics, validate_openmetrics,
    ClusterServingSim, DeploySpec, DispatchPolicy, NpuCluster, PlacementPolicy, ServingOptions,
    ServingReport, SloConfig, SloSpec, StochasticService, TimeSeriesConfig, TimeSeriesRecorder,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{BurstyTrace, ClusterTrace, DiurnalTrace, FlashCrowdTrace, ModelId};

const BOARDS: usize = 4;
const REPLICAS: usize = 4;
const SEED: u64 = 3535;
const MAX_BATCH: usize = 4;
/// Latency SLO target, in multiples of the mean service time.
const TARGET_SERVICES: u64 = 6;
/// Availability objective: 99% of requests within the target.
const OBJECTIVE: f64 = 0.99;
/// Burn-rate evaluation tick, in multiples of the mean service time.
const TICK_SERVICES: u64 = 4;
/// Trace horizon, in multiples of the mean service time.
const HORIZON_SERVICES: u64 = 1200;
/// Flash-crowd rate multiplier over the baseline.
const CROWD_MULTIPLIER: f64 = 32.0;

/// One traffic shape to evaluate the alerting policies against.
struct Scenario {
    name: &'static str,
    trace: ClusterTrace,
    /// When a genuine breach begins, if the shape contains one. Alerts before
    /// this point are false positives; the first alert after it is the
    /// detection.
    breach_at: Option<u64>,
}

fn scenarios(service: u64) -> Vec<Scenario> {
    let horizon = service * HORIZON_SERVICES;
    let streams = vec![(ModelId::Mnist, service)];
    let crowd_start = horizon * 3 / 10;
    let crowd_end = horizon * 6 / 10;
    vec![
        Scenario {
            name: "diurnal",
            trace: DiurnalTrace::new(streams.clone(), horizon)
                .with_trough_to_peak(0.25)
                .generate(SEED),
            breach_at: None,
        },
        Scenario {
            name: "bursty",
            trace: BurstyTrace::new(streams.clone(), service * 40, service * 160, horizon)
                .with_burst_multiplier(4.0)
                .generate(SEED),
            breach_at: None,
        },
        Scenario {
            name: "flash-crowd",
            trace: FlashCrowdTrace::new(streams, CROWD_MULTIPLIER, crowd_start, crowd_end, horizon)
                .generate(SEED),
            breach_at: Some(crowd_start),
        },
    ]
}

fn build_fleet(npu: &NpuConfig) -> NpuCluster {
    let mut fleet = NpuCluster::homogeneous(BOARDS, npu);
    for _ in 0..REPLICAS {
        fleet
            .deploy(
                DeploySpec::replica(ModelId::Mnist, 2, 2).with_memory(32 << 20, 1 << 30),
                PlacementPolicy::TopologyAware,
            )
            .expect("capacity for the mnist replicas");
    }
    fleet
}

fn slo_config(service: u64) -> SloConfig {
    SloConfig::new(service * TICK_SERVICES)
        .with_spec(SloSpec::new(
            ModelId::Mnist,
            Cycles(service * TARGET_SERVICES),
            OBJECTIVE,
        ))
        .with_default_policies()
}

fn options(service: u64) -> ServingOptions {
    ServingOptions::new(DispatchPolicy::LeastLoaded)
        .with_batching(MAX_BATCH)
        .with_stochastic(StochasticService::seeded(SEED).with_cv(0.2))
        .with_slo(slo_config(service))
}

/// Runs one scenario with the SLO engine and a [`TimeSeriesRecorder`]
/// attached, returning the report and the recorder.
fn run(npu: &NpuConfig, service: u64, trace: &ClusterTrace) -> (ServingReport, TimeSeriesRecorder) {
    let mut fleet = build_fleet(npu);
    let mut recorder = TimeSeriesRecorder::new(TimeSeriesConfig::new(service * TICK_SERVICES));
    let report =
        ClusterServingSim::new(options(service)).run_observed(&mut fleet, trace, &mut recorder);
    (report, recorder)
}

fn main() {
    let npu = NpuConfig::single_core();
    bench::print_simulator_config(&npu);
    let service = estimated_service_cycles(ModelId::Mnist, 2, 2, &npu);
    let config = slo_config(service);
    let fast_window = config
        .policies
        .iter()
        .map(|policy| policy.fast_window)
        .min()
        .expect("default policies are non-empty");

    println!("# Fig. 35: SLO burn-rate alerting — detection latency vs false positives");
    println!(
        "# ({REPLICAS} replicas on {BOARDS} boards, target {TARGET_SERVICES}x service, \
         objective {OBJECTIVE}, tick {TICK_SERVICES}x service)"
    );
    println!(
        "{:<12} {:>9} {:>7} {:>9} {:>11} {:>13} {:>13}",
        "scenario", "arrivals", "fired", "resolved", "false-pos", "detect-cycles", "detect-fastw"
    );

    let mut flash_detected_within_fast_window = false;
    for scenario in scenarios(service) {
        let (report, recorder) = run(&npu, service, &scenario.trace);
        let alerts = &report.alerts;

        // Alerts on a shape without a breach — or before the breach lands —
        // are false positives.
        let false_positives = alerts
            .transitions()
            .iter()
            .filter(|alert| {
                alert.kind == cluster::AlertKind::Fired
                    && scenario.breach_at.is_none_or(|at| alert.at.get() < at)
            })
            .count();
        let detection = scenario.breach_at.and_then(|at| {
            alerts
                .first_fire_after(Cycles(at))
                .map(|alert| alert.at.get() - at)
        });
        if let Some(latency) = detection {
            if latency <= fast_window {
                flash_detected_within_fast_window = true;
            }
        }

        println!(
            "{:<12} {:>9} {:>7} {:>9} {:>11} {:>13} {:>13}",
            scenario.name,
            report.stats.offered,
            alerts.fired(),
            alerts.resolved(),
            false_positives,
            detection
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            detection
                .map(|d| format!("{:.2}", d as f64 / fast_window as f64))
                .unwrap_or_else(|| "-".into()),
        );

        assert_eq!(
            false_positives, 0,
            "{}: the burn-rate engine must not page a healthy fleet",
            scenario.name
        );
        if scenario.breach_at.is_some() {
            assert!(
                detection.is_some(),
                "{}: the flash-crowd breach must be detected",
                scenario.name
            );
            assert!(
                alerts.resolved() > 0,
                "{}: alerts must resolve once the crowd disperses",
                scenario.name
            );

            // Determinism: the same seed reproduces the alert transcript and
            // the OpenMetrics export byte for byte, and the export validates.
            let (rerun_report, rerun_recorder) = run(&npu, service, &scenario.trace);
            assert_eq!(
                alerts.render_text(),
                rerun_report.alerts.render_text(),
                "same seed must reproduce the alert transcript byte for byte"
            );
            let exposition = export_timeseries_openmetrics(&recorder);
            assert_eq!(
                exposition,
                export_timeseries_openmetrics(&rerun_recorder),
                "same seed must reproduce the OpenMetrics export byte for byte"
            );
            let summary = validate_openmetrics(&exposition)
                .expect("the exported exposition must pass the strict validator");
            assert!(
                summary.families_of("counter") > 0 && summary.samples > 0,
                "the exposition must carry real counter families"
            );
            println!(
                "# flash-crowd exposition: {} families, {} samples, {} alert transitions",
                summary.families,
                summary.samples,
                alerts.len()
            );
        } else {
            assert!(
                alerts.fired() == 0,
                "{}: a healthy shape must fire nothing",
                scenario.name
            );
        }
    }

    assert!(
        flash_detected_within_fast_window,
        "at least one policy must detect the flash crowd within one fast window"
    );
    println!();
    println!(
        "# flash crowd detected within one fast window ({fast_window} cycles); \
         zero false positives on the plain diurnal day; reruns byte-identical"
    );
}
