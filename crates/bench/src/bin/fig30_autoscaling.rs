//! Fig. 30 (extension): autopilot autoscaling vs static provisioning.
//!
//! Runs three traffic scenarios — a sinusoidal **diurnal** day, a
//! Markov-modulated **bursty** stream, and a **flash crowd** step — against
//! a four-board fleet serving a deadline-bound interactive model, under
//! three provisioning regimes:
//!
//! * `static-peak`  — replicas sized for the peak, fixed for the run;
//! * `static-low`   — replicas sized for the baseline, fixed for the run;
//! * `autopilot`    — start at the baseline count and let the telemetry-
//!   driven target-tracking autoscaler grow/shrink the replica set.
//!
//! Output columns: scenario, regime, start/end replicas, offered, completed,
//! rejected, deadline miss %, p99 (cycles), provisioned replica-Gcycles,
//! scale-ups/downs. The run asserts the claims the figure exists to make:
//! under the diurnal scenario the autopilot spends **fewer replica-cycles
//! than peak-static provisioning** while keeping the deadline-miss rate
//! within the target band, it beats static-low on misses in every scenario,
//! and the same seed reproduces an identical report through the whole
//! control loop.

use autopilot::{Autopilot, AutoscalePolicy, ScalingSpec, TargetTracking};
use cluster::{
    estimated_batch_service_cycles, estimated_service_cycles, ClusterServingSim, DeploySpec,
    DispatchPolicy, NpuCluster, PlacementPolicy, ServingOptions, ServingReport,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{
    BurstyTrace, ClusterTrace, DiurnalTrace, FlashCrowdTrace, ModelId, PriorityClass, QosSpec,
};

const MODEL: ModelId = ModelId::Mnist;
const REPLICA_MES: usize = 2;
const REPLICA_VES: usize = 2;
const REPLICA_SRAM: u64 = 32 << 20;
const REPLICA_HBM: u64 = 1 << 30;
const BOARDS: usize = 4;
/// Replicas a peak-static operator provisions (peak load ≈ 0.7 × this).
const PEAK_REPLICAS: usize = 6;
/// Replicas a cost-minimizing static operator provisions for the baseline.
const LOW_REPLICAS: usize = 2;
/// The autoscaler's replica ceiling (= fleet capacity: 2 half-board
/// replicas per board).
const MAX_REPLICAS: usize = 8;
const MAX_BATCH: usize = 4;
const LOAD: f64 = 0.7;
const SEED: u64 = 2030;
/// The operator's deadline-miss budget.
const TARGET_MISS_RATE: f64 = 0.05;

fn replica_spec() -> DeploySpec {
    DeploySpec::replica(MODEL, REPLICA_MES, REPLICA_VES).with_memory(REPLICA_SRAM, REPLICA_HBM)
}

fn deploy_fleet(replicas: usize) -> NpuCluster {
    let mut fleet = NpuCluster::homogeneous(BOARDS, &NpuConfig::single_core());
    for _ in 0..replicas {
        fleet
            .deploy(replica_spec(), PlacementPolicy::TopologyAware)
            .expect("the fleet has capacity for the requested replicas");
    }
    fleet
}

/// Deadline slack: ten single-request service times — generous enough for
/// healthy batching, tight enough that an under-provisioned backlog blows it.
fn deadline_slack(service: u64) -> u64 {
    service * 10
}

fn with_qos(trace: ClusterTrace, service: u64) -> ClusterTrace {
    trace.with_model_qos(
        MODEL,
        QosSpec::new(
            Some(Cycles(deadline_slack(service))),
            PriorityClass::Interactive,
        ),
    )
}

struct Scenario {
    name: &'static str,
    trace: ClusterTrace,
}

/// Mean inter-arrival cycles at `replicas_worth` of *batched* replica
/// capacity, at the figure's load factor. Sizing against the amortized
/// batch-`MAX_BATCH` service time (not the unbatched one) is what makes the
/// load genuinely stress a static-low fleet: MNIST batches are strongly
/// sublinear, so unbatched sizing understates capacity ~3×.
fn mean_for(effective_service: f64, replicas_worth: f64) -> u64 {
    (effective_service / (replicas_worth * LOAD)).max(1.0) as u64
}

fn scenarios(effective_service: f64, service: u64, horizon: u64) -> Vec<Scenario> {
    let peak_mean = mean_for(effective_service, PEAK_REPLICAS as f64);
    let base_mean = mean_for(effective_service, LOW_REPLICAS as f64 * 0.75);
    vec![
        Scenario {
            name: "diurnal",
            trace: with_qos(
                DiurnalTrace::new(vec![(MODEL, peak_mean)], horizon)
                    .with_trough_to_peak(0.2)
                    .generate(SEED),
                service,
            ),
        },
        Scenario {
            name: "bursty",
            trace: with_qos(
                BurstyTrace::new(vec![(MODEL, base_mean)], horizon / 16, horizon / 8, horizon)
                    .with_burst_multiplier(4.0)
                    .generate(SEED),
                service,
            ),
        },
        Scenario {
            name: "flash-crowd",
            trace: with_qos(
                FlashCrowdTrace::new(
                    vec![(MODEL, base_mean)],
                    4.0,
                    horizon / 3,
                    horizon / 2,
                    horizon,
                )
                .generate(SEED),
                service,
            ),
        },
    ]
}

fn serving_options(interval: u64) -> ServingOptions {
    ServingOptions::new(DispatchPolicy::LeastLoaded)
        .with_batching(MAX_BATCH)
        .with_telemetry(interval)
}

fn run_static(replicas: usize, trace: &ClusterTrace, interval: u64) -> ServingReport {
    let mut fleet = deploy_fleet(replicas);
    ClusterServingSim::new(serving_options(interval)).run(&mut fleet, trace)
}

fn autopilot_controller(interval: u64) -> Autopilot {
    Autopilot::new().with_model(ScalingSpec::new(
        replica_spec(),
        LOW_REPLICAS,
        MAX_REPLICAS,
        AutoscalePolicy::TargetTracking(
            TargetTracking::new(MAX_BATCH as f64, interval * 2)
                .with_max_miss_rate(TARGET_MISS_RATE / 2.0),
        ),
    ))
}

fn run_autopilot(trace: &ClusterTrace, interval: u64) -> (ServingReport, usize) {
    let mut fleet = deploy_fleet(LOW_REPLICAS);
    let mut pilot = autopilot_controller(interval);
    let report = ClusterServingSim::new(serving_options(interval))
        .run_with_controller(&mut fleet, trace, &mut pilot);
    (report, fleet.total_vnpus())
}

#[allow(clippy::too_many_arguments)]
fn print_row(scenario: &str, regime: &str, start: usize, end: usize, report: &ServingReport) {
    println!(
        "{:<12} {:<12} {:>5} {:>4} {:>8} {:>10} {:>9} {:>6.1}% {:>12} {:>10.3} {:>4} {:>5}",
        scenario,
        regime,
        start,
        end,
        report.stats.offered,
        report.stats.completed,
        report.stats.rejected(),
        report.deadline.miss_rate() * 100.0,
        report.latency.p99,
        report.replica_cycles as f64 / 1e9,
        report.control.scale_ups,
        report.control.scale_downs,
    );
}

fn main() {
    let config = NpuConfig::single_core();
    bench::print_simulator_config(&config);
    let service = estimated_service_cycles(MODEL, REPLICA_MES, REPLICA_VES, &config);
    let effective_service =
        estimated_batch_service_cycles(MODEL, MAX_BATCH, REPLICA_MES, REPLICA_VES, &config) as f64
            / MAX_BATCH as f64;
    // Horizon scales with NEU10_REQUESTS so CI smoke runs stay fast.
    let horizon = service * 120 * bench::target_requests() as u64;
    let interval = (horizon / 100).max(1);

    println!("# Fig. 30: telemetry-driven autoscaling vs static provisioning");
    println!(
        "# ({BOARDS} boards, {MODEL:?} @ {REPLICA_MES}ME+{REPLICA_VES}VE replicas, batch {MAX_BATCH}, deadline = 10x service, telemetry every {interval} cycles)"
    );
    println!(
        "{:<12} {:<12} {:>5} {:>4} {:>8} {:>10} {:>9} {:>7} {:>12} {:>10} {:>4} {:>5}",
        "scenario",
        "regime",
        "start",
        "end",
        "offered",
        "completed",
        "rejected",
        "miss%",
        "p99",
        "repl_Gcyc",
        "ups",
        "downs"
    );

    let mut diurnal_reports: Option<(ServingReport, ServingReport, ServingReport)> = None;
    for scenario in scenarios(effective_service, service, horizon) {
        let peak = run_static(PEAK_REPLICAS, &scenario.trace, interval);
        print_row(
            scenario.name,
            "static-peak",
            PEAK_REPLICAS,
            PEAK_REPLICAS,
            &peak,
        );
        let low = run_static(LOW_REPLICAS, &scenario.trace, interval);
        print_row(
            scenario.name,
            "static-low",
            LOW_REPLICAS,
            LOW_REPLICAS,
            &low,
        );
        let (auto, end_replicas) = run_autopilot(&scenario.trace, interval);
        print_row(
            scenario.name,
            "autopilot",
            LOW_REPLICAS,
            end_replicas,
            &auto,
        );

        // In every scenario the autopilot must serve the deadline-bound
        // traffic better than the cost-equivalent static baseline.
        assert!(
            auto.deadline.miss_rate() <= low.deadline.miss_rate(),
            "{}: autopilot must not miss more deadlines than static-low ({:.3} vs {:.3})",
            scenario.name,
            auto.deadline.miss_rate(),
            low.deadline.miss_rate()
        );
        assert!(
            auto.control.scale_ups > 0,
            "{}: the changing load must trigger scale-ups",
            scenario.name
        );
        if scenario.name == "diurnal" {
            diurnal_reports = Some((peak, low, auto));
        }
    }

    // The figure's headline, on the diurnal scenario: autopilot rides the
    // demand curve — fewer provisioned replica-cycles than peak-static,
    // misses within the operator's budget.
    let (peak, low, auto) = diurnal_reports.expect("diurnal swept above");
    println!();
    println!(
        "# diurnal: autopilot {:.3} replica-Gcycles vs static-peak {:.3} ({:.0}% saved), miss {:.2}% (budget {:.0}%)",
        auto.replica_cycles as f64 / 1e9,
        peak.replica_cycles as f64 / 1e9,
        (1.0 - auto.replica_cycles as f64 / peak.replica_cycles.max(1) as f64) * 100.0,
        auto.deadline.miss_rate() * 100.0,
        TARGET_MISS_RATE * 100.0
    );
    assert!(
        auto.replica_cycles < peak.replica_cycles,
        "autopilot must provision fewer replica-cycles than peak-static ({} vs {})",
        auto.replica_cycles,
        peak.replica_cycles
    );
    assert!(
        auto.deadline.miss_rate() <= TARGET_MISS_RATE,
        "autopilot must keep the diurnal miss rate within the target band ({:.4} > {:.4})",
        auto.deadline.miss_rate(),
        TARGET_MISS_RATE
    );
    assert!(
        low.deadline.miss_rate() > auto.deadline.miss_rate() || low.latency.p99 > auto.latency.p99,
        "static-low must pay for its savings in misses or tail latency"
    );
    assert!(
        auto.control.released > 0,
        "the evening ramp-down must release replicas (drain-then-release)"
    );

    // Determinism: the whole control loop — telemetry, autoscaler state,
    // placements, drains — reproduces bit-identically from the seed.
    let trace = scenarios(effective_service, service, horizon)
        .remove(0)
        .trace;
    let (first, _) = run_autopilot(&trace, interval);
    let (second, _) = run_autopilot(&trace, interval);
    assert_eq!(
        first, second,
        "the same seed must reproduce an identical autopilot report"
    );
    println!("# autopilot diurnal rerun: identical report (deterministic control loop)");
}
