//! Fig. 28 (extension): cluster scaling under open-loop load.
//!
//! Sweeps the serving fleet from 1 to 16 boards (plus one empty standby
//! board), deploys one DLRM and one NCF serving replica per serving
//! board, offers a Poisson arrival stream sized to ~80% of fleet capacity,
//! and reports aggregate throughput and tail latency for every dispatch
//! policy. Every run also cold-migrates the first replica onto the standby
//! board a quarter into the trace, so the latency cost of moving a tenant is
//! visible in the same table: every policy skips the dark replica while it
//! transfers, but they spread the displaced load differently — least-loaded
//! levels queues by outstanding work, round-robin alternates blindly — so
//! their p99s diverge.
//!
//! Output columns: nodes, policy, offered, completed, rejected,
//! throughput (rps), p50 / p99 latency (cycles).

use cluster::{
    estimated_service_cycles, ClusterServingSim, DeploySpec, DispatchPolicy, NodeId, NpuCluster,
    PlacementPolicy, ServingOptions, VnpuHandle,
};
use npu_sim::{Cycles, NpuConfig};
use workloads::{ClusterTrace, ModelId};

// Two models with comparable per-request service times (~0.45M cycles at
// 2 MEs / 2 VEs), so both arrival streams stay live across the whole run.
const MODEL_A: ModelId = ModelId::Dlrm;
const MODEL_B: ModelId = ModelId::Ncf;
const REPLICA_MES: usize = 2;
const REPLICA_VES: usize = 2;
const REPLICA_SRAM: u64 = 32 << 20;
const REPLICA_HBM: u64 = 1 << 30;
const TARGET_UTILIZATION: f64 = 0.8;

/// `nodes` serving boards plus one empty standby board (the migration
/// destination), two replicas per serving board.
fn deploy_fleet(nodes: usize) -> (NpuCluster, Vec<VnpuHandle>) {
    let config = NpuConfig::single_core();
    let mut fleet = NpuCluster::homogeneous(nodes + 1, &config);
    let mut handles = Vec::new();
    for _ in 0..nodes {
        for model in [MODEL_A, MODEL_B] {
            handles.push(
                fleet
                    .deploy(
                        DeploySpec::replica(model, REPLICA_MES, REPLICA_VES)
                            .with_memory(REPLICA_SRAM, REPLICA_HBM),
                        PlacementPolicy::BestFit,
                    )
                    .expect("two half-board replicas fit per board"),
            );
        }
    }
    (fleet, handles)
}

/// Builds the offered load for a fleet size: per-model Poisson streams whose
/// rate keeps each replica at ~`TARGET_UTILIZATION`.
fn offered_load(nodes: usize, requests_per_replica: usize, config: &NpuConfig) -> ClusterTrace {
    let streams: Vec<(ModelId, u64)> = [MODEL_A, MODEL_B]
        .into_iter()
        .map(|model| {
            let service = estimated_service_cycles(model, REPLICA_MES, REPLICA_VES, config) as f64;
            let mean = service / (nodes as f64 * TARGET_UTILIZATION);
            (model, mean.max(1.0) as u64)
        })
        .collect();
    ClusterTrace::poisson(&streams, requests_per_replica * nodes, 2028)
}

fn main() {
    let config = NpuConfig::single_core();
    bench::print_simulator_config(&config);
    let requests_per_replica = bench::target_requests() * 8;

    println!("# Fig. 28: cluster scaling, open-loop Poisson load at ~80% utilization");
    println!("# (each run cold-migrates one replica to a standby board at t = horizon/4)");
    println!(
        "{:<6} {:<14} {:>8} {:>10} {:>9} {:>12} {:>12} {:>12}",
        "nodes", "policy", "offered", "completed", "rejected", "rps", "p50_cycles", "p99_cycles"
    );

    let mut one_node_rps = 0.0f64;
    let mut sixteen_node_rps = 0.0f64;
    let mut p99_by_policy_16: Vec<(DispatchPolicy, u64)> = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16] {
        let trace = offered_load(nodes, requests_per_replica, &config);
        for policy in DispatchPolicy::all() {
            let (mut fleet, handles) = deploy_fleet(nodes);
            let standby = NodeId(nodes as u32);
            let options = ServingOptions::new(policy).with_migration(
                Cycles(trace.horizon().get() / 4),
                handles[0],
                standby,
            );
            let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
            let rps = report.throughput_rps(&config);
            println!(
                "{:<6} {:<14} {:>8} {:>10} {:>9} {:>12.1} {:>12} {:>12}",
                nodes,
                policy.label(),
                report.stats.offered,
                report.stats.completed,
                report.stats.rejected(),
                rps,
                report.latency.p50,
                report.latency.p99
            );
            if policy == DispatchPolicy::LeastLoaded {
                if nodes == 1 {
                    one_node_rps = rps;
                }
                if nodes == 16 {
                    sixteen_node_rps = rps;
                }
            }
            if nodes == 16 {
                p99_by_policy_16.push((policy, report.latency.p99));
            }
            for migration in &report.migrations {
                println!(
                    "#   migration {} -> {}: {} MiB state, drain {} + transfer {} + remap {} = {} cycles downtime",
                    migration.from,
                    migration.to,
                    migration.state_bytes >> 20,
                    migration.drain_cycles,
                    migration.transfer_cycles,
                    migration.remap_cycles,
                    migration.downtime().get()
                );
            }
            assert_eq!(
                report.migrations.len(),
                1,
                "the scheduled cold migration must execute"
            );
        }
    }

    println!();
    println!(
        "# scale-up: 16-node / 1-node aggregate throughput = {:.2}x",
        if one_node_rps > 0.0 {
            sixteen_node_rps / one_node_rps
        } else {
            0.0
        }
    );
    assert!(
        sixteen_node_rps > one_node_rps,
        "a 16-node fleet must outserve a single node ({sixteen_node_rps:.1} vs {one_node_rps:.1} rps)"
    );
    let rr = p99_by_policy_16
        .iter()
        .find(|(p, _)| *p == DispatchPolicy::RoundRobin)
        .map(|(_, p99)| *p99)
        .unwrap_or(0);
    let ll = p99_by_policy_16
        .iter()
        .find(|(p, _)| *p == DispatchPolicy::LeastLoaded)
        .map(|(_, p99)| *p99)
        .unwrap_or(0);
    println!("# p99 at 16 nodes: round-robin {rr} vs least-loaded {ll} cycles");
    assert_ne!(
        rr, ll,
        "round-robin and least-loaded must produce measurably different p99"
    );
}
