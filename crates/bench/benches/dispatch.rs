//! Dispatch hot-path microbenchmark: indexed candidate lookup versus the
//! per-arrival candidate rebuild it replaced, measured through the full
//! serving loop on a replica-dense fleet (the regime where the rebuild's
//! O(replicas²)-per-arrival cost dominates).
//!
//! The bench also runs under a counting allocator and verifies two
//! allocation budgets on top of the timing numbers:
//!
//! * the telemetry sampling path is allocation-free at steady state: a run
//!   with dense sampling must not allocate once per tick on top of the
//!   identical telemetry-off run (the regression `telemetry::sample()` used
//!   to have — fresh frame vectors and model maps every tick);
//! * the observability instrumentation is free when disabled: a run through
//!   the `&mut dyn ObsSink` entry point with a [`NoopSink`] must allocate
//!   **exactly** as many times as the plain `run` path — the hooks left in
//!   the dispatch hot path add zero allocations without a live recorder.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cluster::{
    estimated_batch_service_cycles, ClusterServingSim, DeploySpec, DispatchPolicy, NoopSink,
    NpuCluster, PlacementPolicy, ServingOptions,
};
use npu_sim::NpuConfig;
use workloads::{ClusterTrace, ModelId};

/// The system allocator behind a heap-allocation counter, so the bench can
/// assert allocation budgets instead of eyeballing profiles.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BOARDS: usize = 8;
const REPLICAS: usize = 64;
const MAX_BATCH: usize = 8;
const ARRIVALS_PER_MODEL: usize = 4_000;

fn models() -> [ModelId; 4] {
    [ModelId::Mnist, ModelId::Ncf, ModelId::Dlrm, ModelId::ResNet]
}

fn fleet() -> NpuCluster {
    let npu = NpuConfig::tpu_v4_like();
    let mut fleet = NpuCluster::homogeneous(BOARDS, &npu);
    let models = models();
    for index in 0..REPLICAS {
        fleet
            .deploy(
                DeploySpec::replica(models[index % models.len()], 2, 2)
                    .with_memory(32 << 20, 1 << 30),
                PlacementPolicy::WorstFit,
            )
            .expect("bench fleet capacity");
    }
    fleet
}

fn trace() -> ClusterTrace {
    let npu = NpuConfig::tpu_v4_like();
    let replicas_per_model = REPLICAS / models().len();
    let streams: Vec<(ModelId, u64)> = models()
        .iter()
        .map(|model| {
            let batch = estimated_batch_service_cycles(*model, MAX_BATCH, 2, 2, &npu) as f64;
            let gap = batch / (replicas_per_model as f64 * MAX_BATCH as f64 * 0.7);
            (*model, gap.max(1.0) as u64)
        })
        .collect();
    ClusterTrace::poisson(&streams, ARRIVALS_PER_MODEL, 11)
}

/// Asserts the telemetry sampling path allocates nothing per tick at steady
/// state: the allocation delta between a densely-sampled run and the
/// identical telemetry-off run must stay far below one allocation per tick.
fn verify_telemetry_sampling_is_allocation_free() {
    let trace = trace();
    let npu = NpuConfig::tpu_v4_like();
    let interval =
        (estimated_batch_service_cycles(ModelId::Mnist, MAX_BATCH, 2, 2, &npu) * 4).max(1);
    let run = |telemetry: bool| {
        let mut fleet = fleet();
        let mut options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(MAX_BATCH);
        if telemetry {
            options = options.with_telemetry(interval);
        }
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let report = ClusterServingSim::new(options).run(&mut fleet, &trace);
        let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
        (allocations, report)
    };
    let (base_allocations, base) = run(false);
    let (sampled_allocations, sampled) = run(true);
    let ticks = sampled.control.samples as u64;
    assert!(ticks > 100, "the scenario must sample densely ({ticks})");
    assert_eq!(base.stats.completed, sampled.stats.completed);
    let delta = sampled_allocations.saturating_sub(base_allocations);
    // Warm-up allocates the frame scratch, the per-model windows and their
    // sample buffers — a small constant. Per-tick steady state must be free:
    // anything growing with the tick count is the old regression.
    assert!(
        delta < ticks / 2,
        "telemetry sampling must not allocate per tick: \
         {delta} extra allocations over {ticks} ticks"
    );
    println!(
        "telemetry-alloc: {delta} extra allocations over {ticks} ticks (allocation-free steady state)"
    );
}

/// Asserts the observability hooks are free when no recorder is attached:
/// `run` (statically monomorphized over `NoopSink`) and `run_observed` with
/// an explicit `&mut NoopSink` (the dynamic-dispatch entry point) must
/// allocate exactly the same number of times — obs-disabled adds 0
/// allocations to the dispatch path.
fn verify_obs_disabled_adds_zero_allocations() {
    let trace = trace();
    let run = |observed: bool| {
        let mut fleet = fleet();
        let sim = ClusterServingSim::new(
            ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(MAX_BATCH),
        );
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let report = if observed {
            sim.run_observed(&mut fleet, &trace, &mut NoopSink)
        } else {
            sim.run(&mut fleet, &trace)
        };
        let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
        (allocations, report)
    };
    let (base_allocations, base) = run(false);
    let (noop_allocations, noop) = run(true);
    assert_eq!(base, noop, "a no-op sink must not change the simulation");
    assert_eq!(
        base_allocations, noop_allocations,
        "obs-disabled must add 0 allocations on the dispatch path: \
         plain run {base_allocations}, noop-sink run {noop_allocations}"
    );
    println!(
        "obs-alloc: noop-sink run allocates exactly the plain run's {base_allocations} \
         allocations (obs-disabled adds 0)"
    );
}

fn bench_dispatch(c: &mut Criterion) {
    verify_telemetry_sampling_is_allocation_free();
    verify_obs_disabled_adds_zero_allocations();
    let trace = trace();
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut fleet = fleet();
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(MAX_BATCH);
            black_box(ClusterServingSim::new(options).run(&mut fleet, &trace))
        })
    });
    group.bench_function("reference-rebuild", |b| {
        b.iter(|| {
            let mut fleet = fleet();
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
                .with_batching(MAX_BATCH)
                .with_reference_dispatch();
            black_box(ClusterServingSim::new(options).run(&mut fleet, &trace))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
