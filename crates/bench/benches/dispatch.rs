//! Dispatch hot-path microbenchmark: indexed candidate lookup versus the
//! per-arrival candidate rebuild it replaced, measured through the full
//! serving loop on a replica-dense fleet (the regime where the rebuild's
//! O(replicas²)-per-arrival cost dominates).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cluster::{
    estimated_batch_service_cycles, ClusterServingSim, DeploySpec, DispatchPolicy, NpuCluster,
    PlacementPolicy, ServingOptions,
};
use npu_sim::NpuConfig;
use workloads::{ClusterTrace, ModelId};

const BOARDS: usize = 8;
const REPLICAS: usize = 64;
const MAX_BATCH: usize = 8;
const ARRIVALS_PER_MODEL: usize = 4_000;

fn models() -> [ModelId; 4] {
    [ModelId::Mnist, ModelId::Ncf, ModelId::Dlrm, ModelId::ResNet]
}

fn fleet() -> NpuCluster {
    let npu = NpuConfig::tpu_v4_like();
    let mut fleet = NpuCluster::homogeneous(BOARDS, &npu);
    let models = models();
    for index in 0..REPLICAS {
        fleet
            .deploy(
                DeploySpec::replica(models[index % models.len()], 2, 2)
                    .with_memory(32 << 20, 1 << 30),
                PlacementPolicy::WorstFit,
            )
            .expect("bench fleet capacity");
    }
    fleet
}

fn trace() -> ClusterTrace {
    let npu = NpuConfig::tpu_v4_like();
    let replicas_per_model = REPLICAS / models().len();
    let streams: Vec<(ModelId, u64)> = models()
        .iter()
        .map(|model| {
            let batch = estimated_batch_service_cycles(*model, MAX_BATCH, 2, 2, &npu) as f64;
            let gap = batch / (replicas_per_model as f64 * MAX_BATCH as f64 * 0.7);
            (*model, gap.max(1.0) as u64)
        })
        .collect();
    ClusterTrace::poisson(&streams, ARRIVALS_PER_MODEL, 11)
}

fn bench_dispatch(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut fleet = fleet();
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded).with_batching(MAX_BATCH);
            black_box(ClusterServingSim::new(options).run(&mut fleet, &trace))
        })
    });
    group.bench_function("reference-rebuild", |b| {
        b.iter(|| {
            let mut fleet = fleet();
            let options = ServingOptions::new(DispatchPolicy::LeastLoaded)
                .with_batching(MAX_BATCH)
                .with_reference_dispatch();
            black_box(ClusterServingSim::new(options).run(&mut fleet, &trace))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
