//! Criterion micro-benchmarks for one step of the µTOp / operation scheduler
//! (the engine-assignment computation of §III-E).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neu10::scheduler::{compute_assignment, SharingPolicy, TenantSnapshot};
use neu10::VnpuId;

fn tenants(count: u32) -> Vec<TenantSnapshot> {
    (0..count)
        .map(|i| TenantSnapshot {
            vnpu: VnpuId(i),
            allocated_mes: 2,
            allocated_ves: 2,
            priority: 1 + i % 3,
            me_demand: (i % 5) as usize,
            ve_demand: ((i + 2) % 5) as usize,
            has_work: i % 7 != 0,
            active_cycles: u64::from(i) * 10_000,
            holds_engines: i % 3 == 0,
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(50);

    let two = tenants(2);
    let eight = tenants(8);
    for policy in SharingPolicy::all() {
        group.bench_function(format!("assign_2_tenants_{}", policy.label()), |b| {
            b.iter(|| compute_assignment(black_box(policy), black_box(&two), 4, 4))
        });
    }
    group.bench_function("assign_8_tenants_neu10", |b| {
        b.iter(|| compute_assignment(SharingPolicy::Neu10, black_box(&eight), 8, 8))
    });

    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
