//! Criterion benchmarks for the cluster fleet layer: placement throughput
//! and the open-loop serving simulator, swept from 1 to 16 nodes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cluster::{
    ClusterServingSim, DeploySpec, DispatchPolicy, NpuCluster, PlacementPolicy, ServingOptions,
};
use npu_sim::NpuConfig;
use workloads::{ClusterTrace, ModelId};

fn deploy_fleet(nodes: usize) -> NpuCluster {
    let mut fleet = NpuCluster::homogeneous(nodes, &NpuConfig::single_core());
    for _ in 0..nodes {
        for model in [ModelId::Mnist, ModelId::Ncf] {
            fleet
                .deploy(
                    DeploySpec::replica(model, 2, 2),
                    PlacementPolicy::TopologyAware,
                )
                .expect("two replicas fit per board");
        }
    }
    fleet
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);

    for policy in PlacementPolicy::all() {
        group.bench_function(format!("place_32_replicas_{}", policy.label()), |b| {
            b.iter(|| {
                let mut fleet = NpuCluster::homogeneous(16, &NpuConfig::single_core());
                for index in 0..32 {
                    let model = if index % 2 == 0 {
                        ModelId::Mnist
                    } else {
                        ModelId::Ncf
                    };
                    fleet
                        .deploy(DeploySpec::replica(model, 2, 2), black_box(policy))
                        .expect("32 half-board replicas fit on 16 boards");
                }
                fleet.total_vnpus()
            })
        });
    }

    for nodes in [1usize, 4, 16] {
        let trace = ClusterTrace::poisson(
            &[(ModelId::Mnist, 40_000), (ModelId::Ncf, 40_000)],
            25 * nodes,
            11,
        );
        group.bench_function(format!("serve_open_loop_{nodes}_nodes"), |b| {
            b.iter(|| {
                let mut fleet = deploy_fleet(nodes);
                ClusterServingSim::new(ServingOptions::new(DispatchPolicy::LeastLoaded))
                    .run(&mut fleet, black_box(&trace))
                    .stats
                    .completed
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
