//! Criterion benchmark for a full collocation run (one workload pair under
//! each sharing policy, two requests per tenant).

use criterion::{criterion_group, criterion_main, Criterion};
use neu10::{CollocationSim, SharingPolicy, SimOptions, TenantSpec};
use npu_sim::NpuConfig;
use workloads::ModelId;

fn bench_end_to_end(c: &mut Criterion) {
    let config = NpuConfig::single_core();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    for policy in SharingPolicy::all() {
        group.bench_function(format!("ncf_mnist_pair_{}", policy.label()), |b| {
            b.iter(|| {
                CollocationSim::new(
                    &config,
                    SimOptions::new(policy),
                    vec![
                        TenantSpec::evaluation(0, ModelId::Ncf, 2),
                        TenantSpec::evaluation(1, ModelId::Mnist, 2),
                    ],
                )
                .run()
            })
        });
    }
    group.bench_function("dlrm_efficientnet_pair_neu10", |b| {
        b.iter(|| {
            CollocationSim::new(
                &config,
                SimOptions::new(SharingPolicy::Neu10),
                vec![
                    TenantSpec::evaluation(0, ModelId::Dlrm, 2),
                    TenantSpec::evaluation(1, ModelId::EfficientNet, 2),
                ],
            )
            .run()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
