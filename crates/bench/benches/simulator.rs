//! Criterion micro-benchmarks for the discrete-event kernel and the memory
//! models of the NPU simulator substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use npu_sim::{Cycles, EventQueue, Frequency, HbmModel, NpuBoard, NpuConfig};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(30);

    group.bench_function("event_queue_10k", |b| {
        b.iter(|| {
            let mut queue: EventQueue<u32> = EventQueue::new();
            for i in 0..10_000u32 {
                queue.schedule_at(Cycles(u64::from(i % 997) * 3), i);
            }
            let mut sum = 0u64;
            while let Some(event) = queue.pop() {
                sum += u64::from(event.payload);
            }
            black_box(sum)
        })
    });

    group.bench_function("hbm_bandwidth_timeline", |b| {
        let mut hbm = HbmModel::new(1 << 34, 1.2e12, Frequency::default());
        for i in 0..1_000u64 {
            hbm.record_transfer(
                Cycles(i * 100),
                Cycles(i * 100 + 250),
                1 << 16,
                (i % 4) as u32,
            );
        }
        b.iter(|| hbm.bandwidth_timeline(Cycles(1_000), Cycles(100_000)))
    });

    group.bench_function("board_construction", |b| {
        let config = NpuConfig::tpu_v4_like();
        b.iter(|| NpuBoard::new(black_box(&config)))
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
