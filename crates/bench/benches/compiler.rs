//! Criterion micro-benchmarks for the NeuISA / VLIW operator compiler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neuisa::compiler::{Compiler, CompilerOptions};
use neuisa::{Activation, OperatorKind, TensorOperator};
use npu_sim::NpuConfig;
use workloads::{InferenceGraph, ModelId};

fn bench_compiler(c: &mut Criterion) {
    let config = NpuConfig::tpu_v4_like();
    let compiler = Compiler::new(&config, CompilerOptions::default());
    let mut group = c.benchmark_group("compiler");
    group.sample_size(20);

    let op = TensorOperator::new(
        "bench_matmul",
        OperatorKind::MatMul {
            m: 1024,
            k: 1024,
            n: 1024,
        },
    )
    .with_activation(Activation::Relu);
    group.bench_function("compile_operator_neuisa", |b| {
        b.iter(|| compiler.compile_operator(black_box(&op)))
    });
    group.bench_function("compile_operator_vliw", |b| {
        b.iter(|| compiler.compile_vliw(black_box(&op)))
    });

    let bert = InferenceGraph::build(ModelId::Bert, 8);
    group.bench_function("compile_graph_bert_b8", |b| {
        b.iter(|| compiler.compile_graph(black_box(bert.operators().to_vec())))
    });
    group.bench_function("neuisa_overhead_bert_b8", |b| {
        b.iter(|| compiler.neuisa_overhead(black_box(bert.operators())))
    });

    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
