//! Criterion micro-benchmarks for the vNPU allocator (Eq. 1–4 and the
//! Fig. 12 sweep).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use neu10::{allocation_sweep, split_eus, VnpuAllocator};
use npu_sim::NpuConfig;
use workloads::{InferenceGraph, ModelId, WorkloadProfile};

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.sample_size(20);

    group.bench_function("split_eus", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for eus in 2..=16 {
                let split = split_eus(black_box(eus), black_box(0.82), black_box(0.41));
                total += split.mes;
            }
            total
        })
    });

    group.bench_function("allocation_sweep_16eu", |b| {
        b.iter(|| allocation_sweep(black_box(0.82), black_box(0.41), black_box(16)))
    });

    let config = NpuConfig::tpu_v4_like();
    let profile = WorkloadProfile::analyze(ModelId::ResNet, 32, &config);
    let footprint = InferenceGraph::build(ModelId::ResNet, 32).hbm_footprint_bytes();
    let allocator = VnpuAllocator::new(&config);
    group.bench_function("recommend_resnet", |b| {
        b.iter(|| allocator.recommend(black_box(&profile), black_box(4), black_box(footprint)))
    });

    group.finish();
}

criterion_group!(benches, bench_allocator);
criterion_main!(benches);
