//! Slot-level operations of the VLIW / NeuISA instruction formats.
//!
//! An NPU VLIW instruction bundles one operation per hardware slot: push/pop
//! operations for each matrix engine, ALU operations for each vector engine,
//! load/store operations against the on-chip SRAM and a miscellaneous slot for
//! DMA and synchronization (§II-A).

use std::fmt;

/// A vector register index in the vector register file.
pub type VReg = u8;

/// Activation functions that can be fused onto a matrix operator's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation — the raw accumulator values are written back.
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (used by transformer MLP blocks).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Relative VE cost of applying this activation to one element, in VE
    /// "simple op" units (a ReLU costs 1; transcendental activations are
    /// approximated with short polynomial sequences).
    pub fn ve_op_cost(self) -> u64 {
        match self {
            Activation::None => 0,
            Activation::Relu => 1,
            Activation::Sigmoid | Activation::Tanh => 3,
            Activation::Gelu => 4,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::None => "none",
            Activation::Relu => "relu",
            Activation::Gelu => "gelu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        };
        f.write_str(name)
    }
}

/// An operation occupying a matrix-engine slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeOp {
    /// Push a weight tile into the systolic array.
    PushWeights {
        /// SRAM tile identifier being loaded.
        tile: u32,
    },
    /// Push a block of activations through the array.
    PushActivations {
        /// Source vector register holding the activations.
        src: VReg,
    },
    /// Pop an output vector from the array into a vector register.
    Pop {
        /// Destination vector register.
        dst: VReg,
    },
    /// The slot is unused this instruction.
    Nop,
}

impl MeOp {
    /// Whether the slot actually performs work.
    pub fn is_nop(&self) -> bool {
        matches!(self, MeOp::Nop)
    }
}

/// An operation occupying a vector-engine slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VeOp {
    /// Element-wise binary arithmetic between two registers.
    Binary {
        /// Destination register.
        dst: VReg,
        /// Left operand register.
        lhs: VReg,
        /// Right operand register.
        rhs: VReg,
    },
    /// Apply an activation function to a register in place.
    Activate {
        /// Register transformed in place.
        reg: VReg,
        /// Activation applied.
        activation: Activation,
    },
    /// Reduce a register (e.g. a partial-sum accumulation across tiles).
    Reduce {
        /// Destination register receiving the reduction result.
        dst: VReg,
        /// Source register being reduced.
        src: VReg,
    },
    /// Copy one register to another.
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// The slot is unused this instruction.
    Nop,
}

impl VeOp {
    /// Whether the slot actually performs work.
    pub fn is_nop(&self) -> bool {
        matches!(self, VeOp::Nop)
    }
}

/// An operation occupying the load/store slot (on-chip SRAM accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load a vector from SRAM into a register.
    Load {
        /// Destination register.
        dst: VReg,
        /// SRAM segment-relative offset in bytes.
        offset: u64,
    },
    /// Store a register into SRAM.
    Store {
        /// Source register.
        src: VReg,
        /// SRAM segment-relative offset in bytes.
        offset: u64,
    },
    /// The slot is unused this instruction.
    Nop,
}

/// An operation occupying the miscellaneous slot (DMA, sync, control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MiscOp {
    /// Start an asynchronous DMA transfer between HBM and SRAM.
    Dma {
        /// Bytes moved by the transfer.
        bytes: u64,
        /// True if the transfer reads from HBM into SRAM.
        into_sram: bool,
    },
    /// Wait for outstanding DMA transfers to finish.
    WaitDma,
    /// A NeuISA control instruction (only valid inside µTOps).
    Control(crate::control::ControlInstruction),
    /// The slot is unused this instruction.
    Nop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_costs_are_ordered() {
        assert_eq!(Activation::None.ve_op_cost(), 0);
        assert!(Activation::Relu.ve_op_cost() < Activation::Gelu.ve_op_cost());
        assert_eq!(Activation::default(), Activation::None);
    }

    #[test]
    fn nop_detection() {
        assert!(MeOp::Nop.is_nop());
        assert!(!MeOp::Pop { dst: 0 }.is_nop());
        assert!(VeOp::Nop.is_nop());
        assert!(!VeOp::Activate {
            reg: 1,
            activation: Activation::Relu
        }
        .is_nop());
    }

    #[test]
    fn activation_display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Gelu.to_string(), "gelu");
    }
}
