//! A functional executor for NeuISA programs.
//!
//! The executor walks a [`NeuIsaProgram`]'s µTOp execution table the way the
//! hardware front-end of Fig. 17 does: groups execute in sequence (unless a
//! `uTop.nextGroup` redirects control), the µTOps inside a group dispatch
//! onto however many MEs are currently available, and `uTop.group` /
//! `uTop.index` expose a µTOp's coordinates through the scalar register file.
//!
//! This is the piece that demonstrates the paper's inter-generational
//! compatibility claim (§IV): the *same* binary runs on 1 ME or 8 MEs without
//! recompilation — only the dispatch schedule changes.

use std::collections::BTreeMap;

use npu_sim::Cycles;

use crate::control::{ControlInstruction, NextGroupConflict, ScalarRegisterFile};
use crate::utop::{NeuIsaProgram, UTopId, UTopKind};

/// One dispatch record: a µTOp executed during one visit of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The group (execution-table row) being executed.
    pub group: u32,
    /// How many times this group had been entered before (0 for the first
    /// visit; >0 only for loops built with `uTop.nextGroup`).
    pub iteration: u32,
    /// The dispatched µTOp.
    pub utop: UTopId,
    /// The wave within the group in which the µTOp was dispatched (wave 0
    /// runs first; later waves exist when there are fewer MEs than ME µTOps).
    pub wave: u32,
}

/// The outcome of executing a NeuISA program.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Every µTOp dispatch, in dispatch order.
    pub dispatches: Vec<DispatchRecord>,
    /// Estimated makespan in cycles: waves within a group run sequentially,
    /// µTOps within a wave run concurrently, groups run sequentially.
    pub makespan: Cycles,
    /// Total ME busy cycles.
    pub me_busy: Cycles,
    /// Total VE busy cycles.
    pub ve_busy: Cycles,
    /// Number of times each group was entered.
    pub group_visits: BTreeMap<u32, u32>,
}

impl ExecutionTrace {
    /// The dispatched µTOps in order.
    pub fn dispatched_utops(&self) -> Vec<UTopId> {
        self.dispatches.iter().map(|d| d.utop).collect()
    }

    /// Average ME utilization over the makespan given `available_mes`.
    pub fn me_utilization(&self, available_mes: usize) -> f64 {
        if self.makespan.is_zero() || available_mes == 0 {
            return 0.0;
        }
        (self.me_busy.get() as f64 / (self.makespan.get() as f64 * available_mes as f64)).min(1.0)
    }
}

/// Errors raised while executing a NeuISA program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecutionError {
    /// Two µTOps of the same group requested different next groups.
    NextGroupConflict(NextGroupConflict),
    /// `uTop.nextGroup` named a group that does not exist in the table.
    UnknownGroup {
        /// The requested group index.
        group: u32,
    },
    /// The executor hit the iteration limit (a runaway `uTop.nextGroup` loop).
    IterationLimit {
        /// The limit that was exceeded.
        limit: u32,
    },
    /// The program failed structural validation before execution.
    InvalidProgram(crate::utop::ProgramError),
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::NextGroupConflict(c) => write!(f, "{c}"),
            ExecutionError::UnknownGroup { group } => {
                write!(f, "uTop.nextGroup targets unknown group {group}")
            }
            ExecutionError::IterationLimit { limit } => {
                write!(f, "group iteration limit of {limit} exceeded")
            }
            ExecutionError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Configuration of the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// MEs available to the program at runtime (need not match compile time).
    pub available_mes: usize,
    /// VEs available to the program at runtime.
    pub available_ves: usize,
    /// Safety bound on the total number of group visits.
    pub max_group_visits: u32,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            available_mes: 4,
            available_ves: 4,
            max_group_visits: 65_536,
        }
    }
}

/// Executes NeuISA programs against a configurable number of engines.
#[derive(Debug, Clone)]
pub struct Executor {
    config: ExecutorConfig,
    registers: ScalarRegisterFile,
}

impl Executor {
    /// Creates an executor.
    pub fn new(config: ExecutorConfig) -> Self {
        Executor {
            config,
            registers: ScalarRegisterFile::default(),
        }
    }

    /// The executor configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Executes `program` to completion.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecutionError`] for structurally invalid programs,
    /// conflicting or out-of-range `uTop.nextGroup` targets, and runaway
    /// loops.
    pub fn execute(&mut self, program: &NeuIsaProgram) -> Result<ExecutionTrace, ExecutionError> {
        program.validate().map_err(ExecutionError::InvalidProgram)?;
        let groups = program.groups();
        let mut dispatches = Vec::new();
        let mut group_visits: BTreeMap<u32, u32> = BTreeMap::new();
        let mut makespan = Cycles::ZERO;
        let mut me_busy = Cycles::ZERO;
        let mut ve_busy = Cycles::ZERO;

        let mut current_group = 0u32;
        let mut total_visits = 0u32;
        while (current_group as usize) < groups.len() {
            if total_visits >= self.config.max_group_visits {
                return Err(ExecutionError::IterationLimit {
                    limit: self.config.max_group_visits,
                });
            }
            total_visits += 1;
            let iteration = *group_visits
                .entry(current_group)
                .and_modify(|v| *v += 1)
                .or_insert(0);

            let group = &groups[current_group as usize];
            let mut next_group: Option<u32> = None;
            let mut group_cycles = Cycles::ZERO;

            // ME µTOps dispatch in waves of `available_mes`; the group's VE
            // µTOp (if any) runs alongside the first wave.
            let me_utops = group.me_utops();
            let wave_width = self.config.available_mes.max(1);
            let waves = me_utops.len().div_ceil(wave_width).max(1);
            for wave in 0..waves {
                let mut wave_cycles = Cycles::ZERO;
                let start = wave * wave_width;
                let end = (start + wave_width).min(me_utops.len());
                for (slot, id) in me_utops[start..end].iter().enumerate() {
                    let utop = program.utop(*id).expect("validated above"); // simlint::allow(P1, reason = "program validation resolved every utop id at load")
                    debug_assert_eq!(utop.kind(), UTopKind::MatrixEngine);
                    me_busy += utop.me_cycles();
                    ve_busy += utop.ve_cycles();
                    wave_cycles = wave_cycles.max(utop.pipelined_cycles());
                    dispatches.push(DispatchRecord {
                        group: current_group,
                        iteration,
                        utop: *id,
                        wave: wave as u32,
                    });
                    self.run_controls(
                        program,
                        *id,
                        current_group,
                        (start + slot) as u32,
                        &mut next_group,
                    )?;
                }
                if wave == 0 {
                    if let Some(id) = group.ve_utop() {
                        let utop = program.utop(id).expect("validated above"); // simlint::allow(P1, reason = "program validation resolved every utop id at load")
                        ve_busy += utop.ve_cycles();
                        wave_cycles = wave_cycles.max(utop.pipelined_cycles());
                        dispatches.push(DispatchRecord {
                            group: current_group,
                            iteration,
                            utop: id,
                            wave: 0,
                        });
                        self.run_controls(program, id, current_group, 0, &mut next_group)?;
                    }
                }
                group_cycles += wave_cycles;
            }
            if me_utops.is_empty() && group.ve_utop().is_none() {
                // An empty group contributes nothing but still sequences.
                group_cycles = Cycles::ZERO;
            }
            makespan += group_cycles;

            current_group = match next_group {
                Some(target) => {
                    if (target as usize) >= groups.len() {
                        return Err(ExecutionError::UnknownGroup { group: target });
                    }
                    target
                }
                None => current_group + 1,
            };
        }

        Ok(ExecutionTrace {
            dispatches,
            makespan,
            me_busy,
            ve_busy,
            group_visits,
        })
    }

    /// Applies a µTOp's control instructions, updating the scalar registers
    /// and the requested next group.
    fn run_controls(
        &mut self,
        program: &NeuIsaProgram,
        id: UTopId,
        group: u32,
        index: u32,
        next_group: &mut Option<u32>,
    ) -> Result<(), ExecutionError> {
        let utop = program.utop(id).expect("caller resolved the id"); // simlint::allow(P1, reason = "program validation resolved every utop id at load")
        for control in utop.control() {
            match *control {
                ControlInstruction::Finish => {}
                ControlInstruction::Group(reg) => self.registers.write(reg, group),
                ControlInstruction::Index(reg) => self.registers.write(reg, index),
                ControlInstruction::NextGroup(reg) => {
                    let target = self.registers.read(reg);
                    match *next_group {
                        Some(existing) if existing != target => {
                            return Err(ExecutionError::NextGroupConflict(NextGroupConflict {
                                group,
                                first: existing,
                                second: target,
                            }));
                        }
                        _ => *next_group = Some(target),
                    }
                }
            }
        }
        Ok(())
    }

    /// The scalar register file (exposed for tests and for seeding loop
    /// counters before execution).
    pub fn registers_mut(&mut self) -> &mut ScalarRegisterFile {
        &mut self.registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, CompilerOptions};
    use crate::control::ScalarRegister;
    use crate::operator::{OperatorKind, TensorOperator};
    use crate::utop::{UTop, UTopGroup};
    use crate::vliw::VliwInstruction;
    use npu_sim::NpuConfig;

    fn me_utop(id: u32, cycles: u64) -> UTop {
        UTop::new(
            UTopId(id),
            UTopKind::MatrixEngine,
            vec![VliwInstruction::nop(1, 2)],
            1,
            Cycles(cycles),
            Cycles(cycles / 10),
            0,
        )
    }

    fn ve_utop(id: u32, cycles: u64) -> UTop {
        UTop::new(
            UTopId(id),
            UTopKind::VectorEngine,
            vec![VliwInstruction::nop(0, 2)],
            1,
            Cycles::ZERO,
            Cycles(cycles),
            0,
        )
    }

    fn four_me_program() -> NeuIsaProgram {
        let utops = vec![
            me_utop(0, 100),
            me_utop(1, 100),
            me_utop(2, 100),
            me_utop(3, 100),
            ve_utop(4, 50),
        ];
        let groups = vec![
            UTopGroup::new()
                .with_me_utop(UTopId(0))
                .with_me_utop(UTopId(1))
                .with_me_utop(UTopId(2))
                .with_me_utop(UTopId(3)),
            UTopGroup::new().with_ve_utop(UTopId(4)),
        ];
        NeuIsaProgram::new("four-me", utops, groups, 4, 2)
    }

    #[test]
    fn same_binary_runs_on_any_me_count() {
        let program = four_me_program();
        let wide = Executor::new(ExecutorConfig {
            available_mes: 4,
            ..ExecutorConfig::default()
        })
        .execute(&program)
        .unwrap();
        let narrow = Executor::new(ExecutorConfig {
            available_mes: 1,
            ..ExecutorConfig::default()
        })
        .execute(&program)
        .unwrap();
        // Every µTOp runs in both cases.
        assert_eq!(wide.dispatches.len(), 5);
        assert_eq!(narrow.dispatches.len(), 5);
        // With one ME the four ME µTOps serialize into four waves.
        assert_eq!(wide.dispatches.iter().map(|d| d.wave).max(), Some(0));
        assert_eq!(narrow.dispatches.iter().map(|d| d.wave).max(), Some(3));
        assert!(narrow.makespan > wide.makespan);
        // The total engine work is identical — only the schedule changes.
        assert_eq!(wide.me_busy, narrow.me_busy);
        assert_eq!(wide.ve_busy, narrow.ve_busy);
        assert!(wide.me_utilization(4) <= 1.0);
    }

    #[test]
    fn next_group_builds_a_loop() {
        // Group 1 jumps back to group 0 once: %r1 holds the target (0), and
        // the executor is seeded so the loop runs exactly twice by making the
        // second visit fall through (the control µTOp only redirects when the
        // register differs from the default fall-through path).
        let mut back_edge = me_utop(1, 10);
        back_edge.push_control(ControlInstruction::NextGroup(ScalarRegister::ZERO));
        let utops = vec![me_utop(0, 10), back_edge, ve_utop(2, 5)];
        let groups = vec![
            UTopGroup::new().with_me_utop(UTopId(0)),
            UTopGroup::new().with_me_utop(UTopId(1)),
            UTopGroup::new().with_ve_utop(UTopId(2)),
        ];
        let program = NeuIsaProgram::new("loop", utops, groups, 4, 2);
        // %r0 always reads zero, so group 1 always jumps back to group 0 —
        // the iteration limit must catch the runaway loop.
        let mut executor = Executor::new(ExecutorConfig {
            max_group_visits: 16,
            ..ExecutorConfig::default()
        });
        let err = executor.execute(&program).unwrap_err();
        assert!(matches!(err, ExecutionError::IterationLimit { limit: 16 }));
    }

    #[test]
    fn group_and_index_are_visible_to_utops() {
        let mut utop = me_utop(0, 10);
        utop.push_control(ControlInstruction::Group(ScalarRegister(5)));
        utop.push_control(ControlInstruction::Index(ScalarRegister(6)));
        let program = NeuIsaProgram::new(
            "coords",
            vec![utop],
            vec![UTopGroup::new().with_me_utop(UTopId(0))],
            4,
            2,
        );
        let mut executor = Executor::new(ExecutorConfig::default());
        executor.execute(&program).unwrap();
        assert_eq!(executor.registers_mut().read(ScalarRegister(5)), 0);
        assert_eq!(executor.registers_mut().read(ScalarRegister(6)), 0);
    }

    #[test]
    fn out_of_range_next_group_is_an_error() {
        let mut jumper = me_utop(0, 10);
        jumper.push_control(ControlInstruction::NextGroup(ScalarRegister(3)));
        let program = NeuIsaProgram::new(
            "bad-jump",
            vec![jumper],
            vec![UTopGroup::new().with_me_utop(UTopId(0))],
            4,
            2,
        );
        let mut executor = Executor::new(ExecutorConfig::default());
        // Seed %r3 with a group index that does not exist.
        executor.registers_mut().write(ScalarRegister(3), 7);
        let err = executor.execute(&program).unwrap_err();
        assert_eq!(err, ExecutionError::UnknownGroup { group: 7 });
    }

    #[test]
    fn compiled_operators_execute_end_to_end() {
        let config = NpuConfig::tpu_v4_like();
        let compiler = Compiler::new(&config, CompilerOptions::default());
        let op = TensorOperator::new(
            "mm",
            OperatorKind::MatMul {
                m: 512,
                k: 4096,
                n: 128,
            },
        );
        let compiled = compiler.compile_operator(&op);
        let mut executor = Executor::new(ExecutorConfig::default());
        let trace = executor.execute(&compiled.program).unwrap();
        assert_eq!(
            trace.dispatches.len(),
            compiled.program.utops().len(),
            "every uTOp must be dispatched exactly once"
        );
        assert_eq!(trace.me_busy, compiled.program.total_me_cycles());
        assert!(trace.makespan >= Cycles(1));
        // Every group was visited exactly once (no loops in a plain matmul).
        assert!(trace.group_visits.values().all(|v| *v == 0));
    }

    #[test]
    fn invalid_programs_are_rejected_before_execution() {
        let program = NeuIsaProgram::new(
            "dangling",
            vec![],
            vec![UTopGroup::new().with_me_utop(UTopId(9))],
            4,
            2,
        );
        let err = Executor::new(ExecutorConfig::default())
            .execute(&program)
            .unwrap_err();
        assert!(matches!(err, ExecutionError::InvalidProgram(_)));
    }
}
